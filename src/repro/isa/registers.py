"""Register file naming and numbering for the repro ISA.

The ISA has 32 integer registers (``r0``..``r31``) and 32 floating-point
registers (``f0``..``f31``).  Internally both spaces are folded into one
*unified logical index* space of 64 names so that the rename map table in
the out-of-order core is a single flat array:

* integer register ``rN``  -> unified index ``N``       (0..31)
* floating register ``fN`` -> unified index ``32 + N``  (32..63)

``r0`` is hard-wired to zero, as in MIPS/PISA.  By software convention
``r29`` is the stack pointer and ``r31`` the link register (written by
``jal``/``jalr``).
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_LOGICAL_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Unified index of the hard-wired zero register.
ZERO = 0
#: Unified index of the conventional stack pointer.
SP = 29
#: Unified index of the link register written by jal/jalr.
RA = 31

#: Unified index of the first floating-point register (``f0``).
FP_BASE = NUM_INT_REGS


def int_reg(n):
    """Unified index of integer register ``rN``."""
    if not 0 <= n < NUM_INT_REGS:
        raise ValueError("integer register number out of range: %r" % (n,))
    return n


def fp_reg(n):
    """Unified index of floating-point register ``fN``."""
    if not 0 <= n < NUM_FP_REGS:
        raise ValueError("fp register number out of range: %r" % (n,))
    return FP_BASE + n


def is_fp_reg(index):
    """True if the unified register index names a floating-point register."""
    return index >= FP_BASE


def reg_name(index):
    """Human-readable name (``r5`` / ``f3``) for a unified register index."""
    if not 0 <= index < NUM_LOGICAL_REGS:
        raise ValueError("register index out of range: %r" % (index,))
    if index < FP_BASE:
        return "r%d" % index
    return "f%d" % (index - FP_BASE)


def parse_reg(name):
    """Parse a register name (``r12`` or ``f7``) into a unified index."""
    text = name.strip().lower()
    if len(text) < 2 or text[0] not in ("r", "f") or not text[1:].isdigit():
        raise ValueError("malformed register name: %r" % (name,))
    number = int(text[1:])
    if text[0] == "r":
        return int_reg(number)
    return fp_reg(number)
