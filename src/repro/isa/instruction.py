"""The decoded :class:`Instruction` record.

Instructions are stored and simulated in decoded form (the binary
encoding layer in :mod:`repro.isa.encoding` exists for completeness and
round-trip testing, but the pipeline's hot loop works on these objects).

Fields use the unified logical register index space of
:mod:`repro.isa.registers` (integer registers 0..31, floating registers
32..63).  Unused fields are ``None`` (registers) or ``0`` (immediate).
"""

from __future__ import annotations

from .opcodes import OP_INFO, Kind, Op


class Instruction:
    """One decoded instruction: opcode + operands.

    Instances are immutable by convention (nothing in the package mutates
    them after construction) and hashable by identity, which lets the
    pipeline reuse a single decoded object for every dynamic execution of
    a static instruction.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm")

    def __init__(self, op, rd=None, rs1=None, rs2=None, imm=0):
        info = OP_INFO[op]
        if info.writes_reg and rd is None:
            raise ValueError("%s requires a destination register" % info.name)
        if not info.writes_reg and rd is not None:
            raise ValueError("%s takes no destination register" % info.name)
        if info.reads_rs1 and rs1 is None:
            raise ValueError("%s requires rs1" % info.name)
        if info.reads_rs2 and rs2 is None:
            raise ValueError("%s requires rs2" % info.name)
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm

    @property
    def info(self):
        """Static opcode metadata (:class:`repro.isa.opcodes.OpInfo`)."""
        return OP_INFO[self.op]

    @property
    def is_branch(self):
        return OP_INFO[self.op].kind == Kind.BRANCH

    @property
    def is_control(self):
        return OP_INFO[self.op].kind in (Kind.BRANCH, Kind.JUMP)

    @property
    def is_load(self):
        return OP_INFO[self.op].kind == Kind.LOAD

    @property
    def is_store(self):
        return OP_INFO[self.op].kind == Kind.STORE

    @property
    def is_mem(self):
        kind = OP_INFO[self.op].kind
        return kind == Kind.LOAD or kind == Kind.STORE

    @property
    def is_halt(self):
        return self.op == Op.HALT

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        return (self.op == other.op and self.rd == other.rd
                and self.rs1 == other.rs1 and self.rs2 == other.rs2
                and self.imm == other.imm)

    def __hash__(self):
        return hash((self.op, self.rd, self.rs1, self.rs2, self.imm))

    def __repr__(self):
        from .disasm import format_instruction
        return "<Instruction %s>" % format_instruction(self)
