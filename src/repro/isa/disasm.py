"""Disassembler: formats decoded instructions back into assembly text."""

from __future__ import annotations

from .opcodes import OP_INFO, Kind, Op
from .registers import reg_name


def format_instruction(inst):
    """Render one instruction as canonical assembly text."""
    info = OP_INFO[inst.op]
    name = info.name
    if inst.op == Op.NOP or inst.op == Op.HALT:
        return name
    if info.kind == Kind.LOAD:
        return "%s %s, %d(%s)" % (name, reg_name(inst.rd), inst.imm,
                                  reg_name(inst.rs1))
    if info.kind == Kind.STORE:
        return "%s %s, %d(%s)" % (name, reg_name(inst.rs2), inst.imm,
                                  reg_name(inst.rs1))
    if info.kind == Kind.BRANCH:
        return "%s %s, %s, %d" % (name, reg_name(inst.rs1),
                                  reg_name(inst.rs2), inst.imm)
    if inst.op == Op.J:
        return "%s %d" % (name, inst.imm)
    if inst.op == Op.JAL:
        return "%s %s, %d" % (name, reg_name(inst.rd), inst.imm)
    if inst.op == Op.JR:
        return "%s %s" % (name, reg_name(inst.rs1))
    if inst.op == Op.JALR:
        return "%s %s, %s" % (name, reg_name(inst.rd), reg_name(inst.rs1))
    parts = []
    if info.writes_reg:
        parts.append(reg_name(inst.rd))
    if info.reads_rs1:
        parts.append(reg_name(inst.rs1))
    if info.reads_rs2:
        parts.append(reg_name(inst.rs2))
    if info.uses_imm:
        parts.append(str(inst.imm))
    return "%s %s" % (name, ", ".join(parts))


def disassemble(instructions, start_pc=0):
    """Render a sequence of instructions, one "pc: text" line each."""
    lines = []
    for offset, inst in enumerate(instructions):
        lines.append("%6d: %s" % (start_pc + offset,
                                  format_instruction(inst)))
    return "\n".join(lines)
