"""Programmatic program construction.

:class:`ProgramBuilder` is the workhorse of the synthetic workload
generator: it emits decoded instructions directly (no assembly text in
the loop) while still supporting labels and forward references for
control flow.

Example::

    b = ProgramBuilder("countdown")
    b.emit(Op.ADDI, rd=1, rs1=0, imm=10)
    b.label("loop")
    b.emit(Op.ADDI, rd=1, rs1=1, imm=-1)
    b.branch(Op.BNE, rs1=1, rs2=0, target="loop")
    b.emit(Op.HALT)
    program = b.build()
"""

from __future__ import annotations

from ..errors import AssemblerError
from ..program.image import Program
from .instruction import Instruction
from .opcodes import CONDITIONAL_BRANCHES, Op


class ProgramBuilder:
    """Accumulates instructions and data, resolving labels at build time."""

    def __init__(self, name="program"):
        self.name = name
        self._text = []
        self._data = []
        self._labels = {}
        # (index, kind, label) fixups; kind is "branch" or "jump".
        self._fixups = []

    # -- emission --------------------------------------------------------

    @property
    def pc(self):
        """Index the next emitted instruction will occupy."""
        return len(self._text)

    def label(self, name):
        """Define ``name`` at the current text position."""
        if name in self._labels:
            raise AssemblerError("duplicate label %r" % name)
        self._labels[name] = len(self._text)
        return self

    def emit(self, op, rd=None, rs1=None, rs2=None, imm=0):
        """Emit one instruction with already-numeric operands."""
        self._text.append(Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm))
        return self

    def branch(self, op, rs1, rs2, target):
        """Emit a conditional branch to a label or absolute index."""
        if op not in CONDITIONAL_BRANCHES:
            raise AssemblerError("%s is not a conditional branch" % op)
        if isinstance(target, str):
            self._fixups.append((len(self._text), "branch", target))
            imm = 0
        else:
            imm = target - (len(self._text) + 1)
        self._text.append(Instruction(op, rs1=rs1, rs2=rs2, imm=imm))
        return self

    def jump(self, target, link_reg=None):
        """Emit ``j``/``jal`` to a label or absolute index."""
        op = Op.JAL if link_reg is not None else Op.J
        if isinstance(target, str):
            self._fixups.append((len(self._text), "jump", target))
            imm = 0
        else:
            imm = target
        self._text.append(Instruction(op, rd=link_reg, imm=imm))
        return self

    def halt(self):
        return self.emit(Op.HALT)

    def nop(self):
        return self.emit(Op.NOP)

    # -- data segment ----------------------------------------------------

    def word(self, *values):
        """Append data words; returns the address of the first one."""
        address = len(self._data)
        self._data.extend(values)
        return address

    def space(self, count, fill=0):
        """Reserve ``count`` data words; returns the starting address."""
        address = len(self._data)
        self._data.extend([fill] * count)
        return address

    # -- finalisation ----------------------------------------------------

    def build(self, entry=0):
        """Resolve fixups and return the finished :class:`Program`."""
        for index, kind, label in self._fixups:
            if label not in self._labels:
                raise AssemblerError("undefined label %r" % label)
            target = self._labels[label]
            old = self._text[index]
            if kind == "branch":
                imm = target - (index + 1)
            else:
                imm = target
            self._text[index] = Instruction(old.op, rd=old.rd, rs1=old.rs1,
                                            rs2=old.rs2, imm=imm)
        self._fixups = []
        return Program(name=self.name, text=list(self._text),
                       data=list(self._data), entry=entry)
