"""Two-pass assembler for the repro ISA.

Source syntax (one statement per line)::

    ; comments run to end of line (also '#')
    .text                ; switch to text segment (default)
    .data                ; switch to data segment
    .word 1, 2, 3        ; emit data words
    .space 16            ; reserve 16 zeroed data words

    loop:                ; label (text: instruction index; data: word addr)
        addi r1, r1, -1
        lw   r2, 4(r3)   ; displacement addressing
        bne  r1, r0, loop
        halt

Conditional branches are PC-relative (``target = pc + 1 + imm``); the
assembler converts label operands to the right immediate.  ``j``/``jal``
take absolute instruction indices, so labels map directly.
"""

from __future__ import annotations

import re

from ..errors import AssemblerError
from ..program.image import Program
from .instruction import Instruction
from .opcodes import MNEMONIC_TO_OP, OP_INFO, Kind, Op
from .registers import parse_reg

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")
_MEM_OPERAND_RE = re.compile(
    r"^(-?(?:0x[0-9A-Fa-f]+|\d+)|[A-Za-z_][A-Za-z0-9_]*)\((\w+)\)$")
_SYMBOL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _strip_comment(line):
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_int(text, line_number):
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError("malformed integer: %r" % text, line_number)


class _Statement:
    """One pending instruction with possibly-unresolved label operands."""

    __slots__ = ("mnemonic", "operands", "line_number", "pc")

    def __init__(self, mnemonic, operands, line_number, pc):
        self.mnemonic = mnemonic
        self.operands = operands
        self.line_number = line_number
        self.pc = pc


class Assembler:
    """Two-pass assembler producing a :class:`repro.program.Program`."""

    def __init__(self):
        self._statements = []
        self._data = []
        self._labels = {}
        self._segment = "text"
        self._pc = 0

    def assemble(self, source, name="program"):
        """Assemble ``source`` text into a :class:`Program`."""
        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            self._consume_line(raw_line, line_number)
        text = [self._resolve(stmt) for stmt in self._statements]
        return Program(name=name, text=text, data=list(self._data))

    # -- first pass ------------------------------------------------------

    def _consume_line(self, raw_line, line_number):
        line = _strip_comment(raw_line)
        if not line:
            return
        match = _LABEL_RE.match(line)
        if match:
            label, rest = match.groups()
            if label in self._labels:
                raise AssemblerError("duplicate label %r" % label,
                                     line_number)
            position = self._pc if self._segment == "text" else len(self._data)
            self._labels[label] = position
            line = rest.strip()
            if not line:
                return
        if line.startswith("."):
            self._consume_directive(line, line_number)
            return
        if self._segment != "text":
            raise AssemblerError("instruction outside .text segment",
                                 line_number)
        self._consume_instruction(line, line_number)

    def _consume_directive(self, line, line_number):
        parts = line.split(None, 1)
        directive = parts[0]
        argument = parts[1] if len(parts) > 1 else ""
        if directive == ".text":
            self._segment = "text"
        elif directive == ".data":
            self._segment = "data"
        elif directive == ".word":
            if self._segment != "data":
                raise AssemblerError(".word outside .data segment",
                                     line_number)
            for chunk in argument.split(","):
                chunk = chunk.strip()
                if not chunk:
                    raise AssemblerError("empty .word operand", line_number)
                if "." in chunk or "e" in chunk.lower():
                    try:
                        self._data.append(float(chunk))
                        continue
                    except ValueError:
                        pass
                self._data.append(_parse_int(chunk, line_number))
        elif directive == ".space":
            if self._segment != "data":
                raise AssemblerError(".space outside .data segment",
                                     line_number)
            count = _parse_int(argument.strip(), line_number)
            if count < 0:
                raise AssemblerError(".space count must be >= 0", line_number)
            self._data.extend([0] * count)
        else:
            raise AssemblerError("unknown directive %r" % directive,
                                 line_number)

    def _consume_instruction(self, line, line_number):
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in MNEMONIC_TO_OP:
            raise AssemblerError("unknown mnemonic %r" % mnemonic,
                                 line_number)
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [op.strip() for op in operand_text.split(",")] \
            if operand_text.strip() else []
        self._statements.append(
            _Statement(mnemonic, operands, line_number, self._pc))
        self._pc += 1

    # -- second pass -----------------------------------------------------

    def _resolve(self, stmt):
        op = MNEMONIC_TO_OP[stmt.mnemonic]
        info = OP_INFO[op]
        operands = stmt.operands
        line = stmt.line_number

        def take(expected):
            if len(operands) != expected:
                raise AssemblerError(
                    "%s expects %d operands, got %d"
                    % (stmt.mnemonic, expected, len(operands)), line)

        if info.kind in (Kind.NOP, Kind.HALT):
            take(0)
            return Instruction(op)
        if info.kind == Kind.LOAD:
            take(2)
            rd = self._reg(operands[0], line)
            imm, rs1 = self._mem_operand(operands[1], line)
            return Instruction(op, rd=rd, rs1=rs1, imm=imm)
        if info.kind == Kind.STORE:
            take(2)
            rs2 = self._reg(operands[0], line)
            imm, rs1 = self._mem_operand(operands[1], line)
            return Instruction(op, rs1=rs1, rs2=rs2, imm=imm)
        if info.kind == Kind.BRANCH:
            take(3)
            rs1 = self._reg(operands[0], line)
            rs2 = self._reg(operands[1], line)
            imm = self._branch_offset(operands[2], stmt.pc, line)
            return Instruction(op, rs1=rs1, rs2=rs2, imm=imm)
        if op == Op.J:
            take(1)
            return Instruction(op, imm=self._abs_target(operands[0], line))
        if op == Op.JAL:
            take(2)
            rd = self._reg(operands[0], line)
            return Instruction(op, rd=rd,
                               imm=self._abs_target(operands[1], line))
        if op == Op.JR:
            take(1)
            return Instruction(op, rs1=self._reg(operands[0], line))
        if op == Op.JALR:
            take(2)
            return Instruction(op, rd=self._reg(operands[0], line),
                               rs1=self._reg(operands[1], line))
        # Plain ALU forms: rd[, rs1][, rs2][, imm] as per metadata.
        expected = (1 + int(info.reads_rs1) + int(info.reads_rs2)
                    + int(info.uses_imm))
        take(expected)
        cursor = iter(operands)
        rd = self._reg(next(cursor), line)
        rs1 = self._reg(next(cursor), line) if info.reads_rs1 else None
        rs2 = self._reg(next(cursor), line) if info.reads_rs2 else None
        imm = self._imm_or_label(next(cursor), line) if info.uses_imm else 0
        return Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)

    def _reg(self, text, line):
        try:
            return parse_reg(text)
        except ValueError as exc:
            raise AssemblerError(str(exc), line) from None

    def _mem_operand(self, text, line):
        match = _MEM_OPERAND_RE.match(text.replace(" ", ""))
        if match:
            displacement = match.group(1)
            if _SYMBOL_RE.match(displacement):
                offset = self._label_value(displacement, line)
            else:
                offset = _parse_int(displacement, line)
            return offset, self._reg(match.group(2), line)
        if _SYMBOL_RE.match(text):
            # Bare data label: absolute address with r0 base.
            return self._label_value(text, line), 0
        raise AssemblerError("malformed memory operand %r" % text, line)

    def _label_value(self, label, line):
        if label not in self._labels:
            raise AssemblerError("undefined label %r" % label, line)
        return self._labels[label]

    def _branch_offset(self, text, pc, line):
        if _SYMBOL_RE.match(text):
            return self._label_value(text, line) - (pc + 1)
        return _parse_int(text, line)

    def _abs_target(self, text, line):
        if _SYMBOL_RE.match(text):
            return self._label_value(text, line)
        return _parse_int(text, line)

    def _imm_or_label(self, text, line):
        if _SYMBOL_RE.match(text):
            return self._label_value(text, line)
        return _parse_int(text, line)


def assemble(source, name="program"):
    """Assemble ``source`` text into a :class:`repro.program.Program`."""
    return Assembler().assemble(source, name=name)
