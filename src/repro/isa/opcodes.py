"""Opcode definitions and static metadata for the repro ISA.

The ISA is a small MIPS/PISA-flavoured RISC instruction set, rich enough
to express the SPEC-like synthetic workloads used by the paper's
evaluation: integer ALU/multiply/divide, floating add/multiply/divide,
word loads and stores for both register files, and the usual control-flow
instructions.

Each opcode carries static metadata (:class:`OpInfo`) describing which
functional-unit class executes it, which operands it reads, whether it
writes a destination register, and how it affects control flow.  The
metadata drives the assembler, the functional simulator and the
out-of-order pipeline, so all three always agree on operand shapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FuClass(enum.IntEnum):
    """Functional-unit classes, mirroring SimpleScalar's resource pools."""

    NONE = 0       # executes in zero time / no unit (nop)
    INT_ALU = 1    # integer ALU (also branch resolution, address generation)
    INT_MULT = 2   # integer multiply/divide unit
    FP_ADD = 3     # floating add/compare/convert unit
    FP_MULT = 4    # floating multiply/divide unit
    MEM_PORT = 5   # L1D cache port (loads; stores access at commit)


class Kind(enum.IntEnum):
    """Coarse behavioural class of an opcode."""

    ALU = 0
    LOAD = 1
    STORE = 2
    BRANCH = 3    # conditional, PC-relative
    JUMP = 4      # unconditional, direct or indirect
    HALT = 5
    NOP = 6


class Op(enum.IntEnum):
    """All opcodes of the repro ISA."""

    NOP = 0
    # --- integer ALU, register-register ---
    ADD = 1
    SUB = 2
    AND = 3
    OR = 4
    XOR = 5
    SLL = 6
    SRL = 7
    SRA = 8
    SLT = 9
    SLTU = 10
    # --- integer ALU, register-immediate ---
    ADDI = 11
    ANDI = 12
    ORI = 13
    XORI = 14
    SLTI = 15
    SLLI = 16
    SRLI = 17
    SRAI = 18
    LUI = 19
    # --- integer multiply / divide ---
    MUL = 20
    MULH = 21
    DIV = 22
    REM = 23
    # --- floating point ---
    FADD = 24
    FSUB = 25
    FMUL = 26
    FDIV = 27
    FSQRT = 28
    FNEG = 29
    FABS = 30
    FMOV = 31
    CVTIF = 32   # int -> float  (reads int rs1, writes fp rd)
    CVTFI = 33   # float -> int  (reads fp rs1, writes int rd)
    FCMPEQ = 34  # fp compare, writes 0/1 to int rd
    FCMPLT = 35
    FCMPLE = 36
    # --- memory ---
    LW = 37      # int load:  rd <- mem[rs1 + imm]
    SW = 38      # int store: mem[rs1 + imm] <- rs2
    FLW = 39     # fp load
    FSW = 40     # fp store (value from fp rs2)
    # --- control flow ---
    BEQ = 41     # pc-relative: target = pc + 1 + imm
    BNE = 42
    BLT = 43
    BGE = 44
    J = 45       # absolute: target = imm
    JAL = 46     # absolute, rd (r31 by convention) <- pc + 1
    JR = 47      # indirect: target = rs1
    JALR = 48    # indirect with link
    HALT = 49


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    name: str
    fu: FuClass
    kind: Kind
    writes_reg: bool = False      # has a destination register
    fp_dest: bool = False         # destination is a floating register
    reads_rs1: bool = False
    fp_rs1: bool = False
    reads_rs2: bool = False
    fp_rs2: bool = False
    uses_imm: bool = False
    unpipelined: bool = False     # occupies its FU for the whole latency

    # Derived flags, precomputed because the pipeline's hot loop reads
    # them for every dynamic instruction (property dispatch is costly
    # at that frequency).  Assigned via object.__setattr__ to get past
    # the frozen-dataclass guard; they are pure functions of ``kind``.
    def __post_init__(self):
        object.__setattr__(self, "is_control",
                           self.kind in (Kind.BRANCH, Kind.JUMP))
        object.__setattr__(self, "is_mem",
                           self.kind in (Kind.LOAD, Kind.STORE))


def _alu_rr(name):
    return OpInfo(name, FuClass.INT_ALU, Kind.ALU, writes_reg=True,
                  reads_rs1=True, reads_rs2=True)


def _alu_ri(name):
    return OpInfo(name, FuClass.INT_ALU, Kind.ALU, writes_reg=True,
                  reads_rs1=True, uses_imm=True)


def _fp_rr(name, fu, unpipelined=False):
    return OpInfo(name, fu, Kind.ALU, writes_reg=True, fp_dest=True,
                  reads_rs1=True, fp_rs1=True, reads_rs2=True, fp_rs2=True,
                  unpipelined=unpipelined)


def _fp_r(name, fu, unpipelined=False):
    return OpInfo(name, fu, Kind.ALU, writes_reg=True, fp_dest=True,
                  reads_rs1=True, fp_rs1=True, unpipelined=unpipelined)


def _fp_cmp(name):
    return OpInfo(name, FuClass.FP_ADD, Kind.ALU, writes_reg=True,
                  reads_rs1=True, fp_rs1=True, reads_rs2=True, fp_rs2=True)


def _branch(name):
    return OpInfo(name, FuClass.INT_ALU, Kind.BRANCH,
                  reads_rs1=True, reads_rs2=True, uses_imm=True)


OP_INFO = {
    Op.NOP: OpInfo("nop", FuClass.NONE, Kind.NOP),
    Op.ADD: _alu_rr("add"),
    Op.SUB: _alu_rr("sub"),
    Op.AND: _alu_rr("and"),
    Op.OR: _alu_rr("or"),
    Op.XOR: _alu_rr("xor"),
    Op.SLL: _alu_rr("sll"),
    Op.SRL: _alu_rr("srl"),
    Op.SRA: _alu_rr("sra"),
    Op.SLT: _alu_rr("slt"),
    Op.SLTU: _alu_rr("sltu"),
    Op.ADDI: _alu_ri("addi"),
    Op.ANDI: _alu_ri("andi"),
    Op.ORI: _alu_ri("ori"),
    Op.XORI: _alu_ri("xori"),
    Op.SLTI: _alu_ri("slti"),
    Op.SLLI: _alu_ri("slli"),
    Op.SRLI: _alu_ri("srli"),
    Op.SRAI: _alu_ri("srai"),
    Op.LUI: OpInfo("lui", FuClass.INT_ALU, Kind.ALU, writes_reg=True,
                   uses_imm=True),
    Op.MUL: OpInfo("mul", FuClass.INT_MULT, Kind.ALU, writes_reg=True,
                   reads_rs1=True, reads_rs2=True),
    Op.MULH: OpInfo("mulh", FuClass.INT_MULT, Kind.ALU, writes_reg=True,
                    reads_rs1=True, reads_rs2=True),
    Op.DIV: OpInfo("div", FuClass.INT_MULT, Kind.ALU, writes_reg=True,
                   reads_rs1=True, reads_rs2=True, unpipelined=True),
    Op.REM: OpInfo("rem", FuClass.INT_MULT, Kind.ALU, writes_reg=True,
                   reads_rs1=True, reads_rs2=True, unpipelined=True),
    Op.FADD: _fp_rr("fadd", FuClass.FP_ADD),
    Op.FSUB: _fp_rr("fsub", FuClass.FP_ADD),
    Op.FMUL: _fp_rr("fmul", FuClass.FP_MULT),
    Op.FDIV: _fp_rr("fdiv", FuClass.FP_MULT, unpipelined=True),
    Op.FSQRT: _fp_r("fsqrt", FuClass.FP_MULT, unpipelined=True),
    Op.FNEG: _fp_r("fneg", FuClass.FP_ADD),
    Op.FABS: _fp_r("fabs", FuClass.FP_ADD),
    Op.FMOV: _fp_r("fmov", FuClass.FP_ADD),
    Op.CVTIF: OpInfo("cvtif", FuClass.FP_ADD, Kind.ALU, writes_reg=True,
                     fp_dest=True, reads_rs1=True),
    Op.CVTFI: OpInfo("cvtfi", FuClass.FP_ADD, Kind.ALU, writes_reg=True,
                     reads_rs1=True, fp_rs1=True),
    Op.FCMPEQ: _fp_cmp("fcmpeq"),
    Op.FCMPLT: _fp_cmp("fcmplt"),
    Op.FCMPLE: _fp_cmp("fcmple"),
    Op.LW: OpInfo("lw", FuClass.MEM_PORT, Kind.LOAD, writes_reg=True,
                  reads_rs1=True, uses_imm=True),
    Op.SW: OpInfo("sw", FuClass.MEM_PORT, Kind.STORE,
                  reads_rs1=True, reads_rs2=True, uses_imm=True),
    Op.FLW: OpInfo("flw", FuClass.MEM_PORT, Kind.LOAD, writes_reg=True,
                   fp_dest=True, reads_rs1=True, uses_imm=True),
    Op.FSW: OpInfo("fsw", FuClass.MEM_PORT, Kind.STORE,
                   reads_rs1=True, reads_rs2=True, fp_rs2=True,
                   uses_imm=True),
    Op.BEQ: _branch("beq"),
    Op.BNE: _branch("bne"),
    Op.BLT: _branch("blt"),
    Op.BGE: _branch("bge"),
    Op.J: OpInfo("j", FuClass.INT_ALU, Kind.JUMP, uses_imm=True),
    Op.JAL: OpInfo("jal", FuClass.INT_ALU, Kind.JUMP, writes_reg=True,
                   uses_imm=True),
    Op.JR: OpInfo("jr", FuClass.INT_ALU, Kind.JUMP, reads_rs1=True),
    Op.JALR: OpInfo("jalr", FuClass.INT_ALU, Kind.JUMP, writes_reg=True,
                    reads_rs1=True),
    Op.HALT: OpInfo("halt", FuClass.NONE, Kind.HALT),
}

#: Map from mnemonic text to opcode, used by the assembler.
MNEMONIC_TO_OP = {info.name: op for op, info in OP_INFO.items()}

#: Opcodes whose resolved direction depends on register operands.
CONDITIONAL_BRANCHES = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE})

#: Opcodes whose target cannot be computed from the instruction alone.
INDIRECT_JUMPS = frozenset({Op.JR, Op.JALR})


def op_info(op):
    """Return the :class:`OpInfo` metadata for ``op``."""
    return OP_INFO[op]
