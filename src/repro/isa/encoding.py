"""Binary encoding of repro-ISA instructions.

Instructions pack into a 64-bit word (PISA also used fat 8-byte
instructions, which is why the pipeline models 8 bytes per instruction
for I-cache purposes):

====== ======= =====================================================
bits   field   contents
====== ======= =====================================================
63..56 opcode  :class:`repro.isa.opcodes.Op` value
55..49 rd      destination register + 1 (0 means "absent")
48..42 rs1     source register 1 + 1   (0 means "absent")
41..35 rs2     source register 2 + 1   (0 means "absent")
34..32 spare   reserved, must be zero
31..0  imm     32-bit two's-complement immediate
====== ======= =====================================================

The encoder/decoder round-trips every constructible instruction; this is
checked by property-based tests.
"""

from __future__ import annotations

from ..errors import EncodingError
from .instruction import Instruction
from .opcodes import Op

INSTRUCTION_BYTES = 8

_IMM_MIN = -(1 << 31)
_IMM_MAX = (1 << 31) - 1


def _encode_reg(reg):
    if reg is None:
        return 0
    return reg + 1


def _decode_reg(field):
    if field == 0:
        return None
    return field - 1


def encode(inst):
    """Encode a decoded :class:`Instruction` into a 64-bit word."""
    if not _IMM_MIN <= inst.imm <= _IMM_MAX:
        raise EncodingError("immediate out of 32-bit range: %d" % inst.imm)
    word = int(inst.op) << 56
    word |= _encode_reg(inst.rd) << 49
    word |= _encode_reg(inst.rs1) << 42
    word |= _encode_reg(inst.rs2) << 35
    word |= inst.imm & 0xFFFFFFFF
    return word


def decode(word):
    """Decode a 64-bit word back into an :class:`Instruction`."""
    if not 0 <= word < (1 << 64):
        raise EncodingError("encoded word out of 64-bit range")
    opcode = (word >> 56) & 0xFF
    try:
        op = Op(opcode)
    except ValueError:
        raise EncodingError("unknown opcode value: %d" % opcode) from None
    rd = _decode_reg((word >> 49) & 0x7F)
    rs1 = _decode_reg((word >> 42) & 0x7F)
    rs2 = _decode_reg((word >> 35) & 0x7F)
    imm = word & 0xFFFFFFFF
    if imm >= (1 << 31):
        imm -= 1 << 32
    try:
        return Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
    except ValueError as exc:
        raise EncodingError("inconsistent operand fields: %s" % exc) from None


def encode_program_text(instructions):
    """Encode a sequence of instructions into a list of 64-bit words."""
    return [encode(inst) for inst in instructions]


def decode_program_text(words):
    """Decode a list of 64-bit words into instructions."""
    return [decode(word) for word in words]
