"""The repro instruction-set architecture.

A small MIPS/PISA-flavoured RISC ISA: 32 integer + 32 floating registers,
word-addressed memory, PC counted in instruction indices (8 bytes per
instruction for cache purposes, as in PISA).
"""

from .assembler import Assembler, assemble
from .builder import ProgramBuilder
from .disasm import disassemble, format_instruction
from .encoding import decode, encode
from .instruction import Instruction
from .opcodes import FuClass, Kind, Op, OpInfo, op_info
from .registers import (FP_BASE, NUM_INT_REGS, NUM_LOGICAL_REGS, RA, SP,
                        ZERO, fp_reg, int_reg, is_fp_reg, parse_reg,
                        reg_name)

__all__ = [
    "Assembler", "assemble", "ProgramBuilder", "disassemble",
    "format_instruction", "decode", "encode", "Instruction", "FuClass",
    "Kind", "Op", "OpInfo", "op_info", "FP_BASE", "NUM_INT_REGS",
    "NUM_LOGICAL_REGS", "RA", "SP", "ZERO", "fp_reg", "int_reg",
    "is_fp_reg", "parse_reg", "reg_name",
]
