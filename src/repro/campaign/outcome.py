"""Run one trial and classify what the machine did with its faults.

Every trial is compared against the paper's golden reference (Section
5.1.1): an in-order functional simulation of the same program advanced
by exactly as many instructions as the out-of-order machine committed.
The comparison reuses :func:`repro.functional.checker.compare_states`
over the full architectural state (registers + memory) plus the
committed next-PC.

Outcome classes:

* ``masked`` — committed state matches the golden reference and no
  fault was ever detected (either none was injected, or the corrupted
  copy lost the cross-check race without reaching committed state);
* ``detected_recovered`` — state matches and the machine paid for it:
  at least one detection, rewind or majority commit occurred;
* ``sdc`` — silent data corruption: the run completed but committed
  state diverges from the golden reference;
* ``timeout`` — the run did not complete its instruction budget
  (crash off the program text, deadlock, or cycle budget exhausted).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..core.faults import FaultInjector
from ..errors import SimulationError
from ..functional.checker import compare_states
from ..functional.simulator import FunctionalSimulator
from ..harness.experiment import cycle_budget, run_windowed
from ..program.cache import cached_workload as _cached_workload
from ..uarch.processor import Processor
from ..uarch.reference import ReferenceProcessor
from ..program.cache import workload_cache_stats
from . import checkpoint as _checkpoint
from .golden import cached_trace, compare_with_golden, trace_cache_stats

MASKED = "masked"
DETECTED_RECOVERED = "detected_recovered"
SDC = "sdc"
TIMEOUT = "timeout"

OUTCOMES = (MASKED, DETECTED_RECOVERED, SDC, TIMEOUT)

#: Simulator selection accepted by :func:`run_trial`: the optimized
#: engine, or the frozen pre-overhaul reference for A/B diffing.
SIMULATORS = ("fast", "reference")

#: Per-process memo of fault-free trial results: with no injector the
#: simulation is a pure function of (workload, model, budgets), so all
#: replicates of a rate-0 cell share one execution.
_FAULTFREE_CACHE = {}

#: Optional monotonic clock injected by the bench harness (see
#: :func:`set_phase_clock`); ``None`` — the default — keeps this
#: module free of wall-clock reads, which the determinism lint bans.
_PHASE_CLOCK = None

#: Accumulated seconds per execution phase while a clock is installed.
_PHASE_TIMES = {"decode": 0.0, "golden": 0.0, "simulate": 0.0,
                "classify": 0.0}


def set_phase_clock(clock):
    """Install (or with ``None`` remove) the phase-timing clock.

    ``clock`` is a zero-argument callable returning seconds (the bench
    passes ``time.perf_counter``).  While installed, trial execution
    accumulates per-phase wall time into :func:`phase_times`; the
    default ``None`` costs one predicate per phase and keeps the
    module deterministic.
    """
    global _PHASE_CLOCK
    _PHASE_CLOCK = clock


def phase_times():
    """A copy of the accumulated per-phase seconds."""
    return dict(_PHASE_TIMES)


def reset_phase_times():
    for name in _PHASE_TIMES:
        _PHASE_TIMES[name] = 0.0


@dataclass
class TrialResult:
    """The classified outcome and metrics of one executed trial."""

    trial: dict                     # Trial.to_dict() of the trial run
    outcome: str
    detail: str = ""
    ipc: float = 0.0
    cycles: int = 0
    instructions: int = 0
    faults_injected: int = 0
    faults_detected: int = 0
    rewinds: int = 0
    majority_commits: int = 0
    pc_continuity_violations: int = 0
    silent_commits: int = 0
    avg_recovery_penalty: float = 0.0
    reg_mismatches: int = 0
    mem_mismatches: int = 0
    #: Applied strikes per addressable structure (fault-site trials
    #: only; empty — and absent from records — on the rate path, so
    #: legacy records stay byte-identical).
    site_strikes: dict = field(default_factory=dict)

    @property
    def key(self):
        return self.trial["key"]

    def to_record(self):
        """Flat JSON-serialisable record for the result store."""
        record = {name: getattr(self, name) for name in (
            "outcome", "detail", "ipc", "cycles", "instructions",
            "faults_injected", "faults_detected", "rewinds",
            "majority_commits", "pc_continuity_violations",
            "silent_commits", "avg_recovery_penalty",
            "reg_mismatches", "mem_mismatches")}
        record["key"] = self.key
        record["trial"] = dict(self.trial)
        if self.site_strikes:
            record["site_strikes"] = dict(self.site_strikes)
        return record

    @classmethod
    def from_record(cls, record):
        kwargs = {name: record[name] for name in (
            "outcome", "detail", "ipc", "cycles", "instructions",
            "faults_injected", "faults_detected", "rewinds",
            "majority_commits", "pc_continuity_violations",
            "silent_commits", "avg_recovery_penalty",
            "reg_mismatches", "mem_mismatches")}
        return cls(trial=dict(record["trial"]),
                   site_strikes=dict(record.get("site_strikes", {})),
                   **kwargs)


def run_trial(trial, simulator="fast", golden_cache=True,
              reuse_faultfree=True, checkpointing=False,
              checkpoint_interval=None):
    """Execute one :class:`~repro.campaign.spec.Trial` and classify it.

    ``simulator`` selects the optimized engine (``"fast"``) or the
    frozen :class:`~repro.uarch.reference.ReferenceProcessor`
    (``"reference"``); ``golden_cache`` toggles the memoized seekable
    golden trace versus a fresh per-trial functional run; with
    ``reuse_faultfree`` all replicates of a fault-free cell share one
    execution, and fault trials whose injector provably never fires
    (see :func:`_injector_stays_silent`) reuse it too.  With
    ``checkpointing`` (fast engine only) the cell's fault-free baseline
    is snapshotted at ``checkpoint_interval``-instruction boundaries
    (auto-spaced when ``None``) and each fault trial fast-forwards to
    the latest snapshot preceding its first planned strike, simulating
    only the suffix (:mod:`repro.campaign.checkpoint`).  Every
    combination produces byte-identical records — the switches exist
    for A/B benchmarking and divergence detection.
    """
    if simulator not in SIMULATORS:
        raise ValueError("unknown simulator %r (choose from %s)"
                         % (simulator, "/".join(SIMULATORS)))
    fast = simulator == "fast"
    use_checkpoints = checkpointing and fast
    policy = trial.injection_policy()
    if policy is not None:
        # Addressed site strikes: no rate injector, and never a
        # fault-free result to reuse — the trial *will* be struck (or
        # its sites expire), so it always runs.
        if not fast:
            raise ValueError(
                "fault-site trials require the fast simulator (the "
                "frozen reference engine predates the site subsystem)")
        result, _ = _execute_site_trial(trial, policy, golden_cache,
                                        use_checkpoints,
                                        checkpoint_interval)
        return result
    fault_config = trial.fault_config()
    if fast and (reuse_faultfree or use_checkpoints):
        baseline_key = (trial.workload, trial.workload_seed, trial.model,
                        trial.machine_overrides,
                        trial.instructions, trial.warmup,
                        trial.max_cycles)
        if fault_config is None:
            entry = _FAULTFREE_CACHE.get(baseline_key)
            if entry is None:
                entry = _run_baseline(trial, baseline_key, golden_cache,
                                      use_checkpoints,
                                      checkpoint_interval)
            return replace(entry[0], trial=trial.to_dict())
        entry = _FAULTFREE_CACHE.get(baseline_key)
        if entry is None and (use_checkpoints
                              or _worth_baseline(trial, fault_config)):
            entry = _run_baseline(trial, baseline_key, golden_cache,
                                  use_checkpoints, checkpoint_interval)
        if entry is not None:
            if use_checkpoints:
                cell = _cell_checkpoints(baseline_key, trial)
                if cell is not None:
                    first_hit, states = cell.prewalk(
                        fault_config, entry[2], entry[1])
                    if first_hit is None:
                        # Every draw misses over the baseline's exact
                        # dispatch count: the trial *is* the fault-free
                        # run (same theorem as _injector_stays_silent).
                        return replace(entry[0], trial=trial.to_dict())
                    pick = cell.best_before(first_hit)
                    if pick is not None:
                        snapshot, boundary = pick
                        result, _ = _execute_resumed(
                            trial, fault_config, golden_cache,
                            snapshot, states[boundary])
                        return result
                elif _injector_stays_silent(fault_config, entry[1],
                                            entry[2]):
                    return replace(entry[0], trial=trial.to_dict())
            elif _injector_stays_silent(fault_config, entry[1],
                                        entry[2]):
                # The injector's rate draws all miss over the exact
                # number of dispatched groups: the trial is the
                # fault-free run.
                return replace(entry[0], trial=trial.to_dict())
    result, _ = _execute_and_classify(trial, fault_config, fast,
                                      golden_cache)
    return result


def _cell_checkpoints(baseline_key, trial):
    """This cell's snapshot ladder, identity-checked against the live
    program object (snapshots share decoded metadata with it, so a
    workload-cache eviction invalidates the ladder)."""
    store = _checkpoint.get_store()
    cell = store.get(baseline_key)
    if cell is None:
        return None
    program = _cached_workload(trial.workload, trial.workload_seed)
    if cell.program is not program:
        store.invalidate(baseline_key)
        return None
    return cell


def _run_baseline(trial, baseline_key, golden_cache, capture=False,
                  checkpoint_interval=None):
    """Run and memoize the fault-free twin of ``trial``.

    With ``capture`` the run is segmented through
    :func:`repro.campaign.checkpoint.run_windowed_capturing` and the
    resulting snapshot ladder is stored for the cell — stats and
    classification stay byte-identical to the straight run.
    """
    if capture:
        snapshots = []

        def runner(processor, max_cycles):
            return _checkpoint.run_windowed_capturing(
                processor, trial.instructions, trial.warmup, max_cycles,
                interval=checkpoint_interval,
                capture=lambda p: snapshots.append(
                    _checkpoint.ProcessorSnapshot(p)))

        result, groups = _execute_and_classify(trial, None, True,
                                               golden_cache,
                                               runner=runner)
        _checkpoint.get_store().put(
            baseline_key, _checkpoint.CellCheckpoints(snapshots))
    else:
        result, groups = _execute_and_classify(trial, None, True,
                                               golden_cache)
    model = trial.resolve_model()
    entry = (result, groups, model.ft.redundancy)
    _FAULTFREE_CACHE[baseline_key] = entry
    return entry


def _worth_baseline(trial, fault_config):
    """Is computing the fault-free baseline likely to pay off?

    Pure performance heuristic (never affects results): estimate the
    probability that a trial of this rate draws no fault at all; only
    spend a baseline simulation when silent trials are likely enough
    to be reused by this cell's replicates.
    """
    model = trial.resolve_model()
    draws_per_group = model.ft.redundancy + 1
    estimated_groups = 2.5 * (trial.instructions + trial.warmup)
    p_silent = math.exp(-fault_config.rate * draws_per_group
                        * estimated_groups)
    return p_silent >= 0.3


def _injector_stays_silent(fault_config, dispatched_groups, redundancy):
    """Would this trial's injector fire within ``dispatched_groups``?

    Replays the injector's exact RNG consumption — one group-level
    ``pc`` draw (when the mix gives ``pc`` weight) plus one draw per
    redundant copy, per dispatched group, in dispatch order — against
    the fault-free run's dispatch count.  If every draw misses, the
    fault run is state-for-state the fault-free run: planning (and so
    any divergence, including extra RNG consumption) only happens on a
    hit.  Exact, not probabilistic.
    """
    probe = FaultInjector(fault_config)
    random = probe._rng.random
    rate = probe._rate
    pc_rate = probe._pc_rate
    if pc_rate > 0:
        for _ in range(dispatched_groups):
            if random() < pc_rate:
                return False
            for _ in range(redundancy):
                if random() < rate:
                    return False
    else:
        for _ in range(dispatched_groups * redundancy):
            if random() < rate:
                return False
    return True


def _execute_and_classify(trial, fault_config, fast, golden_cache,
                          policy=None, runner=None):
    """Simulate one trial; return (TrialResult, dispatched groups)."""
    clock = _PHASE_CLOCK
    started = clock() if clock is not None else 0.0
    program = _cached_workload(trial.workload, trial.workload_seed)
    model = trial.resolve_model()
    if policy is not None:
        processor = Processor(program, config=model.config, ft=model.ft,
                              policy=policy)
    else:
        processor_class = Processor if fast else ReferenceProcessor
        processor = processor_class(program, config=model.config,
                                    ft=model.ft,
                                    fault_config=fault_config)
    if clock is not None:
        _PHASE_TIMES["decode"] += clock() - started
    if runner is None:
        def runner(proc, max_cycles):
            return run_windowed(proc, trial.instructions, trial.warmup,
                                max_cycles)
    return _finish_trial(trial, program, model, processor,
                         golden_cache and fast, runner)


def _execute_resumed(trial, fault_config, golden_cache, snapshot,
                     rng_state):
    """Fast-forward a rate trial from a cell snapshot and finish it."""
    clock = _PHASE_CLOCK
    started = clock() if clock is not None else 0.0
    program = _cached_workload(trial.workload, trial.workload_seed)
    model = trial.resolve_model()
    processor = Processor(program, config=model.config, ft=model.ft,
                          fault_config=fault_config)
    if clock is not None:
        _PHASE_TIMES["decode"] += clock() - started

    def runner(proc, max_cycles):
        return _checkpoint.resume_windowed(
            proc, snapshot, rng_state, trial.instructions, trial.warmup,
            max_cycles)

    return _finish_trial(trial, program, model, processor, golden_cache,
                         runner)


def _execute_site_trial(trial, policy, golden_cache, use_checkpoints,
                        checkpoint_interval):
    """Run a directed-site trial, fast-forwarded when provably safe.

    No site can strike before dispatched-group index
    ``min(site.index)`` (``plan_group``/``plan_copy`` gate on
    ``gseq >= site.index``), so any snapshot at-or-before that index
    is a valid restore point; cycle windows need no special handling
    because the restored run replays the same absolute cycles.
    """
    clock = _PHASE_CLOCK
    started = clock() if clock is not None else 0.0
    program = _cached_workload(trial.workload, trial.workload_seed)
    model = trial.resolve_model()
    processor = Processor(program, config=model.config, ft=model.ft,
                          policy=policy)
    if clock is not None:
        _PHASE_TIMES["decode"] += clock() - started
    snapshot = None
    if use_checkpoints:
        baseline_key = (trial.workload, trial.workload_seed, trial.model,
                        trial.machine_overrides,
                        trial.instructions, trial.warmup,
                        trial.max_cycles)
        if _FAULTFREE_CACHE.get(baseline_key) is None:
            _run_baseline(trial, baseline_key, golden_cache, True,
                          checkpoint_interval)
        cell = _cell_checkpoints(baseline_key, trial)
        if cell is not None:
            # Sites are armed by construction (bind + reset ran).
            earliest = min(site.index for site in policy.pending)
            pick = cell.best_before(earliest)
            if pick is not None:
                snapshot = pick[0]
    if snapshot is not None:
        def runner(proc, max_cycles):
            return _checkpoint.resume_windowed(
                proc, snapshot, None, trial.instructions, trial.warmup,
                max_cycles)
    else:
        def runner(proc, max_cycles):
            return run_windowed(proc, trial.instructions, trial.warmup,
                                max_cycles)
    return _finish_trial(trial, program, model, processor, golden_cache,
                         runner)


def _finish_trial(trial, program, model, processor, golden_cache,
                  runner):
    """Run ``processor`` through ``runner`` and classify the outcome.

    ``runner(processor, max_cycles)`` must return ``(stats,
    warm_cycles, warm_instructions)`` following the
    :func:`~repro.harness.experiment.run_windowed` protocol — the
    straight run, the snapshot-capturing baseline run and the
    checkpoint-resumed run all classify through this single path.
    """
    budget = trial.instructions + trial.warmup
    max_cycles = trial.max_cycles
    if max_cycles is None:
        max_cycles = cycle_budget(trial.instructions, trial.warmup)
    result = TrialResult(trial=trial.to_dict(), outcome=TIMEOUT)
    clock = _PHASE_CLOCK
    started = clock() if clock is not None else 0.0
    try:
        stats, warm_cycles, warm_instructions = runner(processor,
                                                       max_cycles)
    except SimulationError as exc:
        stats = processor.stats
        stats.cycles = processor.cycle
        _fill_counters(result, stats,
                       stats.extras.get("warmup_cycles", 0),
                       stats.extras.get("warmup_instructions", 0))
        result.detail = "simulation error: %s" % exc
        return result, stats.dispatched_groups
    finally:
        if clock is not None:
            _PHASE_TIMES["simulate"] += clock() - started
    _fill_counters(result, stats, warm_cycles, warm_instructions)
    committed = stats.instructions
    if stats.crashed:
        result.detail = "committed control flow left the program"
        return result, stats.dispatched_groups
    if committed < budget and not processor.halted:
        result.detail = ("cycle budget exhausted: %d/%d instructions "
                         "in %d cycles" % (committed, budget, stats.cycles))
        return result, stats.dispatched_groups
    started = clock() if clock is not None else 0.0
    result.outcome, result.detail = _classify_against_golden(
        processor, program, model, committed, result,
        golden_cache=golden_cache)
    if clock is not None:
        _PHASE_TIMES["classify"] += clock() - started
    if processor.halted and committed < budget:
        # HALT committed before the budget: either the program really
        # ends here (golden agrees: masked/recovered) or a fault
        # steered control flow into the HALT (golden diverges: sdc).
        result.detail = ("halted after %d/%d instructions%s"
                         % (committed, budget,
                            "; " + result.detail if result.detail
                            else ""))
    return result, stats.dispatched_groups


def clear_result_caches():
    """Drop the fault-free result memo and the cell checkpoints (for
    tests and bench repeats)."""
    _FAULTFREE_CACHE.clear()
    _checkpoint.clear_checkpoints()


def cache_stats():
    """Hit/miss/eviction counters of every per-process trial cache.

    Covers the golden-trace LRU, the workload-program LRU and the
    cell-checkpoint store.  Also stamped into each executed trial's
    ``stats.extras["cache_stats"]`` (never into records — only
    ``site_strikes`` crosses from extras into records).
    """
    return {"golden_trace": trace_cache_stats(),
            "workload": workload_cache_stats(),
            "checkpoints": _checkpoint.checkpoint_store_stats()}


def _fill_counters(result, stats, warm_cycles, warm_instructions):
    """Copy run counters; IPC refers to the post-warmup window."""
    stats.extras["cache_stats"] = cache_stats()
    cycles = stats.cycles - warm_cycles
    instructions = stats.instructions - warm_instructions
    result.cycles = stats.cycles
    result.instructions = stats.instructions
    result.ipc = instructions / cycles if cycles else 0.0
    result.faults_injected = stats.faults_injected
    result.faults_detected = stats.faults_detected
    result.rewinds = stats.rewinds
    result.majority_commits = stats.majority_commits
    result.pc_continuity_violations = stats.pc_continuity_violations
    result.silent_commits = stats.silent_commits
    result.avg_recovery_penalty = stats.avg_recovery_penalty
    strikes = stats.extras.get("site_strikes")
    if strikes:
        result.site_strikes = dict(strikes)


def _classify_against_golden(processor, program, model, committed,
                             result, golden_cache=True):
    """Compare committed state with the in-order reference.

    With ``golden_cache`` the in-order execution comes from the
    memoized seekable trace of this (workload, model) cell and the
    comparison scans only the store footprints; without it a fresh
    functional simulation and a full-state scan are used (the pre-PR
    path).  Results are byte-identical either way.
    """
    clock = _PHASE_CLOCK
    if golden_cache:
        started = clock() if clock is not None else 0.0
        mem_size = model.config.mem_size_words
        trace = cached_trace((program.name, id(program), mem_size),
                             program, mem_size=mem_size)
        golden_state = trace.seek(committed)
        if clock is not None:
            _PHASE_TIMES["golden"] += clock() - started
        diff = compare_with_golden(processor.arch, golden_state)
    else:
        started = clock() if clock is not None else 0.0
        golden = FunctionalSimulator(program,
                                     mem_size=model.config.mem_size_words)
        for _ in range(committed):
            if not golden.step():
                break
        golden_state = golden.state
        if clock is not None:
            _PHASE_TIMES["golden"] += clock() - started
        diff = compare_states(processor.arch, golden_state)
    pc_clean = (processor.committed_next_pc == golden_state.pc
                or golden_state.halted)
    result.reg_mismatches = len(diff.reg_mismatches)
    result.mem_mismatches = len(diff.mem_mismatches)
    if not diff.clean or not pc_clean:
        detail = diff.summary()
        if not pc_clean:
            detail = ("next-pc %d != golden %d; %s"
                      % (processor.committed_next_pc, golden_state.pc,
                         detail))
        return SDC, detail
    stats = processor.stats
    paid = (stats.faults_detected or stats.rewinds
            or stats.majority_commits or stats.pc_continuity_violations)
    if paid:
        return DETECTED_RECOVERED, ""
    return MASKED, ""
