"""Run one trial and classify what the machine did with its faults.

Every trial is compared against the paper's golden reference (Section
5.1.1): an in-order functional simulation of the same program advanced
by exactly as many instructions as the out-of-order machine committed.
The comparison reuses :func:`repro.functional.checker.compare_states`
over the full architectural state (registers + memory) plus the
committed next-PC.

Outcome classes:

* ``masked`` — committed state matches the golden reference and no
  fault was ever detected (either none was injected, or the corrupted
  copy lost the cross-check race without reaching committed state);
* ``detected_recovered`` — state matches and the machine paid for it:
  at least one detection, rewind or majority commit occurred;
* ``sdc`` — silent data corruption: the run completed but committed
  state diverges from the golden reference;
* ``timeout`` — the run did not complete its instruction budget
  (crash off the program text, deadlock, or cycle budget exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..functional.checker import compare_states
from ..functional.simulator import FunctionalSimulator
from ..harness.experiment import cycle_budget, run_windowed
from ..models.presets import get_model
from ..uarch.processor import Processor
from ..workloads.generator import build_workload

MASKED = "masked"
DETECTED_RECOVERED = "detected_recovered"
SDC = "sdc"
TIMEOUT = "timeout"

OUTCOMES = (MASKED, DETECTED_RECOVERED, SDC, TIMEOUT)

#: Per-process cache of generated programs: workloads are deterministic
#: in (name, seed) and the simulators copy the data image, so rebuilding
#: one per trial would be pure waste.
_PROGRAM_CACHE = {}


def _cached_workload(name, seed):
    program = _PROGRAM_CACHE.get((name, seed))
    if program is None:
        program = build_workload(name, seed=seed)
        _PROGRAM_CACHE[(name, seed)] = program
    return program


@dataclass
class TrialResult:
    """The classified outcome and metrics of one executed trial."""

    trial: dict                     # Trial.to_dict() of the trial run
    outcome: str
    detail: str = ""
    ipc: float = 0.0
    cycles: int = 0
    instructions: int = 0
    faults_injected: int = 0
    faults_detected: int = 0
    rewinds: int = 0
    majority_commits: int = 0
    pc_continuity_violations: int = 0
    silent_commits: int = 0
    avg_recovery_penalty: float = 0.0
    reg_mismatches: int = 0
    mem_mismatches: int = 0

    @property
    def key(self):
        return self.trial["key"]

    def to_record(self):
        """Flat JSON-serialisable record for the result store."""
        record = {name: getattr(self, name) for name in (
            "outcome", "detail", "ipc", "cycles", "instructions",
            "faults_injected", "faults_detected", "rewinds",
            "majority_commits", "pc_continuity_violations",
            "silent_commits", "avg_recovery_penalty",
            "reg_mismatches", "mem_mismatches")}
        record["key"] = self.key
        record["trial"] = dict(self.trial)
        return record

    @classmethod
    def from_record(cls, record):
        kwargs = {name: record[name] for name in (
            "outcome", "detail", "ipc", "cycles", "instructions",
            "faults_injected", "faults_detected", "rewinds",
            "majority_commits", "pc_continuity_violations",
            "silent_commits", "avg_recovery_penalty",
            "reg_mismatches", "mem_mismatches")}
        return cls(trial=dict(record["trial"]), **kwargs)


def run_trial(trial):
    """Execute one :class:`~repro.campaign.spec.Trial` and classify it."""
    program = _cached_workload(trial.workload, trial.workload_seed)
    model = get_model(trial.model)
    processor = Processor(program, config=model.config, ft=model.ft,
                          fault_config=trial.fault_config())
    budget = trial.instructions + trial.warmup
    max_cycles = trial.max_cycles
    if max_cycles is None:
        max_cycles = cycle_budget(trial.instructions, trial.warmup)
    result = TrialResult(trial=trial.to_dict(), outcome=TIMEOUT)
    try:
        stats, warm_cycles, warm_instructions = run_windowed(
            processor, trial.instructions, trial.warmup, max_cycles)
    except SimulationError as exc:
        stats = processor.stats
        stats.cycles = processor.cycle
        _fill_counters(result, stats,
                       stats.extras.get("warmup_cycles", 0),
                       stats.extras.get("warmup_instructions", 0))
        result.detail = "simulation error: %s" % exc
        return result
    _fill_counters(result, stats, warm_cycles, warm_instructions)
    committed = stats.instructions
    if stats.crashed:
        result.detail = "committed control flow left the program"
        return result
    if committed < budget and not processor.halted:
        result.detail = ("cycle budget exhausted: %d/%d instructions "
                         "in %d cycles" % (committed, budget, stats.cycles))
        return result
    result.outcome, result.detail = _classify_against_golden(
        processor, program, model, committed, result)
    if processor.halted and committed < budget:
        # HALT committed before the budget: either the program really
        # ends here (golden agrees: masked/recovered) or a fault
        # steered control flow into the HALT (golden diverges: sdc).
        result.detail = ("halted after %d/%d instructions%s"
                         % (committed, budget,
                            "; " + result.detail if result.detail
                            else ""))
    return result


def _fill_counters(result, stats, warm_cycles, warm_instructions):
    """Copy run counters; IPC refers to the post-warmup window."""
    cycles = stats.cycles - warm_cycles
    instructions = stats.instructions - warm_instructions
    result.cycles = stats.cycles
    result.instructions = stats.instructions
    result.ipc = instructions / cycles if cycles else 0.0
    result.faults_injected = stats.faults_injected
    result.faults_detected = stats.faults_detected
    result.rewinds = stats.rewinds
    result.majority_commits = stats.majority_commits
    result.pc_continuity_violations = stats.pc_continuity_violations
    result.silent_commits = stats.silent_commits
    result.avg_recovery_penalty = stats.avg_recovery_penalty


def _classify_against_golden(processor, program, model, committed,
                             result):
    """Compare committed state with the in-order reference."""
    golden = FunctionalSimulator(program,
                                 mem_size=model.config.mem_size_words)
    for _ in range(committed):
        if not golden.step():
            break
    diff = compare_states(processor.arch, golden.state)
    pc_clean = (processor.committed_next_pc == golden.state.pc
                or golden.state.halted)
    result.reg_mismatches = len(diff.reg_mismatches)
    result.mem_mismatches = len(diff.mem_mismatches)
    if not diff.clean or not pc_clean:
        detail = diff.summary()
        if not pc_clean:
            detail = ("next-pc %d != golden %d; %s"
                      % (processor.committed_next_pc, golden.state.pc,
                         detail))
        return SDC, detail
    stats = processor.stats
    paid = (stats.faults_detected or stats.rewinds
            or stats.majority_commits or stats.pc_continuity_violations)
    if paid:
        return DETECTED_RECOVERED, ""
    return MASKED, ""
