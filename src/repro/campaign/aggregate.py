"""Statistical reduction of trial records into per-cell campaign results.

A *cell* is one (workload, model, fault rate, kind mix) point of the
grid; its replicates are the Monte Carlo sample.  Binomial proportions
(SDC rate, detection coverage) carry Wilson score confidence intervals —
the interval of choice for the small-n, near-0/near-1 proportions that
fault-injection campaigns produce, where the normal approximation is
degenerate.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from .outcome import DETECTED_RECOVERED, MASKED, OUTCOMES, SDC, TIMEOUT

#: 95% two-sided normal quantile, the campaign-wide default.
DEFAULT_Z = 1.96


def wilson_interval(successes, total, z=DEFAULT_Z):
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; ``(0.0, 1.0)`` when there is no sample.
    """
    if total <= 0:
        return (0.0, 1.0)
    if successes < 0 or successes > total:
        raise ValueError("successes must be within [0, total]")
    p = successes / total
    z2 = z * z
    denominator = 1.0 + z2 / total
    centre = (p + z2 / (2.0 * total)) / denominator
    half = (z * math.sqrt(p * (1.0 - p) / total
                          + z2 / (4.0 * total * total))) / denominator
    return (max(0.0, centre - half), min(1.0, centre + half))


@dataclass
class CellStats:
    """Aggregated statistics of one campaign grid cell.

    ``machine`` names the cell's ``machine_overrides`` axis value; it
    stays empty (and absent from :meth:`as_dict`) for specs without
    that axis, so pre-axis aggregate JSON is byte-identical.
    """

    workload: str
    model: str
    rate_per_million: float
    mix: str
    machine: str = ""
    n: int = 0
    counts: dict = field(
        default_factory=lambda: {name: 0 for name in OUTCOMES})
    #: Trials in which at least one fault actually struck.
    faulty_trials: int = 0
    #: Of the faulty trials, how many ended architecturally correct.
    covered_trials: int = 0
    mean_ipc: float = 0.0
    mean_recovery_penalty: float = 0.0
    total_faults_injected: int = 0
    total_faults_detected: int = 0
    total_rewinds: int = 0

    @property
    def sdc_rate(self):
        return self.counts[SDC] / self.n if self.n else 0.0

    @property
    def sdc_interval(self):
        return wilson_interval(self.counts[SDC], self.n)

    @property
    def coverage(self):
        """Fraction of fault-struck trials that stayed correct.

        ``None`` when no trial of the cell saw a fault (rate-0 cells).
        """
        if not self.faulty_trials:
            return None
        return self.covered_trials / self.faulty_trials

    @property
    def coverage_interval(self):
        if not self.faulty_trials:
            return None
        return wilson_interval(self.covered_trials, self.faulty_trials)

    def as_dict(self):
        """JSON-friendly cell summary (stable field order)."""
        coverage_ci = self.coverage_interval
        sdc_ci = self.sdc_interval
        data = {
            "workload": self.workload,
            "model": self.model,
            "rate_per_million": self.rate_per_million,
            "mix": self.mix,
            "n": self.n,
            "counts": {name: self.counts[name] for name in OUTCOMES},
            "faulty_trials": self.faulty_trials,
            "coverage": self.coverage,
            "coverage_ci": list(coverage_ci) if coverage_ci else None,
            "sdc_rate": self.sdc_rate,
            "sdc_ci": list(sdc_ci),
            "mean_ipc": self.mean_ipc,
            "mean_recovery_penalty": self.mean_recovery_penalty,
            "total_faults_injected": self.total_faults_injected,
            "total_faults_detected": self.total_faults_detected,
            "total_rewinds": self.total_rewinds,
        }
        if self.machine:
            data["machine"] = self.machine
        return data


def _cell_key(record):
    trial = record["trial"]
    return (trial["workload"], trial["model"],
            trial.get("machine", ""), trial["rate_per_million"],
            trial["mix"])


def aggregate(records):
    """Reduce trial records into sorted per-cell statistics."""
    cells = {}
    ipc_sums = {}
    penalty_sums = {}       # (sum, count) over trials with rewinds
    for record in records:
        key = _cell_key(record)
        cell = cells.get(key)
        if cell is None:
            cell = CellStats(workload=key[0], model=key[1],
                             machine=key[2], rate_per_million=key[3],
                             mix=key[4])
            cells[key] = cell
            ipc_sums[key] = [0.0, 0]
            penalty_sums[key] = [0.0, 0]
        outcome = record["outcome"]
        if outcome not in cell.counts:
            cell.counts[outcome] = 0
        cell.counts[outcome] += 1
        cell.n += 1
        cell.total_faults_injected += record["faults_injected"]
        cell.total_faults_detected += record["faults_detected"]
        cell.total_rewinds += record["rewinds"]
        if record["faults_injected"] > 0:
            cell.faulty_trials += 1
            if outcome in (MASKED, DETECTED_RECOVERED):
                cell.covered_trials += 1
        if outcome != TIMEOUT:
            ipc_sums[key][0] += record["ipc"]
            ipc_sums[key][1] += 1
        if record["rewinds"] > 0:
            penalty_sums[key][0] += record["avg_recovery_penalty"]
            penalty_sums[key][1] += 1
    for key, cell in cells.items():
        total, count = ipc_sums[key]
        cell.mean_ipc = total / count if count else 0.0
        total, count = penalty_sums[key]
        cell.mean_recovery_penalty = total / count if count else 0.0
    return [cells[key] for key in sorted(cells)]


def cells_to_json(cells):
    """Canonical JSON of the aggregate — byte-stable for determinism
    checks and machine consumption (``repro-ft campaign --json``)."""
    return json.dumps([cell.as_dict() for cell in cells], indent=2,
                      sort_keys=True)
