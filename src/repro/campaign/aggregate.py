"""Statistical reduction of trial records into per-cell campaign results.

A *cell* is one (workload, model, fault rate, kind mix) point of the
grid; its replicates are the Monte Carlo sample.  Binomial proportions
(SDC rate, detection coverage) carry Wilson score confidence intervals —
the interval of choice for the small-n, near-0/near-1 proportions that
fault-injection campaigns produce, where the normal approximation is
degenerate.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from .outcome import DETECTED_RECOVERED, MASKED, OUTCOMES, SDC, TIMEOUT

#: 95% two-sided normal quantile, the campaign-wide default.
DEFAULT_Z = 1.96


def wilson_interval(successes, total, z=DEFAULT_Z):
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; ``(0.0, 1.0)`` when there is no sample.
    """
    if total <= 0:
        return (0.0, 1.0)
    if successes < 0 or successes > total:
        raise ValueError("successes must be within [0, total]")
    p = successes / total
    z2 = z * z
    denominator = 1.0 + z2 / total
    centre = (p + z2 / (2.0 * total)) / denominator
    half = (z * math.sqrt(p * (1.0 - p) / total
                          + z2 / (4.0 * total * total))) / denominator
    return (max(0.0, centre - half), min(1.0, centre + half))


@dataclass
class CellStats:
    """Aggregated statistics of one campaign grid cell.

    ``machine`` names the cell's ``machine_overrides`` axis value; it
    stays empty (and absent from :meth:`as_dict`) for specs without
    that axis, so pre-axis aggregate JSON is byte-identical.
    """

    workload: str
    model: str
    rate_per_million: float
    mix: str
    machine: str = ""
    #: ``fault_sites`` axis cell name; empty (and absent from
    #: :meth:`as_dict`) for rate-only campaigns.
    sites: str = ""
    n: int = 0
    counts: dict = field(
        default_factory=lambda: {name: 0 for name in OUTCOMES})
    #: Trials in which at least one fault actually struck.
    faulty_trials: int = 0
    #: Of the faulty trials, how many ended architecturally correct.
    covered_trials: int = 0
    mean_ipc: float = 0.0
    mean_recovery_penalty: float = 0.0
    total_faults_injected: int = 0
    total_faults_detected: int = 0
    total_rewinds: int = 0

    @property
    def sdc_rate(self):
        return self.counts[SDC] / self.n if self.n else 0.0

    @property
    def sdc_interval(self):
        return wilson_interval(self.counts[SDC], self.n)

    @property
    def coverage(self):
        """Fraction of fault-struck trials that stayed correct.

        ``None`` when no trial of the cell saw a fault (rate-0 cells).
        """
        if not self.faulty_trials:
            return None
        return self.covered_trials / self.faulty_trials

    @property
    def coverage_interval(self):
        if not self.faulty_trials:
            return None
        return wilson_interval(self.covered_trials, self.faulty_trials)

    def as_dict(self):
        """JSON-friendly cell summary (stable field order)."""
        coverage_ci = self.coverage_interval
        sdc_ci = self.sdc_interval
        data = {
            "workload": self.workload,
            "model": self.model,
            "rate_per_million": self.rate_per_million,
            "mix": self.mix,
            "n": self.n,
            "counts": {name: self.counts[name] for name in OUTCOMES},
            "faulty_trials": self.faulty_trials,
            "coverage": self.coverage,
            "coverage_ci": list(coverage_ci) if coverage_ci else None,
            "sdc_rate": self.sdc_rate,
            "sdc_ci": list(sdc_ci),
            "mean_ipc": self.mean_ipc,
            "mean_recovery_penalty": self.mean_recovery_penalty,
            "total_faults_injected": self.total_faults_injected,
            "total_faults_detected": self.total_faults_detected,
            "total_rewinds": self.total_rewinds,
        }
        if self.machine:
            data["machine"] = self.machine
        if self.sites:
            data["sites"] = self.sites
        return data


def trial_cell(trial):
    """The aggregation cell a trial belongs to.

    Accepts a trial dict (records, event payloads) or a
    :class:`~repro.campaign.spec.Trial` (the session's accounting).
    The single definition of cell identity — a future grid axis only
    has to be added here.
    """
    if isinstance(trial, dict):
        return (trial["workload"], trial["model"],
                trial.get("machine", ""), trial["rate_per_million"],
                trial["mix"], trial.get("sites", ""))
    return (trial.workload, trial.model, trial.machine,
            trial.rate_per_million, trial.mix, trial.sites)


def _cell_key(record):
    return trial_cell(record["trial"])


def aggregate(records):
    """Reduce trial records into sorted per-cell statistics."""
    cells = {}
    ipc_sums = {}
    penalty_sums = {}       # (sum, count) over trials with rewinds
    for record in records:
        key = _cell_key(record)
        cell = cells.get(key)
        if cell is None:
            cell = CellStats(workload=key[0], model=key[1],
                             machine=key[2], rate_per_million=key[3],
                             mix=key[4], sites=key[5])
            cells[key] = cell
            ipc_sums[key] = [0.0, 0]
            penalty_sums[key] = [0.0, 0]
        outcome = record["outcome"]
        if outcome not in cell.counts:
            cell.counts[outcome] = 0
        cell.counts[outcome] += 1
        cell.n += 1
        cell.total_faults_injected += record["faults_injected"]
        cell.total_faults_detected += record["faults_detected"]
        cell.total_rewinds += record["rewinds"]
        if record["faults_injected"] > 0:
            cell.faulty_trials += 1
            if outcome in (MASKED, DETECTED_RECOVERED):
                cell.covered_trials += 1
        if outcome != TIMEOUT:
            ipc_sums[key][0] += record["ipc"]
            ipc_sums[key][1] += 1
        if record["rewinds"] > 0:
            penalty_sums[key][0] += record["avg_recovery_penalty"]
            penalty_sums[key][1] += 1
    for key, cell in cells.items():
        total, count = ipc_sums[key]
        cell.mean_ipc = total / count if count else 0.0
        total, count = penalty_sums[key]
        cell.mean_recovery_penalty = total / count if count else 0.0
    return [cells[key] for key in sorted(cells)]


def cells_to_json(cells):
    """Canonical JSON of the aggregate — byte-stable for determinism
    checks and machine consumption (``repro-ft campaign --json``)."""
    return json.dumps([cell.as_dict() for cell in cells], indent=2,
                      sort_keys=True)


# -- per-structure sensitivity ----------------------------------------------

@dataclass
class StructureStats:
    """Sensitivity of one addressable structure across its trials.

    Rates and coverage are computed over *struck* trials — trials in
    which at least one strike on this structure actually applied (a
    site whose window expired, or that armed speculative state which
    was then squashed before corruption, does not characterise the
    structure).  ``n`` counts all trials that targeted the structure.
    """

    structure: str
    n: int = 0                      # trials targeting this structure
    struck_trials: int = 0          # trials with >= 1 applied strike
    strikes_applied: int = 0        # total strikes across all trials
    counts: dict = field(
        default_factory=lambda: {name: 0 for name in OUTCOMES})
    #: Of the struck trials: architecturally correct at the end.
    covered_trials: int = 0
    masked_struck: int = 0
    sdc_struck: int = 0

    @property
    def coverage(self):
        """Correct outcomes among struck trials (None if never struck)."""
        if not self.struck_trials:
            return None
        return self.covered_trials / self.struck_trials

    @property
    def coverage_interval(self):
        if not self.struck_trials:
            return None
        return wilson_interval(self.covered_trials, self.struck_trials)

    @property
    def sdc_rate(self):
        """Silent corruptions among struck trials (None if never
        struck)."""
        if not self.struck_trials:
            return None
        return self.sdc_struck / self.struck_trials

    @property
    def sdc_interval(self):
        if not self.struck_trials:
            return None
        return wilson_interval(self.sdc_struck, self.struck_trials)

    @property
    def masked_rate(self):
        """Struck trials that stayed correct without any detection."""
        if not self.struck_trials:
            return None
        return self.masked_struck / self.struck_trials

    @property
    def masked_interval(self):
        if not self.struck_trials:
            return None
        return wilson_interval(self.masked_struck, self.struck_trials)

    def as_dict(self):
        def interval(value):
            return list(value) if value is not None else None
        return {
            "structure": self.structure,
            "n": self.n,
            "struck_trials": self.struck_trials,
            "strikes_applied": self.strikes_applied,
            "counts": {name: self.counts[name] for name in OUTCOMES},
            "coverage": self.coverage,
            "coverage_ci": interval(self.coverage_interval),
            "sdc_rate": self.sdc_rate,
            "sdc_ci": interval(self.sdc_interval),
            "masked_rate": self.masked_rate,
            "masked_ci": interval(self.masked_interval),
        }


def _target_structures(trial):
    """The structures a fault-site trial addresses, from its policy
    spec (sweeps name one; site lists may span several)."""
    config = trial.get("site_config")
    if not isinstance(config, dict):
        return ()
    if config.get("policy") == "structure_sweep":
        structure = config.get("structure")
        return (structure,) if structure else ()
    if config.get("policy") == "site_list":
        sites = config.get("sites") or ()
        return tuple(sorted({site.get("structure") for site in sites
                             if isinstance(site, dict)
                             and site.get("structure")}))
    return ()


def aggregate_structures(records):
    """Reduce fault-site trial records into per-structure sensitivity.

    Only records of trials with a ``fault_sites`` axis cell contribute;
    a trial targeting several structures (a mixed site list) counts
    once per structure it targeted, with strikes attributed per
    structure from the record's ``site_strikes`` ledger.
    """
    rows = {}
    for record in records:
        trial = record["trial"]
        if not trial.get("sites"):
            continue
        strikes = record.get("site_strikes", {})
        outcome = record["outcome"]
        for structure in _target_structures(trial):
            row = rows.get(structure)
            if row is None:
                row = rows[structure] = StructureStats(
                    structure=structure)
            row.n += 1
            if outcome not in row.counts:
                row.counts[outcome] = 0
            row.counts[outcome] += 1
            applied = strikes.get(structure, 0)
            row.strikes_applied += applied
            if applied > 0:
                row.struck_trials += 1
                if outcome in (MASKED, DETECTED_RECOVERED):
                    row.covered_trials += 1
                if outcome == MASKED:
                    row.masked_struck += 1
                elif outcome == SDC:
                    row.sdc_struck += 1
    return [rows[structure] for structure in sorted(rows)]


def structures_to_json(rows):
    """Canonical JSON of the per-structure sensitivity reduction."""
    return json.dumps([row.as_dict() for row in rows], indent=2,
                      sort_keys=True)
