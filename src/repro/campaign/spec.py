"""Declarative campaign specifications and their trial expansion.

A :class:`CampaignSpec` names the axes of a Monte Carlo fault-injection
study — workloads, machine models, machine-config overrides, fault
rates, kind-weight mixes and seed replicates — and expands their cross
product into individually keyed :class:`Trial` objects.  The key is a
content hash of everything that defines the trial, so

* the same spec always expands to the same trials, in the same order;
* each trial's fault seed is derived from its own key, never from the
  position it happens to run at (workers=1 and workers=N agree);
* a persisted result can be matched back to its trial after a crash,
  which is what makes campaigns resumable;
* :meth:`CampaignSpec.shard` can partition the keyspace across hosts
  (shard membership is a pure function of the key), and the merged
  shard stores aggregate identically to a single-host run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..core.faults import DEFAULT_KIND_WEIGHTS, FaultConfig, get_kind_mix
from ..errors import ConfigError
from ..faults.policy import build_policy
from ..models.presets import derive_model, get_model
from ..workloads.profiles import get_profile
from .store import shard_of_key

#: Spec-hash prefix length; 16 hex chars = 64 bits, collision-safe for
#: any campaign size this engine will see.
KEY_LENGTH = 16


@dataclass(frozen=True)
class Trial:
    """One fully resolved simulation: a single point of the campaign grid.

    ``kind_weights`` (and ``machine_overrides``) are sorted tuples of
    pairs so the trial stays hashable and picklable for process-pool
    workers.  ``machine``/``machine_overrides`` are only populated when
    the spec carries a ``machine_overrides`` axis; the empty defaults
    keep PR-1/PR-2 trial keys and serialised records byte-identical.
    """

    key: str
    workload: str
    model: str
    rate_per_million: float
    mix: str
    kind_weights: Tuple[Tuple[str, float], ...]
    replicate: int
    instructions: int
    warmup: int
    fault_seed: int
    workload_seed: int
    max_cycles: Optional[int] = None
    machine: str = ""
    machine_overrides: Tuple[Tuple[str, object], ...] = ()
    #: ``fault_sites`` axis cell: the cell name and the canonical JSON
    #: of its policy spec.  Empty for rate-only campaigns, keeping all
    #: pre-axis trial keys and records byte-identical.
    sites: str = ""
    site_config: str = ""

    def fault_config(self) -> Optional[FaultConfig]:
        """The injector configuration for this trial (None if rate 0)."""
        if self.rate_per_million <= 0:
            return None
        return FaultConfig(rate_per_million=self.rate_per_million,
                           seed=self.fault_seed,
                           kind_weights=dict(self.kind_weights))

    def injection_policy(self):
        """The site policy of this trial, or ``None`` on the rate path.

        Sampling policies are seeded from the trial's content-derived
        ``fault_seed`` and default their horizon to the instruction
        budget, so the same trial always sweeps the same sites.
        """
        if not self.sites:
            return None
        return build_policy(json.loads(self.site_config),
                            seed=self.fault_seed,
                            horizon=self.instructions + self.warmup)

    def resolve_model(self):
        """The machine model of this trial, overrides applied."""
        if not self.machine_overrides:
            return get_model(self.model)
        return derive_model(self.model, dict(self.machine_overrides))

    def to_dict(self) -> dict:
        data = {
            "key": self.key,
            "workload": self.workload,
            "model": self.model,
            "rate_per_million": self.rate_per_million,
            "mix": self.mix,
            "kind_weights": list(list(pair) for pair in self.kind_weights),
            "replicate": self.replicate,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "fault_seed": self.fault_seed,
            "workload_seed": self.workload_seed,
        }
        if self.max_cycles is not None:
            data["max_cycles"] = self.max_cycles
        if self.machine:
            data["machine"] = self.machine
            data["machine_overrides"] = [
                list(pair) for pair in self.machine_overrides]
        if self.sites:
            data["sites"] = self.sites
            data["site_config"] = json.loads(self.site_config)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Trial":
        if data.get("sites") and "site_config" not in data:
            raise ConfigError(
                "trial %r names fault-sites cell %r but has no "
                "site_config" % (data.get("key"), data["sites"]))
        return cls(
            key=data["key"], workload=data["workload"],
            model=data["model"],
            rate_per_million=data["rate_per_million"],
            mix=data["mix"],
            kind_weights=tuple((kind, weight) for kind, weight
                               in data["kind_weights"]),
            replicate=data["replicate"],
            instructions=data["instructions"],
            warmup=data["warmup"],
            fault_seed=data["fault_seed"],
            workload_seed=data["workload_seed"],
            max_cycles=data.get("max_cycles"),
            machine=data.get("machine", ""),
            machine_overrides=tuple(
                (name, value) for name, value
                in data.get("machine_overrides", ())),
            sites=data.get("sites", ""),
            site_config=_canonical_site_config(data["site_config"])
            if data.get("sites") else "")


def _trial_key_and_seed(material):
    """Hash the canonical trial material into (key, fault seed)."""
    blob = json.dumps(material, sort_keys=True,
                      separators=(",", ":")).encode()
    digest = hashlib.sha256(blob).digest()
    key = digest.hex()[:KEY_LENGTH]
    # An independent slice of the digest seeds the fault injector, so
    # the seed is a pure function of the trial identity.
    seed = int.from_bytes(digest[16:24], "big") & 0x7FFFFFFF
    return key, seed


_OVERRIDE_SCALARS = (int, float, bool, str)


def _canonical_site_config(config):
    """Canonical JSON of one ``fault_sites`` policy spec dict.

    The canonical string both rides on the (hashable, picklable) Trial
    and feeds the key material, so a spec hashes identically however
    its JSON arrived formatted.
    """
    return json.dumps(config, sort_keys=True, separators=(",", ":"))


def _canonical_override_value(value):
    """Collapse integral floats to int (64.0 -> 64) so the same logical
    override hashes — and simulates — identically whether its value
    arrived as a JSON int, a JSON float or a CLI string; the same
    reason trials() canonicalizes rates and mix weights, in the
    opposite direction because MachineConfig fields are integers."""
    if isinstance(value, float) and not isinstance(value, bool) \
            and value.is_integer():
        return int(value)
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative description of one injection campaign."""

    name: str = "campaign"
    workloads: Tuple[str, ...] = ("gcc",)
    models: Tuple[str, ...] = ("SS-2",)
    rates_per_million: Tuple[float, ...] = (0.0, 1000.0)
    #: mix name -> kind-weight dict; names become a grid axis.
    mixes: Dict[str, dict] = field(
        default_factory=lambda: {"default": dict(DEFAULT_KIND_WEIGHTS)})
    #: override name -> MachineConfig field overrides; when non-empty
    #: the names become a design-space grid axis (every model of the
    #: spec is derived once per override set — FU counts, ROB size,
    #: IFQ depth, any flat MachineConfig field).
    machine_overrides: Dict[str, dict] = field(default_factory=dict)
    #: cell name -> fault-site policy spec (see
    #: :func:`repro.faults.policy.build_policy`); when non-empty the
    #: names become an addressable-injection grid axis and the spec's
    #: rates must all be 0 (site strikes replace the rate injector).
    fault_sites: Dict[str, dict] = field(default_factory=dict)
    replicates: int = 8
    instructions: int = 2_000
    warmup: int = 0
    base_seed: int = 2001
    workload_seed: int = 1_000_003
    max_cycles: Optional[int] = None

    def __post_init__(self):
        # Type-check first: spec files arrive as arbitrary JSON, and a
        # string rate or float replicate count would otherwise surface
        # as a TypeError traceback deep inside grid expansion.
        for field_name in ("replicates", "instructions", "warmup"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigError("%s must be an integer, got %r"
                                  % (field_name, value))
        if self.max_cycles is not None and (
                not isinstance(self.max_cycles, int)
                or isinstance(self.max_cycles, bool)):
            raise ConfigError("max_cycles must be an integer or null, "
                              "got %r" % (self.max_cycles,))
        for rate in self.rates_per_million:
            if not isinstance(rate, (int, float)) \
                    or isinstance(rate, bool):
                raise ConfigError("fault rates must be numbers, got %r"
                                  % (rate,))
        if not isinstance(self.mixes, dict):
            raise ConfigError("mixes must be a dict of name -> "
                              "kind-weight dict, got %r" % (self.mixes,))
        for mix_name, weights in self.mixes.items():
            if not isinstance(weights, dict):
                raise ConfigError("mix %r must map kinds to weights, "
                                  "got %r" % (mix_name, weights))
            for kind, weight in dict(weights).items():
                if not isinstance(weight, (int, float)) \
                        or isinstance(weight, bool):
                    raise ConfigError(
                        "mix %r weight for %r must be a number, got %r"
                        % (mix_name, kind, weight))
        if self.replicates < 1:
            raise ConfigError("replicates must be >= 1")
        if self.instructions < 1:
            raise ConfigError("instructions must be >= 1")
        if self.warmup < 0:
            raise ConfigError("warmup must be >= 0")
        if not self.workloads or not self.models \
                or not self.rates_per_million or not self.mixes:
            raise ConfigError("every campaign axis needs >= 1 value")
        for axis_name, axis in (("workloads", self.workloads),
                                ("models", self.models),
                                ("rates_per_million",
                                 self.rates_per_million)):
            # Duplicates would expand to identical trial keys, double-
            # count results and fake a tighter confidence interval.
            if len(set(axis)) != len(axis):
                raise ConfigError("duplicate values in %s: %r"
                                  % (axis_name, axis))
        for rate in self.rates_per_million:
            if rate < 0:
                raise ConfigError("fault rates must be >= 0")
        for workload in self.workloads:
            get_profile(workload)          # raises on unknown names
        for model in self.models:
            get_model(model)
        for mix_name, weights in self.mixes.items():
            # Borrow FaultConfig's weight validation.
            FaultConfig(rate_per_million=1.0, kind_weights=dict(weights))
        self._validate_machine_overrides()
        self._validate_fault_sites()

    def _validate_machine_overrides(self):
        if not isinstance(self.machine_overrides, dict):
            raise ConfigError(
                "machine_overrides must be a dict of name -> "
                "MachineConfig override dict, got %r"
                % (self.machine_overrides,))
        for name, overrides in self.machine_overrides.items():
            if not isinstance(name, str) or not name:
                raise ConfigError("machine override names must be "
                                  "non-empty strings, got %r" % (name,))
            if not isinstance(overrides, dict):
                raise ConfigError(
                    "machine override %r must map MachineConfig fields "
                    "to values, got %r" % (name, overrides))
            for key, value in overrides.items():
                if value is not None \
                        and not isinstance(value, _OVERRIDE_SCALARS):
                    raise ConfigError(
                        "machine override %r field %r must be a JSON "
                        "scalar, got %r" % (name, key, value))
            for model in self.models:
                # derive_model validates field names and re-runs the
                # MachineConfig invariants, so a bad override dies here
                # with a ConfigError instead of mid-campaign.
                derive_model(model, overrides)

    def _validate_fault_sites(self):
        if not isinstance(self.fault_sites, dict):
            raise ConfigError(
                "fault_sites must be a dict of name -> policy spec "
                "dict, got %r" % (self.fault_sites,))
        if not self.fault_sites:
            return
        for rate in self.rates_per_million:
            if rate > 0:
                raise ConfigError(
                    "a fault_sites campaign replaces the rate injector "
                    "with site policies; use rates_per_million=(0,) "
                    "(got rate %r)" % (rate,))
        for name, config in self.fault_sites.items():
            if not isinstance(name, str) or not name:
                raise ConfigError("fault_sites cell names must be "
                                  "non-empty strings, got %r" % (name,))
            # build_policy validates the spec shape, structure names,
            # site bounds and windows — a bad cell dies here with a
            # ConfigError instead of mid-campaign.
            build_policy(config, seed=0,
                         horizon=self.instructions + self.warmup)

    @property
    def grid_size(self) -> int:
        """Number of trials the spec expands to."""
        return (len(self.workloads) * len(self.models)
                * max(1, len(self.machine_overrides))
                * len(self.rates_per_million) * len(self.mixes)
                * max(1, len(self.fault_sites))
                * self.replicates)

    def trials(self) -> Iterator[Trial]:
        """Expand the grid into Trials, in deterministic order."""
        machine_axis = self._machine_axis()
        sites_axis = self._sites_axis()
        for workload in self.workloads:
            for model in self.models:
                for machine_name, machine_pairs in machine_axis:
                    for rate in self.rates_per_million:
                        rate = float(rate)
                        for mix_name in sorted(self.mixes):
                            # Canonicalize numbers to float so the same
                            # logical spec hashes identically whether
                            # its values arrived as ints (JSON spec
                            # file) or floats (CLI flags) — otherwise
                            # resume would silently match nothing.
                            weights = tuple(sorted(
                                (kind, float(weight)) for kind, weight
                                in self.mixes[mix_name].items()))
                            for sites_name, site_config in sites_axis:
                                for replicate in range(self.replicates):
                                    yield self._make_trial(
                                        workload, model, machine_name,
                                        machine_pairs, rate, mix_name,
                                        weights, sites_name,
                                        site_config, replicate)

    def _machine_axis(self):
        """The (name, override pairs) axis; [("", ())] when absent.

        The empty sentinel keeps trial material — and therefore every
        pre-existing trial key — byte-identical for specs without the
        axis.
        """
        if not self.machine_overrides:
            return [("", ())]
        return [(name,
                 tuple(sorted((key, _canonical_override_value(value))
                              for key, value
                              in self.machine_overrides[name].items())))
                for name in sorted(self.machine_overrides)]

    def _sites_axis(self):
        """The (name, canonical policy JSON) axis; [("", "")] when
        absent — the same empty sentinel trick as the machine axis."""
        if not self.fault_sites:
            return [("", "")]
        return [(name, _canonical_site_config(self.fault_sites[name]))
                for name in sorted(self.fault_sites)]

    def _make_trial(self, workload, model, machine_name, machine_pairs,
                    rate, mix_name, weights, sites_name, site_config,
                    replicate):
        material = {
            "campaign": self.name,
            "base_seed": self.base_seed,
            "workload": workload,
            "workload_seed": self.workload_seed,
            "model": model,
            "rate_per_million": rate,
            "mix": mix_name,
            "kind_weights": list(list(pair) for pair in weights),
            "replicate": replicate,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "max_cycles": self.max_cycles,
        }
        if machine_name:
            material["machine"] = machine_name
            material["machine_overrides"] = [
                list(pair) for pair in machine_pairs]
        if sites_name:
            material["sites"] = sites_name
            material["site_config"] = site_config
        key, fault_seed = _trial_key_and_seed(material)
        return Trial(key=key, workload=workload, model=model,
                     rate_per_million=rate, mix=mix_name,
                     kind_weights=weights, replicate=replicate,
                     instructions=self.instructions, warmup=self.warmup,
                     fault_seed=fault_seed,
                     workload_seed=self.workload_seed,
                     max_cycles=self.max_cycles,
                     machine=machine_name,
                     machine_overrides=machine_pairs,
                     sites=sites_name, site_config=site_config)

    # -- sharding ----------------------------------------------------------

    def shard(self, index: int, total: int) -> "CampaignShard":
        """Deterministic partition ``index`` of ``total`` over the grid.

        Shard membership is ``int(trial.key, 16) % total == index`` — a
        pure function of the trial's content hash — so N hosts each
        running one shard cover the grid exactly once, and the merged
        result stores aggregate byte-identically to a single-host run.
        Bounds are validated eagerly: a bad index must fail loudly, not
        expand to a silently empty grid.
        """
        for label, value in (("index", index), ("total", total)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigError("shard %s must be an integer, got %r"
                                  % (label, value))
        if total < 1:
            raise ConfigError("shard total must be >= 1, got %d" % total)
        if not 0 <= index < total:
            raise ConfigError(
                "shard index must be in [0, %d), got %d" % (total, index))
        return CampaignShard(spec=self, index=index, total=total)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "workloads": list(self.workloads),
            "models": list(self.models),
            "rates_per_million": list(self.rates_per_million),
            "mixes": {name: dict(weights)
                      for name, weights in self.mixes.items()},
            "replicates": self.replicates,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "base_seed": self.base_seed,
            "workload_seed": self.workload_seed,
            "max_cycles": self.max_cycles,
        }
        if self.machine_overrides:
            data["machine_overrides"] = {
                name: dict(overrides) for name, overrides
                in self.machine_overrides.items()}
        if self.fault_sites:
            data["fault_sites"] = {
                name: json.loads(_canonical_site_config(config))
                for name, config in self.fault_sites.items()}
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Build a spec from a plain dict (e.g. parsed JSON).

        Mixes may be given as a dict of weight dicts or as a list of
        preset names from :data:`~repro.core.faults.KIND_MIX_PRESETS`.
        """
        data = dict(data)
        mixes = data.get("mixes")
        if isinstance(mixes, str):
            mixes = [mixes]          # single preset name
        if isinstance(mixes, (list, tuple)):
            data["mixes"] = {name: get_kind_mix(name) for name in mixes}
        elif mixes is not None and not isinstance(mixes, dict):
            raise ConfigError(
                "mixes must be a dict of weight dicts or a list of "
                "preset names, got %r" % (mixes,))
        for axis in ("workloads", "models", "rates_per_million"):
            if axis in data:
                data[axis] = tuple(data[axis])
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigError("unknown campaign spec fields: %s"
                              % sorted(unknown))
        return cls(**data)

    @classmethod
    def from_json_file(cls, path: str) -> "CampaignSpec":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


@dataclass(frozen=True)
class CampaignShard:
    """One deterministic partition of a spec's trial keyspace.

    Quacks like its spec everywhere the engine and reports need it
    (``trials``, ``grid_size``, ``name``, attribute passthrough), so a
    :class:`~repro.campaign.api.CampaignSession` can run a shard
    exactly as it runs a full spec.
    """

    spec: CampaignSpec
    index: int
    total: int

    def trials(self) -> Iterator[Trial]:
        for trial in self.spec.trials():
            # Same partition function the sharded store uses to fan out
            # records — the two must never drift apart.
            if shard_of_key(trial.key, self.total) == self.index:
                yield trial

    @property
    def grid_size(self) -> int:
        return sum(1 for _ in self.trials())

    @property
    def name(self) -> str:
        return "%s[shard %d/%d]" % (self.spec.name, self.index,
                                    self.total)

    def __getattr__(self, attr):
        # Delegate spec attributes (workloads, replicates, ...) so shard
        # views drop into every spec-shaped API.  Dunder lookups (and
        # 'spec' itself, absent mid-unpickle) must fail normally or
        # copy/pickle protocols break.
        if attr.startswith("__") or attr == "spec":
            raise AttributeError(attr)
        return getattr(self.spec, attr)
