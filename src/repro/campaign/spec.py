"""Declarative campaign specifications and their trial expansion.

A :class:`CampaignSpec` names the axes of a Monte Carlo fault-injection
study — workloads, machine models, fault rates, kind-weight mixes and
seed replicates — and expands their cross product into individually
keyed :class:`Trial` objects.  The key is a content hash of everything
that defines the trial, so

* the same spec always expands to the same trials, in the same order;
* each trial's fault seed is derived from its own key, never from the
  position it happens to run at (workers=1 and workers=N agree);
* a persisted result can be matched back to its trial after a crash,
  which is what makes campaigns resumable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..core.faults import DEFAULT_KIND_WEIGHTS, FaultConfig, get_kind_mix
from ..errors import ConfigError
from ..models.presets import get_model
from ..workloads.profiles import get_profile

#: Spec-hash prefix length; 16 hex chars = 64 bits, collision-safe for
#: any campaign size this engine will see.
KEY_LENGTH = 16


@dataclass(frozen=True)
class Trial:
    """One fully resolved simulation: a single point of the campaign grid.

    ``kind_weights`` is a sorted tuple of (kind, weight) pairs so the
    trial stays hashable and picklable for process-pool workers.
    """

    key: str
    workload: str
    model: str
    rate_per_million: float
    mix: str
    kind_weights: tuple
    replicate: int
    instructions: int
    warmup: int
    fault_seed: int
    workload_seed: int
    max_cycles: int = None

    def fault_config(self):
        """The injector configuration for this trial (None if rate 0)."""
        if self.rate_per_million <= 0:
            return None
        return FaultConfig(rate_per_million=self.rate_per_million,
                           seed=self.fault_seed,
                           kind_weights=dict(self.kind_weights))

    def to_dict(self):
        data = {
            "key": self.key,
            "workload": self.workload,
            "model": self.model,
            "rate_per_million": self.rate_per_million,
            "mix": self.mix,
            "kind_weights": list(list(pair) for pair in self.kind_weights),
            "replicate": self.replicate,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "fault_seed": self.fault_seed,
            "workload_seed": self.workload_seed,
        }
        if self.max_cycles is not None:
            data["max_cycles"] = self.max_cycles
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(
            key=data["key"], workload=data["workload"],
            model=data["model"],
            rate_per_million=data["rate_per_million"],
            mix=data["mix"],
            kind_weights=tuple((kind, weight) for kind, weight
                               in data["kind_weights"]),
            replicate=data["replicate"],
            instructions=data["instructions"],
            warmup=data["warmup"],
            fault_seed=data["fault_seed"],
            workload_seed=data["workload_seed"],
            max_cycles=data.get("max_cycles"))


def _trial_key_and_seed(material):
    """Hash the canonical trial material into (key, fault seed)."""
    blob = json.dumps(material, sort_keys=True,
                      separators=(",", ":")).encode()
    digest = hashlib.sha256(blob).digest()
    key = digest.hex()[:KEY_LENGTH]
    # An independent slice of the digest seeds the fault injector, so
    # the seed is a pure function of the trial identity.
    seed = int.from_bytes(digest[16:24], "big") & 0x7FFFFFFF
    return key, seed


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative description of one injection campaign."""

    name: str = "campaign"
    workloads: tuple = ("gcc",)
    models: tuple = ("SS-2",)
    rates_per_million: tuple = (0.0, 1000.0)
    #: mix name -> kind-weight dict; names become a grid axis.
    mixes: dict = field(
        default_factory=lambda: {"default": dict(DEFAULT_KIND_WEIGHTS)})
    replicates: int = 8
    instructions: int = 2_000
    warmup: int = 0
    base_seed: int = 2001
    workload_seed: int = 1_000_003
    max_cycles: int = None

    def __post_init__(self):
        # Type-check first: spec files arrive as arbitrary JSON, and a
        # string rate or float replicate count would otherwise surface
        # as a TypeError traceback deep inside grid expansion.
        for field_name in ("replicates", "instructions", "warmup"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigError("%s must be an integer, got %r"
                                  % (field_name, value))
        if self.max_cycles is not None and (
                not isinstance(self.max_cycles, int)
                or isinstance(self.max_cycles, bool)):
            raise ConfigError("max_cycles must be an integer or null, "
                              "got %r" % (self.max_cycles,))
        for rate in self.rates_per_million:
            if not isinstance(rate, (int, float)) \
                    or isinstance(rate, bool):
                raise ConfigError("fault rates must be numbers, got %r"
                                  % (rate,))
        if not isinstance(self.mixes, dict):
            raise ConfigError("mixes must be a dict of name -> "
                              "kind-weight dict, got %r" % (self.mixes,))
        for mix_name, weights in self.mixes.items():
            if not isinstance(weights, dict):
                raise ConfigError("mix %r must map kinds to weights, "
                                  "got %r" % (mix_name, weights))
            for kind, weight in dict(weights).items():
                if not isinstance(weight, (int, float)) \
                        or isinstance(weight, bool):
                    raise ConfigError(
                        "mix %r weight for %r must be a number, got %r"
                        % (mix_name, kind, weight))
        if self.replicates < 1:
            raise ConfigError("replicates must be >= 1")
        if self.instructions < 1:
            raise ConfigError("instructions must be >= 1")
        if self.warmup < 0:
            raise ConfigError("warmup must be >= 0")
        if not self.workloads or not self.models \
                or not self.rates_per_million or not self.mixes:
            raise ConfigError("every campaign axis needs >= 1 value")
        for axis_name, axis in (("workloads", self.workloads),
                                ("models", self.models),
                                ("rates_per_million",
                                 self.rates_per_million)):
            # Duplicates would expand to identical trial keys, double-
            # count results and fake a tighter confidence interval.
            if len(set(axis)) != len(axis):
                raise ConfigError("duplicate values in %s: %r"
                                  % (axis_name, axis))
        for rate in self.rates_per_million:
            if rate < 0:
                raise ConfigError("fault rates must be >= 0")
        for workload in self.workloads:
            get_profile(workload)          # raises on unknown names
        for model in self.models:
            get_model(model)
        for mix_name, weights in self.mixes.items():
            # Borrow FaultConfig's weight validation.
            FaultConfig(rate_per_million=1.0, kind_weights=dict(weights))

    @property
    def grid_size(self):
        """Number of trials the spec expands to."""
        return (len(self.workloads) * len(self.models)
                * len(self.rates_per_million) * len(self.mixes)
                * self.replicates)

    def trials(self):
        """Expand the grid into Trials, in deterministic order."""
        for workload in self.workloads:
            for model in self.models:
                for rate in self.rates_per_million:
                    rate = float(rate)
                    for mix_name in sorted(self.mixes):
                        # Canonicalize numbers to float so the same
                        # logical spec hashes identically whether its
                        # values arrived as ints (JSON spec file) or
                        # floats (CLI flags) — otherwise resume would
                        # silently match nothing.
                        weights = tuple(sorted(
                            (kind, float(weight)) for kind, weight
                            in self.mixes[mix_name].items()))
                        for replicate in range(self.replicates):
                            yield self._make_trial(workload, model, rate,
                                                   mix_name, weights,
                                                   replicate)

    def _make_trial(self, workload, model, rate, mix_name, weights,
                    replicate):
        material = {
            "campaign": self.name,
            "base_seed": self.base_seed,
            "workload": workload,
            "workload_seed": self.workload_seed,
            "model": model,
            "rate_per_million": rate,
            "mix": mix_name,
            "kind_weights": list(list(pair) for pair in weights),
            "replicate": replicate,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "max_cycles": self.max_cycles,
        }
        key, fault_seed = _trial_key_and_seed(material)
        return Trial(key=key, workload=workload, model=model,
                     rate_per_million=rate, mix=mix_name,
                     kind_weights=weights, replicate=replicate,
                     instructions=self.instructions, warmup=self.warmup,
                     fault_seed=fault_seed,
                     workload_seed=self.workload_seed,
                     max_cycles=self.max_cycles)

    # -- serialisation -----------------------------------------------------

    def to_dict(self):
        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "models": list(self.models),
            "rates_per_million": list(self.rates_per_million),
            "mixes": {name: dict(weights)
                      for name, weights in self.mixes.items()},
            "replicates": self.replicates,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "base_seed": self.base_seed,
            "workload_seed": self.workload_seed,
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_dict(cls, data):
        """Build a spec from a plain dict (e.g. parsed JSON).

        Mixes may be given as a dict of weight dicts or as a list of
        preset names from :data:`~repro.core.faults.KIND_MIX_PRESETS`.
        """
        data = dict(data)
        mixes = data.get("mixes")
        if isinstance(mixes, str):
            mixes = [mixes]          # single preset name
        if isinstance(mixes, (list, tuple)):
            data["mixes"] = {name: get_kind_mix(name) for name in mixes}
        elif mixes is not None and not isinstance(mixes, dict):
            raise ConfigError(
                "mixes must be a dict of weight dicts or a list of "
                "preset names, got %r" % (mixes,))
        for axis in ("workloads", "models", "rates_per_million"):
            if axis in data:
                data[axis] = tuple(data[axis])
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigError("unknown campaign spec fields: %s"
                              % sorted(unknown))
        return cls(**data)

    @classmethod
    def from_json_file(cls, path):
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
