"""Pluggable result-store backends for campaign records.

Every backend persists the same thing — one JSON record per completed
trial, keyed by the trial's content hash — behind the common
:class:`StoreBackend` interface, so the engine, ``--resume`` and the
aggregation layer never care where records live:

* :class:`JSONLStore` — one flushed line per record in a single file
  (the original PR-1 store; ``ResultStore`` remains an alias).  A
  campaign killed mid-write leaves at most one torn trailing line,
  which the loader skips and the next append quarantines.
* :class:`SQLiteStore` — an indexed ``sqlite3`` table for million-trial
  campaigns: appends are transactional (a killed writer loses at most
  the uncommitted record, never the file), ``completed_keys`` is an
  index scan instead of a full parse, and concurrent appenders are
  serialised by sqlite's own locking.
* :class:`ShardedJSONLStore` — fans records across N JSONL shard files
  by key hash, so multi-host campaigns can write disjoint shards and
  :func:`merge_stores` can stitch them back together.

Stores are selected by URL-style path (:func:`open_store`)::

    out.jsonl            -> JSONLStore("out.jsonl")
    sqlite:campaign.db   -> SQLiteStore("campaign.db")
    shard:results/       -> ShardedJSONLStore("results/")
    shard:16:results/    -> ShardedJSONLStore("results/", shards=16)

All backends share the duplicate-key policy of the original JSONL
store: appends are never rejected, :meth:`StoreBackend.load` returns
every stored record in write order, and resume's "last record wins"
dict collapse plus :meth:`StoreBackend.compact` (drop torn tails and
stale duplicates, last-write-wins) handle the rest.
"""

from __future__ import annotations

import abc
import json
import os
import sqlite3
import zlib
from typing import Iterable, List, Optional, Set, Tuple

#: Default fan-out of :class:`ShardedJSONLStore` when the directory does
#: not already fix a shard count.
DEFAULT_SHARDS = 8

_SHARD_FILE = "shard-%03d.jsonl"


class StoreBackend(abc.ABC):
    """Interface every campaign result store implements.

    ``path`` is the backend's storage location (file, database file or
    directory) — the engine quotes it in error messages and the CLI
    prints it after a run.
    """

    path: str

    def __repr__(self):
        return "%s(%r)" % (type(self).__name__, self.path)

    @property
    @abc.abstractmethod
    def exists(self) -> bool:
        """Whether the backing storage has been created."""

    @abc.abstractmethod
    def truncate(self) -> None:
        """Drop every record and (re)create empty backing storage."""

    @abc.abstractmethod
    def append(self, record: dict) -> None:
        """Durably persist one trial record (must carry a ``key``)."""

    @abc.abstractmethod
    def load(self) -> List[dict]:
        """Every intact record, in write order; corruption is skipped."""

    @abc.abstractmethod
    def compact(self) -> Tuple[int, int]:
        """Drop torn tails and duplicate keys (last-write-wins) in
        place; returns ``(kept, dropped)`` record counts."""

    def completed_keys(self) -> Set[str]:
        """Set of trial keys that already have an intact record."""
        return {record["key"] for record in self.load()}

    @staticmethod
    def _check_key(record) -> str:
        key = record.get("key")
        if not key:
            raise ValueError("trial record has no 'key'")
        return key


class JSONLStore(StoreBackend):
    """Append-only JSONL store of trial records (one line per trial).

    Each append is written and flushed as a whole line, so a campaign
    killed mid-run leaves at most one torn line at the end of the file
    — which the loader skips — and every intact line is a trial that
    never needs to run again.  That is the whole resume protocol:
    re-expand the spec, drop the keys already on disk, run the rest.
    """

    def __init__(self, path):
        self.path = path

    @property
    def exists(self):
        return os.path.exists(self.path)

    def truncate(self):
        """Start a fresh campaign file (creates parent directories)."""
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "w"):
            pass

    def append(self, record):
        """Persist one trial record as a single flushed JSON line."""
        self._check_key(record)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        if self._tail_is_torn():
            line = "\n" + line
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _tail_is_torn(self):
        """True if the file ends mid-line (writer killed mid-append).

        Appending directly after a torn tail would merge the new record
        into the corrupt line and lose it; a newline first quarantines
        the fragment on its own (skipped) line.
        """
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return False
        if size == 0:
            return False
        with open(self.path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"

    def load(self):
        """All intact records, in file order; torn/corrupt lines skipped."""
        if not self.exists:
            return []
        records = []
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of a killed campaign
                if isinstance(record, dict) and "key" in record:
                    records.append(record)
        return records

    def compact(self):
        """Rewrite the file with one record per key (last write wins).

        Records keep their first-appearance order; torn tails, blank
        lines and non-record garbage disappear.  The rewrite goes
        through a temp file + ``os.replace`` so a crash mid-compaction
        never loses the original.
        """
        if not self.exists:
            return (0, 0)
        raw_lines = sum(1 for line in open(self.path) if line.strip())
        merged = {}
        for record in self.load():
            merged[record["key"]] = record       # dict keeps first slot
        tmp = self.path + ".compact.tmp"
        with open(tmp, "w") as handle:
            for record in merged.values():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return (len(merged), raw_lines - len(merged))


#: Backwards-compatible name of the PR-1 store.
ResultStore = JSONLStore


class SQLiteStore(StoreBackend):
    """Indexed sqlite3 store for million-trial campaigns.

    Records land in an append-ordered table with a key index, so
    ``completed_keys()`` never parses the full record set and appends
    from several processes are serialised by the database itself (30 s
    busy timeout).  Like the JSONL store it keeps duplicate keys until
    :meth:`compact`; a writer killed mid-append simply loses the
    uncommitted row — sqlite's journal is the "torn tail" protocol.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS trial_records (
            seq    INTEGER PRIMARY KEY AUTOINCREMENT,
            key    TEXT NOT NULL,
            record TEXT NOT NULL
        );
        CREATE INDEX IF NOT EXISTS idx_trial_records_key
            ON trial_records (key);
    """

    def __init__(self, path):
        self.path = path
        self._connection = None

    def _connect(self):
        if self._connection is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            connection = sqlite3.connect(self.path, timeout=30.0)
            connection.executescript(self._SCHEMA)
            connection.commit()
            self._connection = connection
        return self._connection

    def close(self):
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    @property
    def exists(self):
        return os.path.exists(self.path)

    def truncate(self):
        connection = self._connect()
        connection.execute("DELETE FROM trial_records")
        connection.commit()

    def append(self, record):
        key = self._check_key(record)
        connection = self._connect()
        connection.execute(
            "INSERT INTO trial_records (key, record) VALUES (?, ?)",
            (key, json.dumps(record, sort_keys=True)))
        connection.commit()

    def load(self):
        if not self.exists:
            return []
        rows = self._connect().execute(
            "SELECT record FROM trial_records ORDER BY seq")
        records = []
        for (blob,) in rows:
            try:
                record = json.loads(blob)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "key" in record:
                records.append(record)
        return records

    def completed_keys(self):
        if not self.exists:
            return set()
        rows = self._connect().execute(
            "SELECT DISTINCT key FROM trial_records")
        return {key for (key,) in rows}

    def compact(self):
        """Keep only the newest row per key; reclaim the space."""
        if not self.exists:
            return (0, 0)
        connection = self._connect()
        (total,) = connection.execute(
            "SELECT COUNT(*) FROM trial_records").fetchone()
        connection.execute(
            "DELETE FROM trial_records WHERE seq NOT IN "
            "(SELECT MAX(seq) FROM trial_records GROUP BY key)")
        connection.commit()
        connection.execute("VACUUM")
        (kept,) = connection.execute(
            "SELECT COUNT(*) FROM trial_records").fetchone()
        return (kept, total - kept)


class ShardedJSONLStore(StoreBackend):
    """N JSONL shard files under one directory, fanned out by key hash.

    The shard of a record is a pure function of its trial key, so
    every writer of the same directory routes a key to the same file
    and per-shard appends keep the single-file torn-tail guarantees.
    The shard count is fixed by whatever files already exist in the
    directory (so reopening a store never re-fans existing records);
    a fresh directory is created with ``shards`` files up front.
    """

    def __init__(self, path, shards: Optional[int] = None):
        self.path = path
        existing = self._existing_shard_files()
        if existing:
            self.shards = len(existing)
        else:
            self.shards = DEFAULT_SHARDS if shards is None else shards
        if self.shards < 1:
            raise ValueError("shard count must be >= 1")
        self._stores = [JSONLStore(os.path.join(path, _SHARD_FILE % i))
                        for i in range(self.shards)]

    def _existing_shard_files(self):
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        return sorted(name for name in names
                      if name.startswith("shard-")
                      and name.endswith(".jsonl"))

    def _ensure_layout(self):
        os.makedirs(self.path, exist_ok=True)
        for store in self._stores:
            if not store.exists:
                store.truncate()

    def _store_for(self, key):
        return self._stores[shard_of_key(key, self.shards)]

    @property
    def exists(self):
        return os.path.isdir(self.path)

    def truncate(self):
        os.makedirs(self.path, exist_ok=True)
        for store in self._stores:
            store.truncate()

    def append(self, record):
        key = self._check_key(record)
        self._ensure_layout()
        self._store_for(key).append(record)

    def load(self):
        """Records in shard order, write order within each shard."""
        records = []
        for store in self._stores:
            records.extend(store.load())
        return records

    def completed_keys(self):
        keys = set()
        for store in self._stores:
            keys.update(store.completed_keys())
        return keys

    def compact(self):
        kept = dropped = 0
        for store in self._stores:
            shard_kept, shard_dropped = store.compact()
            kept += shard_kept
            dropped += shard_dropped
        return (kept, dropped)


class RetryingStore(StoreBackend):
    """Wrap any backend with a :class:`~repro.resilience.retry.
    RetryPolicy` on its I/O methods.

    Store writes are the one durable side effect of a trial — a
    transient ``OSError`` (NFS hiccup, fd-table pressure, sqlite
    ``disk I/O error``) must not throw away a finished simulation.
    Appends/loads/compactions retry under the policy with the record
    key as jitter token; persistent failure propagates the last error
    unchanged.  ``sqlite3.OperationalError`` is an ``sqlite3.Error``,
    not an ``OSError``, so both are retried.
    """

    #: Exception classes treated as transient storage failures.
    RETRY_ON = (OSError, sqlite3.Error)

    def __init__(self, inner: StoreBackend, policy=None,
                 sleep=None):
        from ..resilience.retry import RetryPolicy
        self.inner = inner
        self.path = inner.path
        self.policy = policy if policy is not None \
            else RetryPolicy(attempts=3, base_delay=0.05, max_delay=1.0)
        self._sleep = sleep
        #: Appends that needed at least one retry (observability).
        self.retried = 0

    def _call(self, fn, token=""):
        def bump(attempt, exc):
            self.retried += 1
        kwargs = {"retry_on": self.RETRY_ON, "token": token,
                  "on_retry": bump}
        if self._sleep is not None:
            kwargs["sleep"] = self._sleep
        return self.policy.call(fn, **kwargs)

    @property
    def exists(self):
        return self.inner.exists

    def truncate(self):
        self._call(self.inner.truncate, token="truncate")

    def append(self, record):
        key = self._check_key(record)
        self._call(lambda: self.inner.append(record), token=key)

    def load(self):
        return self._call(self.inner.load, token="load")

    def compact(self):
        return self._call(self.inner.compact, token="compact")

    def completed_keys(self):
        return self._call(self.inner.completed_keys, token="keys")


def shard_of_key(key, total):
    """Deterministic shard index of a trial key (hex hash or any str)."""
    try:
        value = int(key, 16)
    except (TypeError, ValueError):
        value = zlib.crc32(str(key).encode())
    return value % total


def open_store(path: Optional[str]):
    """Backend from a URL-style path; ``None``/empty passes through.

    ``sqlite:FILE`` selects :class:`SQLiteStore`, ``shard:DIR`` (or
    ``shard:N:DIR`` for an explicit fan-out) selects
    :class:`ShardedJSONLStore`; anything else is a plain JSONL file.
    A :class:`StoreBackend` instance passes through unchanged.
    """
    if path is None or path == "":
        return None
    if isinstance(path, StoreBackend):
        return path
    if path.startswith("sqlite:"):
        return SQLiteStore(path[len("sqlite:"):])
    if path.startswith("shard:"):
        rest = path[len("shard:"):]
        head, _, tail = rest.partition(":")
        if tail and head.isdigit():
            return ShardedJSONLStore(tail, shards=int(head))
        return ShardedJSONLStore(rest)
    return JSONLStore(path)


def merge_stores(sources: Iterable[StoreBackend], dest: StoreBackend):
    """Merge records from ``sources`` into ``dest``; returns the count.

    Duplicate keys collapse last-write-wins (the same rule resume
    applies within one store), so merging the per-shard stores of a
    ``spec.shard(i, n)`` campaign rebuilds exactly the record set of
    the single-host run.

    Tie-break, precisely: sources are read in the order given, each
    source in its own :meth:`StoreBackend.load` order (write order),
    and the *last* record seen for a key wins — so a key duplicated
    across two sources resolves to the later source in the argument
    list, and a key duplicated within one source resolves to its
    newest write.  Trial keys are content hashes of the whole trial,
    so two honest writers can only ever disagree on a key through
    nondeterministic environment differences; last-write-wins simply
    keeps the freshest observation, mirroring what ``resume`` would
    have kept.
    """
    merged = {}
    for source in sources:
        for record in source.load():
            merged[record["key"]] = record
    for record in merged.values():
        dest.append(record)
    return len(merged)
