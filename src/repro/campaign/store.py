"""Crash-tolerant JSONL persistence for campaign results.

One line per completed trial, keyed by the trial's content hash.  Each
append is written and flushed as a whole line, so a campaign killed
mid-run leaves at most one torn line at the end of the file — which the
loader skips — and every intact line is a trial that never needs to run
again.  That is the whole resume protocol: re-expand the spec, drop the
keys already on disk, run the rest.
"""

from __future__ import annotations

import json
import os


class ResultStore:
    """Append-only JSONL store of trial records."""

    def __init__(self, path):
        self.path = path

    def __repr__(self):
        return "ResultStore(%r)" % self.path

    @property
    def exists(self):
        return os.path.exists(self.path)

    def truncate(self):
        """Start a fresh campaign file (creates parent directories)."""
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "w"):
            pass

    def append(self, record):
        """Persist one trial record as a single flushed JSON line."""
        if "key" not in record:
            raise ValueError("trial record has no 'key'")
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        if self._tail_is_torn():
            line = "\n" + line
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _tail_is_torn(self):
        """True if the file ends mid-line (writer killed mid-append).

        Appending directly after a torn tail would merge the new record
        into the corrupt line and lose it; a newline first quarantines
        the fragment on its own (skipped) line.
        """
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return False
        if size == 0:
            return False
        with open(self.path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"

    def load(self):
        """All intact records, in file order; torn/corrupt lines skipped."""
        if not self.exists:
            return []
        records = []
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of a killed campaign
                if isinstance(record, dict) and "key" in record:
                    records.append(record)
        return records

    def completed_keys(self):
        """Set of trial keys that already have an intact record."""
        return {record["key"] for record in self.load()}
