"""Memoized golden-reference execution for campaign classification.

Every trial of a campaign is classified against the paper's golden
reference (Section 5.1.1): an in-order functional execution of the same
program advanced by exactly as many instructions as the out-of-order
machine committed.  All trials of one (workload, model, budget) cell
share the same fault-free golden behaviour, so re-running the reference
from scratch per trial — and re-scanning every one of the 64Ki memory
words per comparison — is pure waste at campaign scale.

Two mechanisms remove that waste while keeping classification
byte-identical to the naive path (the golden-cache equivalence suite
asserts this):

* :class:`GoldenTrace` — one functional simulator per cell, made
  *seekable*: an undo log (each in-order instruction touches at most
  one register or one memory word) lets the trace rewind to any earlier
  committed count, so per-trial positioning costs only the delta from
  the previous trial instead of a fresh run.
* :func:`compare_with_golden` — a :class:`~repro.functional.checker.
  StateDiff`-compatible comparison that scans registers plus the
  *union of store footprints* of the two memories.  Both memories are
  initialised from the same program image, so cells never stored to by
  either side are equal by construction; the result is identical to
  :func:`repro.functional.checker.compare_states` including mismatch
  ordering.
"""

from __future__ import annotations

from collections import OrderedDict

from ..functional.checker import StateDiff
from ..functional.numeric import u64, values_equal
from ..functional.simulator import FunctionalSimulator
from ..isa.opcodes import Kind
from ..isa.registers import NUM_LOGICAL_REGS

#: Cached traces per worker process (LRU, small: each trace owns a full
#: simulated memory).
_TRACE_CACHE_LIMIT = 8
_TRACE_CACHE = OrderedDict()
_TRACE_CACHE_COUNTERS = {"hits": 0, "misses": 0, "evictions": 0}

# Undo-record slot kinds.
_UNDO_NONE = 0
_UNDO_REG = 1
_UNDO_MEM = 2


class GoldenTrace:
    """A fault-free in-order execution, seekable by committed count."""

    def __init__(self, program, mem_size=None):
        self.program = program
        self.sim = FunctionalSimulator(program, mem_size=mem_size)
        #: One record per executed instruction: (pc before the step,
        #: slot kind, register index or memory cell index, old value).
        self._undo = []

    @property
    def position(self):
        """Committed instructions currently reflected by the state."""
        return self.sim.instret

    def seek(self, count):
        """Architectural state after exactly ``count`` golden commits.

        Stops early (like the naive per-trial loop) if the program
        halts before ``count`` instructions.  Returns the simulator's
        live :class:`~repro.functional.state.ArchState`; callers must
        not mutate it.
        """
        sim = self.sim
        state = sim.state
        undo = self._undo
        while sim.instret > count:
            pc, slot_kind, index, old = undo.pop()
            state.pc = pc
            state.halted = False      # recorded steps start un-halted
            if slot_kind == _UNDO_REG:
                state.regs[index] = old
            elif slot_kind == _UNDO_MEM:
                state.memory.poke(index, old)
            sim.instret -= 1
        fetch = self.program.fetch
        while sim.instret < count and not state.halted:
            pc = state.pc
            inst = fetch(pc)
            if inst is None:
                sim.step()            # raises the naive path's error
                return state
            info = inst.info
            if info.writes_reg:
                undo.append((pc, _UNDO_REG, inst.rd, state.regs[inst.rd]))
            elif info.kind == Kind.STORE:
                address = u64(state.read_reg(inst.rs1) + inst.imm)
                undo.append((pc, _UNDO_MEM, address,
                             state.memory.peek(address)))
            else:
                undo.append((pc, _UNDO_NONE, 0, None))
            sim.step()
        return state


def cached_trace(key, program, mem_size=None):
    """The (per-process) memoized :class:`GoldenTrace` for one cell.

    ``key`` must capture the program's semantic identity (e.g.
    workload name + seed + model memory size); the program object is
    additionally identity-checked to defeat stale entries.
    """
    trace = _TRACE_CACHE.get(key)
    if trace is not None and trace.program is program:
        _TRACE_CACHE.move_to_end(key)
        _TRACE_CACHE_COUNTERS["hits"] += 1
        return trace
    _TRACE_CACHE_COUNTERS["misses"] += 1
    trace = GoldenTrace(program, mem_size=mem_size)
    _TRACE_CACHE[key] = trace
    _TRACE_CACHE.move_to_end(key)
    while len(_TRACE_CACHE) > _TRACE_CACHE_LIMIT:
        _TRACE_CACHE.popitem(last=False)
        _TRACE_CACHE_COUNTERS["evictions"] += 1
    return trace


def trace_cache_stats():
    """Size, limit and hit/miss/eviction counters of the trace cache."""
    stats = dict(_TRACE_CACHE_COUNTERS)
    stats["size"] = len(_TRACE_CACHE)
    stats["limit"] = _TRACE_CACHE_LIMIT
    return stats


def clear_trace_cache():
    """Drop all memoized traces and reset counters (for tests)."""
    _TRACE_CACHE.clear()
    for name in _TRACE_CACHE_COUNTERS:
        _TRACE_CACHE_COUNTERS[name] = 0


def compare_with_golden(arch, golden_state):
    """Diff two states that share a program image, via store footprints.

    Byte-identical to :func:`repro.functional.checker.compare_states`
    for states whose memories were initialised from the same image and
    have the same size: any cell outside the union of the two written
    sets still holds the shared image value on both sides.
    """
    diff = StateDiff()
    left_regs = arch.regs
    right_regs = golden_state.regs
    for index in range(NUM_LOGICAL_REGS):
        a = left_regs[index]
        b = right_regs[index]
        if not values_equal(a, b):
            diff.reg_mismatches.append((index, a, b))
    left_memory = arch.memory
    right_memory = golden_state.memory
    if len(left_memory) != len(right_memory):
        raise ValueError("cannot compare memories of different sizes")
    left_cells = left_memory._cells
    right_cells = right_memory._cells
    for address in sorted(left_memory.written | right_memory.written):
        a = left_cells[address]
        b = right_cells[address]
        if not values_equal(a, b):
            diff.mem_mismatches.append((address, a, b))
    return diff
