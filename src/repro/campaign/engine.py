"""Campaign execution: the same trials, serially or across processes.

The engine guarantees that parallelism is purely a wall-clock
optimisation: every trial is a pure function of its
:class:`~repro.campaign.spec.Trial` (the fault seed is derived from the
trial key, never from scheduling order), results are re-ordered back
into spec-expansion order before aggregation, and the JSONL store makes
a killed campaign resumable from its completed keys.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from ..errors import ConfigError
from .outcome import run_trial
from .spec import Trial


def execute_trial_payload(payload):
    """Worker entry point: run one serialised trial, return its record.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can
    pickle it; takes and returns plain dicts for the same reason.
    Accepts either a bare ``Trial.to_dict()`` (the PR-1 payload shape)
    or ``{"trial": ..., "simulator": ..., "golden_cache": ...,
    "reuse_faultfree": ...}``.
    """
    if "trial" in payload:
        trial = Trial.from_dict(payload["trial"])
        return run_trial(
            trial,
            simulator=payload.get("simulator", "fast"),
            golden_cache=payload.get("golden_cache", True),
            reuse_faultfree=payload.get("reuse_faultfree", True),
        ).to_record()
    trial = Trial.from_dict(payload)
    return run_trial(trial).to_record()


@dataclass
class CampaignResult:
    """Everything a finished (or resumed) campaign run produced."""

    spec: object
    #: One record per trial of the grid, in spec-expansion order.
    records: list = field(default_factory=list)
    executed: int = 0               # trials simulated by this run
    skipped: int = 0                # trials satisfied from the store

    @property
    def outcome_counts(self):
        counts = {}
        for record in self.records:
            counts[record["outcome"]] = \
                counts.get(record["outcome"], 0) + 1
        return counts


def run_campaign(spec, workers=1, store=None, resume=False,
                 progress=None, simulator="fast", golden_cache=True,
                 reuse_faultfree=True):
    """Execute every trial of ``spec`` not already in ``store``.

    ``workers > 1`` fans trials out over a process pool; results are
    identical to a serial run.  With ``resume=True`` (requires a store)
    completed keys are skipped; without it the store must be empty or
    absent — a non-empty store is refused rather than silently wiped,
    because those records may be hours of finished trials.
    ``progress`` is an optional callable ``(done, total, record)``
    invoked per trial.  ``simulator``/``golden_cache``/
    ``reuse_faultfree`` select between the optimized and the frozen
    reference execution paths (byte-identical records either way; see
    :func:`repro.campaign.outcome.run_trial`).
    """
    if workers < 1:
        raise ConfigError("workers must be >= 1")
    if resume and store is None:
        raise ConfigError("resume requires a result store")
    trials = list(spec.trials())
    completed = {}
    if store is not None:
        if resume:
            wanted = {trial.key for trial in trials}
            completed = {record["key"]: record
                         for record in store.load()
                         if record["key"] in wanted}
        else:
            if store.completed_keys():
                raise ConfigError(
                    "result store %s already holds completed trials; "
                    "pass resume=True (--resume) to continue it, or "
                    "delete the file to start fresh" % store.path)
            store.truncate()
    todo = [trial for trial in trials if trial.key not in completed]
    result = CampaignResult(spec=spec, executed=len(todo),
                            skipped=len(trials) - len(todo))
    options = {"simulator": simulator, "golden_cache": golden_cache,
               "reuse_faultfree": reuse_faultfree}
    fresh = _execute(todo, workers, store, progress, options,
                     done_offset=len(completed), total=len(trials))
    completed.update(fresh)
    result.records = [completed[trial.key] for trial in trials]
    return result


def _execute(todo, workers, store, progress, options, done_offset,
             total):
    """Run the outstanding trials; return {key: record}."""
    records = {}
    done = done_offset

    def payload(trial):
        return dict(options, trial=trial.to_dict())

    def collect(record):
        nonlocal done
        records[record["key"]] = record
        if store is not None:
            store.append(record)
        done += 1
        if progress is not None:
            progress(done, total, record)

    if workers == 1 or len(todo) <= 1:
        for trial in todo:
            collect(execute_trial_payload(payload(trial)))
        return records
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(execute_trial_payload, payload(trial))
                   for trial in todo]
        for future in as_completed(futures):
            collect(future.result())
    return records
