"""Deprecated campaign entry point, kept for PR-1/PR-2 callers.

The execution core now lives in :mod:`repro.campaign.api` behind the
:class:`~repro.campaign.api.CampaignSession` facade; this module keeps
the original ``run_campaign(**kwargs)`` surface (and the historical
import locations of :func:`execute_trial_payload` and
:class:`CampaignResult`) working byte-identically — same records, same
progress-callback semantics, same error messages — while new code
migrates::

    # old                                  # new
    run_campaign(spec, workers=4,          CampaignSession(
        store=ResultStore("r.jsonl"),          spec,
        resume=True,                           options=ExecutionOptions(workers=4),
        progress=cb)                           store="r.jsonl").resume()
"""

from __future__ import annotations

import warnings

from .api import (CampaignResult, CampaignSession, ExecutionOptions,
                  TRIAL_FINISHED, execute_trial_payload)

__all__ = ["CampaignResult", "execute_trial_payload", "run_campaign"]


def run_campaign(spec, workers=1, store=None, resume=False,
                 progress=None, simulator="fast", golden_cache=True,
                 reuse_faultfree=True, checkpointing=False,
                 checkpoint_interval=None, persistent_workers=False):
    """Execute every trial of ``spec`` not already in ``store``.

    .. deprecated::
        Thin wrapper over :class:`~repro.campaign.api.CampaignSession`;
        the keyword pile maps onto
        :class:`~repro.campaign.api.ExecutionOptions` and the
        ``progress(done, total, record)`` closure onto a
        ``trial_finished`` event listener.  Behaviour (records, resume
        semantics, refusal of a non-empty store without ``resume``,
        error messages) is unchanged.
    """
    warnings.warn(
        "run_campaign(...) is deprecated; use "
        "repro.campaign.CampaignSession (ExecutionOptions absorbs the "
        "simulator/golden_cache/reuse_faultfree/workers switches)",
        DeprecationWarning, stacklevel=2)
    options = ExecutionOptions(simulator=simulator,
                               golden_cache=golden_cache,
                               reuse_faultfree=reuse_faultfree,
                               workers=workers,
                               checkpointing=checkpointing,
                               checkpoint_interval=checkpoint_interval,
                               persistent_workers=persistent_workers)
    listeners = []
    if progress is not None:
        def relay(event):
            if event.kind == TRIAL_FINISHED:
                progress(event.done, event.total, event.record)
        listeners.append(relay)
    session = CampaignSession(spec, options=options, store=store,
                              listeners=tuple(listeners))
    return session.resume() if resume else session.run()
