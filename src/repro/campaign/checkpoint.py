"""Checkpointed fast-forward: skip a fault trial's shared prefix.

Every fault trial of a cell re-simulates the same fault-free prefix up
to its first strike — for low rates and directed site lists that prefix
is most of the run.  This module removes it without changing a single
record byte:

* :func:`run_windowed_capturing` runs the cell's fault-free baseline
  through the exact warmup-then-measure protocol of
  :func:`repro.harness.experiment.run_windowed`, pausing at periodic
  instruction boundaries to take a
  :class:`~repro.uarch.snapshot.ProcessorSnapshot`.  Chained
  ``Processor.run`` calls check their budgets before every step, so
  the segmented run is cycle-for-cycle identical to the straight one.
* :class:`CellCheckpoints` owns one cell's snapshots plus a memoized
  injector RNG pre-walk (:meth:`CellCheckpoints.prewalk`): a single
  replay of the injector's draw stream yields *both* the silent-trial
  verdict and, per checkpoint boundary, the RNG state a restored run
  must continue from — the walk
  :func:`repro.campaign.outcome._injector_stays_silent` used to do per
  trial now runs once and serves both consumers.
* :func:`resume_windowed` restores a snapshot into a freshly built
  fault-armed processor, re-seats the injector RNG, and finishes the
  windowed protocol from the snapshot's position.

Why the prefix is exactly equivalent: before its first hit the rate
injector only *draws* (one ``pc`` draw per group when the mix has
``pc`` weight, one draw per redundant copy — see
``Replicator.build_group``), and a miss leaves machine state untouched;
site policies strike only at dispatched-group index >= their
``site.index``.  So a snapshot taken at dispatched-group count ``D``
with ``D <= first_strike_group`` plus the RNG state recorded at draw
position ``D`` reproduces the struck run's machine and draw stream
exactly.

The store is per-process (snapshots share decoded-instruction objects
with the live program and cannot cross pickling boundaries) and
LRU-bounded so long multi-cell campaigns do not grow without limit.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.faults import FaultInjector
from ..harness.experiment import cycle_budget
from ..uarch.snapshot import ProcessorSnapshot

#: Cells whose checkpoints are retained per process (each cell holds a
#: handful of full memory images; see CHECKPOINTS_PER_CELL).
_STORE_LIMIT = 4

#: Snapshot boundaries per cell when no explicit interval is given.
CHECKPOINTS_PER_CELL = 8

#: Never checkpoint more often than this many committed instructions.
MIN_INTERVAL = 50


def default_interval(instructions, warmup=0):
    """The auto-tuned snapshot spacing for one cell's budget."""
    return max(MIN_INTERVAL,
               (instructions + warmup) // CHECKPOINTS_PER_CELL)


def _prewalk_injector(fault_config, redundancy, boundaries, max_groups):
    """One replay of the injector's miss stream over the baseline run.

    Returns ``(first_hit, states)``: ``first_hit`` is the 0-based
    dispatched-group index whose draws contain the first hit (``None``
    if every draw over ``max_groups`` groups misses — the trial is
    provably silent), and ``states`` maps each requested boundary
    ``D <= first_hit`` to the RNG state after consuming exactly the
    draws of groups ``0..D-1`` — what a run restored at ``D`` must
    continue from.  Draw order mirrors ``Replicator.build_group``
    (and `_injector_stays_silent`) exactly.
    """
    probe = FaultInjector(fault_config)
    rng = probe._rng
    random = rng.random
    rate = probe._rate
    pc_rate = probe._pc_rate
    states = {}
    want = sorted(set(boundaries))
    position = 0
    for group in range(max_groups):
        while position < len(want) and want[position] == group:
            states[group] = rng.getstate()
            position += 1
        if pc_rate > 0 and random() < pc_rate:
            return group, states
        for _ in range(redundancy):
            if random() < rate:
                return group, states
    while position < len(want) and want[position] <= max_groups:
        states[want[position]] = rng.getstate()
        position += 1
    return None, states


class CellCheckpoints:
    """The snapshot ladder plus pre-walk memo of one campaign cell."""

    def __init__(self, snapshots):
        self.snapshots = sorted(snapshots,
                                key=lambda s: s.dispatched_groups)
        self.boundaries = tuple(s.dispatched_groups
                                for s in self.snapshots)
        self.program = self.snapshots[0].program if self.snapshots \
            else None
        self._prewalks = {}

    def prewalk(self, fault_config, redundancy, max_groups):
        """Memoized :func:`_prewalk_injector` for one trial's injector.

        The silent-trial check and the checkpoint selection both need
        this walk; the memo makes the second ask free.  Keyed by the
        injector identity (rate, seed, kind mix) — each trial seeds its
        own injector, so this is a within-trial dedup, not a
        cross-trial cache.
        """
        key = (fault_config.rate_per_million, fault_config.seed,
               tuple(sorted(fault_config.kind_weights.items())),
               redundancy, max_groups)
        entry = self._prewalks.get(key)
        if entry is None:
            entry = _prewalk_injector(fault_config, redundancy,
                                      self.boundaries, max_groups)
            # One live memo entry: trials arrive one at a time per
            # process, so keeping only the latest walk is enough.
            self._prewalks.clear()
            self._prewalks[key] = entry
        return entry

    def best_before(self, group_index):
        """The latest snapshot safe for a first strike at ``group_index``.

        Safe means ``snapshot.dispatched_groups <= group_index``: the
        restored machine has dispatched only groups that provably
        carried no strike.  Returns ``(snapshot, boundary)`` or
        ``None`` when even the earliest snapshot is past the strike.
        """
        best = None
        for snapshot in self.snapshots:
            if snapshot.dispatched_groups <= group_index:
                best = snapshot
            else:
                break
        if best is None:
            return None
        return best, best.dispatched_groups


class CheckpointStore:
    """LRU cell-checkpoint store with hit/miss/eviction counters."""

    def __init__(self, limit=_STORE_LIMIT):
        self.limit = limit
        self._cells = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        cell = self._cells.get(key)
        if cell is None:
            self.misses += 1
            return None
        self._cells.move_to_end(key)
        self.hits += 1
        return cell

    def put(self, key, cell):
        self._cells[key] = cell
        self._cells.move_to_end(key)
        while len(self._cells) > self.limit:
            self._cells.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key):
        """Drop one cell (stale program identity)."""
        self._cells.pop(key, None)

    def clear(self):
        self._cells.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self):
        return len(self._cells)

    def stats(self):
        return {"size": len(self._cells), "limit": self.limit,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


_STORE = CheckpointStore()


def get_store():
    """The per-process checkpoint store."""
    return _STORE


def clear_checkpoints():
    """Drop all cell checkpoints and reset counters (for tests)."""
    _STORE.clear()


def checkpoint_store_stats():
    """Counters of the per-process checkpoint store."""
    return _STORE.stats()


def run_windowed_capturing(processor, max_instructions,
                           warmup_instructions=0, max_cycles=None,
                           interval=None, capture=None):
    """`run_windowed`, segmented to snapshot at instruction boundaries.

    Chains ``processor.run`` calls toward absolute instruction targets
    (each chunk recomputed from the actual committed count, so
    commit-width overshoot never drifts the protocol), stamping the
    warmup extras exactly where the straight protocol does, and calling
    ``capture(processor)`` after each crossed multiple of ``interval``
    — after any warmup stamping due at the same boundary, never at the
    final target, never once the machine halted or exhausted its cycle
    budget.  Returns ``(stats,
    warm_cycles, warm_instructions)`` exactly like
    :func:`repro.harness.experiment.run_windowed`.
    """
    if max_cycles is None:
        max_cycles = cycle_budget(max_instructions, warmup_instructions)
    if interval is None:
        interval = default_interval(max_instructions,
                                    warmup_instructions)
    # The straight protocol's measurement run targets are *relative*
    # to the committed count after warmup, overshoot included — the
    # final absolute target is only known once warmup completes.
    final = max_instructions if not warmup_instructions else None
    stats = processor.stats
    warm_cycles = warm_instructions = 0
    warm_pending = bool(warmup_instructions)
    next_mark = interval
    while True:
        current = stats.instructions
        phase_end = warmup_instructions if warm_pending else final
        target = min(phase_end, next_mark)
        if target <= current:
            # A previous chunk overshot this boundary; advance the
            # mark without stepping.
            pass
        else:
            stats = processor.run(max_instructions=target - current,
                                  max_cycles=max_cycles)
        current = stats.instructions
        stalled = processor.halted or processor.cycle >= max_cycles
        if warm_pending and (current >= warmup_instructions or stalled):
            # The straight protocol stamps after run(warmup) returns,
            # whether or not the warmup budget was actually reached.
            warm_cycles = processor.cycle
            warm_instructions = current
            stats.extras["warmup_cycles"] = warm_cycles
            stats.extras["warmup_instructions"] = warm_instructions
            warm_pending = False
            final = warm_instructions + max_instructions
        if stalled or (final is not None and current >= final):
            break
        if current >= next_mark:
            if capture is not None:
                capture(processor)
            next_mark = current - current % interval + interval
    stats.cycles = processor.cycle
    return stats, warm_cycles, warm_instructions


def resume_windowed(processor, snapshot, rng_state, max_instructions,
                    warmup_instructions=0, max_cycles=None):
    """Finish the windowed protocol from a restored snapshot.

    ``processor`` must be freshly built with this trial's injector or
    policy; ``rng_state`` (from :meth:`CellCheckpoints.prewalk`)
    re-seats the rate injector's RNG at the snapshot's draw position —
    ``None`` for site policies, which consume no randomness after
    construction.  Returns ``(stats, warm_cycles, warm_instructions)``
    exactly like the full-run protocol.
    """
    snapshot.restore_into(processor)
    if rng_state is not None:
        processor.injector._rng.setstate(rng_state)
    if max_cycles is None:
        max_cycles = cycle_budget(max_instructions, warmup_instructions)
    stats = processor.stats
    current = stats.instructions
    if warmup_instructions and current < warmup_instructions:
        stats = processor.run(
            max_instructions=warmup_instructions - current,
            max_cycles=max_cycles)
        warm_cycles = processor.cycle
        warm_instructions = stats.instructions
        stats.extras["warmup_cycles"] = warm_cycles
        stats.extras["warmup_instructions"] = warm_instructions
    else:
        # Snapshots past the warmup boundary carry the stamps the
        # capturing run made at the crossing.
        warm_cycles = stats.extras.get("warmup_cycles", 0)
        warm_instructions = stats.extras.get("warmup_instructions", 0)
    # Measurement targets are relative to the post-warmup committed
    # count, overshoot included, exactly like the straight protocol.
    final = warm_instructions + max_instructions
    stats = processor.run(
        max_instructions=final - stats.instructions,
        max_cycles=max_cycles)
    return stats, warm_cycles, warm_instructions
