"""Adaptive sampling: stop converged cells early, spend the budget on
noisy ones.

A Monte Carlo campaign's cost is dominated by cells that were already
statistically settled hundreds of replicates ago.  A
:class:`SamplingPlan` attached to
:class:`~repro.campaign.api.ExecutionOptions` turns the session's
fixed-replicate grid into a self-scheduling sweep:

* ``SamplingPlan.fixed()`` (or ``sampling=None``) is the historical
  behaviour — every pre-keyed replicate of every cell runs;
* ``SamplingPlan.wilson(target_halfwidth, metric=...)`` watches each
  cell's Wilson confidence interval as its trials finish and **closes
  the cell** once the interval's half-width reaches the target (with at
  least ``min_replicates`` observations), reallocating the remaining
  replicate budget to whichever open cell currently has the widest
  interval.

The crucial invariant: adaptation only ever *selects which pre-keyed
replicates run*.  Trials still come from
:meth:`~repro.campaign.spec.CampaignSpec.trials` with their
content-hash keys and content-derived seeds, so

* any cell that runs to completion produces records byte-identical to
  the fixed plan's (an unreachable target degenerates to the fixed
  plan exactly);
* ``--resume`` works mid-adaptation — records already in the store
  count toward their cell's interval and are never re-run;
* shard views adapt per shard (each shard judges convergence on its
  own slice of a cell's replicates — a conservative split, since every
  shard must individually reach the target).

Metrics mirror :mod:`~repro.campaign.aggregate` exactly:
``sdc_rate`` is SDC outcomes over all finished trials of the cell;
``coverage`` is correct outcomes over *fault-struck* trials (cells that
never see a fault — rate-0 cells — keep the degenerate (0, 1) interval
and therefore run to completion, like the fixed plan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError
from .aggregate import DEFAULT_Z, trial_cell, wilson_interval
from .outcome import DETECTED_RECOVERED, MASKED, SDC

#: Convergence metrics a plan can watch (same definitions as the
#: per-cell aggregate).
COVERAGE = "coverage"
SDC_RATE = "sdc_rate"
METRICS = (COVERAGE, SDC_RATE)

FIXED = "fixed"
WILSON = "wilson"
MODES = (FIXED, WILSON)

#: Why a cell stopped scheduling new replicates.
CONVERGED = "converged"          # half-width target reached
EXHAUSTED = "exhausted"          # every pre-keyed replicate ran
CAPPED = "capped"                # max_replicates reached, target not
#: Merged-view only (:func:`merged_adaptive_summary`): the cell was
#: stopped by per-shard decisions without the *merged* sample reaching
#: the target.
SHARD_LOCAL = "shard_local"


def wilson_halfwidth(successes, total, z=DEFAULT_Z):
    """Half-width of the Wilson interval; 0.5 for an empty sample."""
    low, high = wilson_interval(successes, total, z=z)
    return (high - low) / 2.0


@dataclass(frozen=True)
class SamplingPlan:
    """How many replicates of each cell actually run.

    Build one through :meth:`fixed` or :meth:`wilson` — the constructor
    is the serialisation surface (:meth:`to_dict` / :meth:`from_dict`),
    not the ergonomic one.  ``min_replicates`` keeps early lucky
    streaks from closing a cell on three trials, and it guards the
    *metric's own denominator* (fault-struck trials for ``coverage``,
    all trials for ``sdc_rate``) — a low-rate cell with four clean
    trials and three faulty ones has a 3-observation coverage sample,
    not a 7-observation one.  ``max_replicates`` optionally caps a
    cell below the spec's replicate count (records are then no longer
    a superset-equal of the fixed plan's — the cap is an explicit
    budget cut, not a convergence decision).
    """

    mode: str = FIXED
    target_halfwidth: float = 0.0
    metric: str = COVERAGE
    min_replicates: int = 4
    max_replicates: Optional[int] = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ConfigError("unknown sampling mode %r (choose from %s)"
                              % (self.mode, "/".join(MODES)))
        if self.metric not in METRICS:
            raise ConfigError("unknown sampling metric %r (choose from "
                              "%s)" % (self.metric, "/".join(METRICS)))
        if not isinstance(self.min_replicates, int) \
                or isinstance(self.min_replicates, bool) \
                or self.min_replicates < 1:
            raise ConfigError("min_replicates must be an integer >= 1, "
                              "got %r" % (self.min_replicates,))
        if self.max_replicates is not None:
            if not isinstance(self.max_replicates, int) \
                    or isinstance(self.max_replicates, bool) \
                    or self.max_replicates < 1:
                raise ConfigError("max_replicates must be an integer "
                                  ">= 1 or None, got %r"
                                  % (self.max_replicates,))
            if self.max_replicates < self.min_replicates:
                raise ConfigError(
                    "max_replicates (%d) must be >= min_replicates (%d)"
                    % (self.max_replicates, self.min_replicates))
        if self.mode == WILSON:
            if not isinstance(self.target_halfwidth, (int, float)) \
                    or isinstance(self.target_halfwidth, bool) \
                    or not 0.0 < float(self.target_halfwidth) <= 0.5:
                raise ConfigError(
                    "target_halfwidth must be in (0, 0.5], got %r"
                    % (self.target_halfwidth,))

    @classmethod
    def fixed(cls) -> "SamplingPlan":
        """The historical plan: every replicate of every cell runs."""
        return cls()

    @classmethod
    def wilson(cls, target_halfwidth, metric=COVERAGE,
               min_replicates=4,
               max_replicates: Optional[int] = None) -> "SamplingPlan":
        """Close each cell once its Wilson half-width <= the target."""
        return cls(mode=WILSON,
                   target_halfwidth=float(target_halfwidth),
                   metric=metric, min_replicates=min_replicates,
                   max_replicates=max_replicates)

    @property
    def is_adaptive(self) -> bool:
        return self.mode == WILSON

    def to_dict(self) -> dict:
        data = {"mode": self.mode}
        if self.mode == WILSON:
            data["target_halfwidth"] = self.target_halfwidth
            data["metric"] = self.metric
            data["min_replicates"] = self.min_replicates
            if self.max_replicates is not None:
                data["max_replicates"] = self.max_replicates
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SamplingPlan":
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigError("unknown sampling plan fields: %s"
                              % sorted(unknown))
        return cls(**data)


class CellTracker:
    """Running per-cell sample statistics for the adaptive scheduler.

    Counters mirror :class:`~repro.campaign.aggregate.CellStats` for
    the two supported metrics; ``pending`` holds the cell's not-yet-run
    trials in spec order, so "run one more replicate" is always the
    lowest un-run replicate index — the property that keeps an
    adaptive run's record set a prefix-per-cell of the fixed plan's.
    """

    __slots__ = ("cell", "order", "pending", "inflight", "done",
                 "executed", "faulty", "covered", "sdc", "closed")

    def __init__(self, cell, order):
        self.cell = cell
        self.order = order           # spec-expansion rank, tie-breaker
        self.pending: List = []      # un-run Trials, spec order
        self.inflight = 0            # submitted, not yet finished
        self.done = 0                # observed records (store + fresh)
        self.executed = 0            # observed fresh this run
        self.faulty = 0              # trials with >= 1 injected fault
        self.covered = 0             # faulty trials that stayed correct
        self.sdc = 0                 # silent-corruption outcomes
        self.closed: Optional[str] = None

    def observe(self, record, fresh=True):
        """Fold one finished record of this cell into the sample."""
        self.done += 1
        if fresh:
            self.executed += 1
        outcome = record["outcome"]
        if outcome == SDC:
            self.sdc += 1
        if record.get("faults_injected", 0) > 0:
            self.faulty += 1
            if outcome in (MASKED, DETECTED_RECOVERED):
                self.covered += 1

    def halfwidth(self, metric) -> float:
        """Current Wilson half-width of the chosen metric."""
        if metric == COVERAGE:
            return wilson_halfwidth(self.covered, self.faulty)
        return wilson_halfwidth(self.sdc, self.done)

    def sample_size(self, metric) -> int:
        """The denominator the metric's interval is computed over —
        what ``min_replicates`` must guard, or a low-rate cell could
        converge on a 3-fault "sample" after dozens of clean trials."""
        if metric == COVERAGE:
            return self.faulty
        return self.done

    def projected_halfwidth(self, metric) -> float:
        """Half-width *as if* the in-flight trials had already landed
        at the cell's current proportion.

        This is the scheduler's ranking key with a worker pool: the
        plain half-width ignores submitted-but-unfinished work, so a
        wide pool would drain one cell's entire pending list into
        flight before its first result returns — replicates that then
        run past the convergence point, the exact waste the plan
        exists to avoid.  Serially (``inflight == 0``) this is the
        plain half-width.
        """
        sample = self.sample_size(metric)
        projected = sample + self.inflight
        if projected == 0:
            return 0.5
        if sample == 0:
            # No evidence yet: assume the widest proportion at the
            # projected size (still narrower than an untouched cell).
            return wilson_halfwidth(projected // 2, projected)
        successes = self.covered if metric == COVERAGE else self.sdc
        return wilson_halfwidth(successes * projected / sample,
                                projected)

    @property
    def scheduled(self) -> int:
        """Observations this cell already has or will have."""
        return self.done + self.inflight

    def as_dict(self, metric) -> dict:
        workload, model, machine, rate, mix, sites = self.cell
        data = {
            "workload": workload, "model": model,
            "rate_per_million": rate, "mix": mix,
            "n": self.done, "executed": self.executed,
            "skipped": len(self.pending),
            "halfwidth": self.halfwidth(metric),
            "closed": self.closed,
        }
        if machine:
            data["machine"] = machine
        if sites:
            data["sites"] = sites
        return data


@dataclass
class AdaptiveSummary:
    """What the adaptive scheduler did, cell by cell.

    ``cells`` is a list of per-cell dicts (spec order): observation
    count ``n``, trials ``executed`` this run, pre-keyed replicates
    ``skipped`` because the cell closed early, the final ``halfwidth``
    of the plan's metric and the close reason (``converged`` /
    ``exhausted`` / ``capped``).
    """

    plan: dict
    cells: List[dict]

    @property
    def total_executed(self) -> int:
        return sum(cell["executed"] for cell in self.cells)

    @property
    def total_skipped(self) -> int:
        return sum(cell["skipped"] for cell in self.cells)

    @property
    def converged_cells(self) -> int:
        return sum(1 for cell in self.cells
                   if cell["closed"] == CONVERGED)

    def as_dict(self) -> dict:
        return {"plan": dict(self.plan),
                "cells": [dict(cell) for cell in self.cells],
                "total_executed": self.total_executed,
                "total_skipped": self.total_skipped,
                "converged_cells": self.converged_cells}


def _build_trackers(trials, completed,
                    resumed_keys) -> "Dict[tuple, CellTracker]":
    """Per-cell trackers over ``trials``, with ``completed`` records
    (a key -> record dict) folded in — the one construction both the
    scheduler and the merged-view summary use, so cell identity and
    record folding can never diverge between them.  Records whose key
    is in ``resumed_keys`` count as resumed, not executed-by-this-run.
    """
    trackers: Dict[tuple, CellTracker] = {}
    for trial in trials:
        cell = trial_cell(trial)
        tracker = trackers.get(cell)
        if tracker is None:
            tracker = CellTracker(cell, order=len(trackers))
            trackers[cell] = tracker
        if trial.key not in completed:
            tracker.pending.append(trial)
    for key, record in completed.items():
        trial = record.get("trial")
        if isinstance(trial, dict):
            tracker = trackers.get(trial_cell(trial))
            if tracker is not None:
                tracker.observe(record,
                                fresh=key not in resumed_keys)
    return trackers


def _target_met(tracker: CellTracker, plan: SamplingPlan) -> bool:
    """The one stop rule: enough observations of the metric's own
    denominator AND a tight enough interval."""
    return (tracker.sample_size(plan.metric) >= plan.min_replicates
            and tracker.halfwidth(plan.metric)
            <= plan.target_halfwidth)


def merged_adaptive_summary(plan: SamplingPlan, trials, completed,
                            resumed_keys=frozenset()
                            ) -> AdaptiveSummary:
    """Driver-side reconstruction of an adaptive fleet's outcome.

    The orchestrator never sees its workers'
    :class:`AdaptiveSummary` objects (they die with the shard
    processes), but the merged records determine the view that
    matters: per-cell sample size, skipped replicates and the
    half-width of the **merged** sample.  ``closed`` is the merged
    verdict — ``converged`` (merged sample meets the target),
    ``exhausted`` (every replicate ran) or ``shard_local`` (shards
    stopped on their local intervals before the merged one reached
    the target).  ``resumed_keys`` names the records that predate
    this run, so the summary's executed counts agree with the
    campaign result's executed/skipped split.
    """
    trackers = _build_trackers(trials, completed, resumed_keys)
    for tracker in trackers.values():
        if _target_met(tracker, plan):
            tracker.closed = CONVERGED
        elif not tracker.pending:
            tracker.closed = EXHAUSTED
        else:
            tracker.closed = SHARD_LOCAL
    return AdaptiveSummary(
        plan=plan.to_dict(),
        cells=[tracker.as_dict(plan.metric)
               for tracker in trackers.values()])


class AdaptiveScheduler:
    """Greedy widest-interval-first selector over pre-keyed trials.

    Scheduling policy, evaluated every time a worker slot frees up:

    1. every open cell is seeded to ``min_replicates`` observations
       (spec order — deterministic);
    2. after seeding, the next trial is the lowest un-run replicate of
       the open cell with the **widest** half-width — projected over
       its in-flight trials, so a wide pool spreads instead of
       flooding one cell (ties break on spec order) — which is exactly
       "reallocate the budget freed by converged cells to the noisiest
       cells";
    3. a cell closes as ``converged`` the moment its half-width meets
       the target with ``min_replicates`` observations, as ``capped``
       when it reaches ``max_replicates`` unconverged, and as
       ``exhausted`` when its pre-keyed replicates run out.

    The scheduler never invents trials: an unreachable target simply
    runs every pending replicate, reproducing the fixed plan.
    """

    def __init__(self, plan: SamplingPlan, trials,
                 completed: Dict[str, dict]):
        if not plan.is_adaptive:
            raise ConfigError("AdaptiveScheduler needs a wilson plan")
        self.plan = plan
        # Resumed records count toward their cell's interval before any
        # scheduling happens — that is what makes --resume land
        # mid-adaptation instead of starting the sample over.
        self.trackers = _build_trackers(trials, completed,
                                        resumed_keys=set(completed))
        for tracker in self.trackers.values():
            self._close_if_done(tracker)

    # -- state transitions --------------------------------------------------

    def _cap(self, tracker) -> float:
        if self.plan.max_replicates is None:
            return float("inf")
        return self.plan.max_replicates

    def _close_if_done(self, tracker) -> Optional[str]:
        """Close ``tracker`` if any stop rule fires; returns the
        transition (None if the cell stays open or was closed before).
        """
        if tracker.closed is not None:
            return None
        if _target_met(tracker, self.plan):
            tracker.closed = CONVERGED
            return CONVERGED
        if tracker.inflight == 0:
            if not tracker.pending:
                tracker.closed = EXHAUSTED
                return EXHAUSTED
            if tracker.scheduled >= self._cap(tracker):
                tracker.closed = CAPPED
                return CAPPED
        return None

    def _open_cells(self):
        return [tracker for tracker in self.trackers.values()
                if tracker.closed is None and tracker.pending
                and tracker.scheduled < self._cap(tracker)]

    def next_trial(self):
        """The next pre-keyed trial to run, or None if nothing is
        currently schedulable (all cells closed, or every open cell is
        fully in flight)."""
        candidates = self._open_cells()
        if not candidates:
            return None
        # Seeding is a floor on *work* (trials dispatched), so it uses
        # total scheduled observations; the convergence floor over the
        # metric's denominator lives in _target_met.
        seeding = [tracker for tracker in candidates
                   if tracker.scheduled < self.plan.min_replicates]
        if seeding:
            tracker = min(seeding, key=lambda t: t.order)
        else:
            metric = self.plan.metric
            tracker = max(candidates,
                          key=lambda t: (t.projected_halfwidth(metric),
                                         -t.order))
        trial = tracker.pending.pop(0)
        tracker.inflight += 1
        return trial

    def record_finished(self, record) -> Optional[CellTracker]:
        """Observe one fresh record; returns the tracker if this very
        record converged its cell (for a ``cell_converged`` event)."""
        trial = record.get("trial")
        tracker = self.trackers.get(trial_cell(trial)) \
            if isinstance(trial, dict) else None
        if tracker is None:
            return None
        tracker.inflight -= 1
        tracker.observe(record, fresh=True)
        return tracker if self._close_if_done(tracker) == CONVERGED \
            else None

    @property
    def inflight(self) -> int:
        return sum(tracker.inflight
                   for tracker in self.trackers.values())

    def pre_converged(self):
        """Cells already converged from resumed records alone."""
        return [tracker for tracker in self.trackers.values()
                if tracker.closed == CONVERGED and tracker.executed == 0]

    def summary(self) -> AdaptiveSummary:
        metric = self.plan.metric
        return AdaptiveSummary(
            plan=self.plan.to_dict(),
            cells=[tracker.as_dict(metric)
                   for tracker in self.trackers.values()])
