"""Campaign API v2: the :class:`CampaignSession` facade.

A session owns everything one campaign run needs — the spec (or a
:meth:`~repro.campaign.spec.CampaignSpec.shard` of one), an
:class:`ExecutionOptions` bundle (absorbing the loose ``simulator`` /
``golden_cache`` / ``reuse_faultfree`` / ``workers`` / ``max_cycles``
keywords that accreted on ``run_campaign``), a
:class:`~repro.campaign.store.StoreBackend`, and a typed
:class:`CampaignEvent` stream — and exposes the four verbs of the
campaign lifecycle::

    session = CampaignSession(spec, options=ExecutionOptions(workers=4),
                              store="sqlite:campaign.db")
    session.subscribe(lambda e: print(e.kind, e.done, e.total))
    result = session.run()          # or session.resume()
    print(session.progress())
    for cell in session.aggregate():
        ...

Events replace the bare ``progress(done, total, record)`` closure with
a typed protocol: ``trial_started`` / ``trial_finished`` per trial,
``cell_finished`` when the last trial of a (workload, model, machine,
rate, mix) grid cell completes in this run, and ``campaign_finished``
once the full record set is assembled.  Listeners are plain callables
receiving the frozen event object.

The engine guarantees of PR 1 are unchanged: parallelism is purely a
wall-clock optimisation (per-trial seeds derive from trial keys, never
from scheduling order), records are re-ordered into spec-expansion
order before aggregation, and any store backend makes a killed
campaign resumable from its completed keys.

``repro.campaign.engine.run_campaign`` survives as a thin deprecated
wrapper over this class, byte-identical in behaviour.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigError
from .adaptive import (CONVERGED as _CONVERGED, AdaptiveScheduler,
                       AdaptiveSummary, SamplingPlan)
from .aggregate import aggregate, aggregate_structures, trial_cell
from .outcome import SIMULATORS, run_trial
from .spec import CampaignShard, CampaignSpec, Trial
from .store import RetryingStore, StoreBackend, open_store
from ..resilience.retry import RetryPolicy
from ..resilience.watchdog import PoolSupervisor

# -- events ----------------------------------------------------------------

TRIAL_STARTED = "trial_started"
TRIAL_FINISHED = "trial_finished"
CELL_FINISHED = "cell_finished"
CELL_CONVERGED = "cell_converged"
CAMPAIGN_FINISHED = "campaign_finished"

#: Every event kind a session can emit, in lifecycle order.
#: ``cell_converged`` only fires under an adaptive
#: :class:`~repro.campaign.adaptive.SamplingPlan`, when a cell's
#: confidence interval reaches the target before its replicates run
#: out (the cell's remaining pre-keyed trials are then skipped, so its
#: ``cell_finished`` never fires).
EVENT_KINDS = (TRIAL_STARTED, TRIAL_FINISHED, CELL_FINISHED,
               CELL_CONVERGED, CAMPAIGN_FINISHED)


@dataclass(frozen=True)
class CampaignEvent:
    """One typed notification from a running session.

    ``done``/``total`` always refer to whole-campaign trial progress
    (resumed trials count as done).  ``trial`` is the
    ``Trial.to_dict()`` of the trial concerned (started/finished),
    ``record`` the finished trial's result record, and ``cell`` the
    (workload, model, machine, rate, mix) tuple of a completed grid
    cell.  With ``workers > 1``, ``trial_started`` fires at pool
    submission time and finish order follows the pool's scheduling —
    only the final record set is order-deterministic.
    """

    kind: str
    done: int
    total: int
    trial: Optional[dict] = None
    record: Optional[dict] = None
    cell: Optional[tuple] = None
    #: Shard index the event originated from — only set by the
    #: multi-shard orchestrator's merged live stream (None for
    #: single-session events).
    shard: Optional[int] = None

    def to_dict(self) -> dict:
        """JSON-able form — the wire format of the campaign service's
        SSE progress stream.  Optional fields are omitted when unset so
        the wire payload stays minimal; ``cell`` becomes a list (JSON
        has no tuples) and :meth:`from_dict` restores it."""
        data = {"kind": self.kind, "done": self.done,
                "total": self.total}
        if self.trial is not None:
            data["trial"] = self.trial
        if self.record is not None:
            data["record"] = self.record
        if self.cell is not None:
            data["cell"] = list(self.cell)
        if self.shard is not None:
            data["shard"] = self.shard
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignEvent":
        """Rebuild an event from :meth:`to_dict` output (round-trips
        to an equal frozen dataclass)."""
        known = {"kind", "done", "total", "trial", "record", "cell",
                 "shard"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError("unknown campaign event fields: %s"
                              % sorted(unknown))
        cell = data.get("cell")
        return cls(kind=data["kind"], done=data["done"],
                   total=data["total"], trial=data.get("trial"),
                   record=data.get("record"),
                   cell=tuple(cell) if cell is not None else None,
                   shard=data.get("shard"))


#: A session listener: any callable accepting one CampaignEvent.
CampaignListener = Callable[[CampaignEvent], None]


# -- options ---------------------------------------------------------------

@dataclass(frozen=True)
class ExecutionOptions:
    """How a session executes trials (never *what* it executes).

    ``simulator`` / ``golden_cache`` / ``reuse_faultfree`` select
    between the optimized and the frozen reference execution paths
    (byte-identical records either way, see
    :func:`repro.campaign.outcome.run_trial`); ``workers`` widens the
    process pool; ``max_cycles`` stamps a cycle budget onto a spec that
    does not set one (it is part of trial identity, so the session
    refuses to silently contradict a spec's own value); ``sampling``
    attaches a :class:`~repro.campaign.adaptive.SamplingPlan` — a
    wilson plan stops statistically converged cells early and spends
    the freed replicate budget on the widest-interval cells (``None``
    and ``SamplingPlan.fixed()`` are the historical run-everything
    behaviour); ``poll_interval`` sets how often a store-watching
    driver (the multi-shard orchestrator, the campaign service's live
    progress feed) re-reads result stores — ``None`` keeps each
    driver's own default (0.2 s for the orchestrator; the service
    backend runs a tighter interval for live SSE progress).

    The resilience knobs only shape the pooled execution paths
    (``workers > 1``): ``trial_timeout`` is the per-trial *wall-clock*
    deadline distinguishing an infrastructure hang from the simulated
    ``timeout`` outcome (which returns promptly as a normal record);
    ``trial_retries`` bounds how often one trial may be re-submitted
    across pool rebuilds before the run fails with
    :class:`~repro.errors.TrialHangError`; ``store_retry`` wraps the
    session's store in a :class:`~repro.campaign.store.RetryingStore`
    so a transient write error does not discard a finished simulation.
    The serial path (``workers == 1``, the benchmark hot path) is
    untouched by the first two — zero overhead.

    The throughput knobs select record-identical fast paths:
    ``checkpointing`` snapshots each cell's fault-free baseline so
    fault trials fast-forward past their shared prefix
    (:mod:`repro.campaign.checkpoint`), ``checkpoint_interval``
    overrides the auto-tuned snapshot spacing (committed
    instructions), and ``persistent_workers`` warms every pool worker
    at startup — a pool ``initializer`` pre-runs each cell's
    fault-free twin so decoded programs, golden traces and checkpoints
    are hot before the first real trial lands.
    """

    simulator: str = "fast"
    golden_cache: bool = True
    reuse_faultfree: bool = True
    workers: int = 1
    max_cycles: Optional[int] = None
    sampling: Optional[SamplingPlan] = None
    poll_interval: Optional[float] = None
    trial_timeout: Optional[float] = None
    trial_retries: int = 2
    store_retry: Optional[RetryPolicy] = None
    checkpointing: bool = False
    checkpoint_interval: Optional[int] = None
    persistent_workers: bool = False

    def __post_init__(self):
        if self.simulator not in SIMULATORS:
            raise ConfigError("unknown simulator %r (choose from %s)"
                              % (self.simulator, "/".join(SIMULATORS)))
        if not isinstance(self.workers, int) \
                or isinstance(self.workers, bool) or self.workers < 1:
            raise ConfigError("workers must be >= 1")
        if self.max_cycles is not None and (
                not isinstance(self.max_cycles, int)
                or isinstance(self.max_cycles, bool)
                or self.max_cycles < 1):
            raise ConfigError("max_cycles must be a positive integer "
                              "or None, got %r" % (self.max_cycles,))
        if self.sampling is not None \
                and not isinstance(self.sampling, SamplingPlan):
            raise ConfigError(
                "sampling must be a SamplingPlan or None, got %r"
                % (self.sampling,))
        if self.poll_interval is not None and (
                not isinstance(self.poll_interval, (int, float))
                or isinstance(self.poll_interval, bool)
                or self.poll_interval <= 0):
            raise ConfigError("poll_interval must be a positive number "
                              "or None, got %r" % (self.poll_interval,))
        if self.trial_timeout is not None and (
                not isinstance(self.trial_timeout, (int, float))
                or isinstance(self.trial_timeout, bool)
                or self.trial_timeout <= 0):
            raise ConfigError("trial_timeout must be a positive number "
                              "or None, got %r" % (self.trial_timeout,))
        if not isinstance(self.trial_retries, int) \
                or isinstance(self.trial_retries, bool) \
                or self.trial_retries < 0:
            raise ConfigError("trial_retries must be an integer >= 0, "
                              "got %r" % (self.trial_retries,))
        if self.store_retry is not None \
                and not isinstance(self.store_retry, RetryPolicy):
            raise ConfigError(
                "store_retry must be a RetryPolicy or None, got %r"
                % (self.store_retry,))
        if self.checkpoint_interval is not None and (
                not isinstance(self.checkpoint_interval, int)
                or isinstance(self.checkpoint_interval, bool)
                or self.checkpoint_interval < 1):
            raise ConfigError(
                "checkpoint_interval must be a positive integer or "
                "None, got %r" % (self.checkpoint_interval,))
        if self.checkpoint_interval is not None \
                and not self.checkpointing:
            raise ConfigError(
                "checkpoint_interval requires checkpointing=True")

    @property
    def adaptive(self) -> bool:
        """Whether this options bundle schedules trials adaptively."""
        return self.sampling is not None and self.sampling.is_adaptive

    def to_dict(self) -> dict:
        """Plain-dict form (orchestrator worker payloads)."""
        data = {"simulator": self.simulator,
                "golden_cache": self.golden_cache,
                "reuse_faultfree": self.reuse_faultfree,
                "workers": self.workers}
        if self.max_cycles is not None:
            data["max_cycles"] = self.max_cycles
        if self.sampling is not None:
            data["sampling"] = self.sampling.to_dict()
        if self.poll_interval is not None:
            data["poll_interval"] = self.poll_interval
        # Resilience fields ride along only when set away from their
        # defaults, keeping worker payloads and persisted job files
        # byte-compatible with pre-resilience runs.
        if self.trial_timeout is not None:
            data["trial_timeout"] = self.trial_timeout
        if self.trial_retries != 2:
            data["trial_retries"] = self.trial_retries
        if self.store_retry is not None:
            data["store_retry"] = self.store_retry.to_dict()
        # Throughput fields likewise ride along only when enabled, so
        # payloads stay byte-compatible with pre-checkpointing runs.
        if self.checkpointing:
            data["checkpointing"] = True
        if self.checkpoint_interval is not None:
            data["checkpoint_interval"] = self.checkpoint_interval
        if self.persistent_workers:
            data["persistent_workers"] = True
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionOptions":
        data = dict(data)
        sampling = data.pop("sampling", None)
        if sampling is not None:
            data["sampling"] = SamplingPlan.from_dict(sampling)
        store_retry = data.pop("store_retry", None)
        if store_retry is not None:
            data["store_retry"] = RetryPolicy.from_dict(store_retry)
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigError("unknown execution option fields: %s"
                              % sorted(unknown))
        return cls(**data)

    def trial_payload(self, trial: Trial) -> dict:
        """The worker-pool payload for one trial (plain dicts only)."""
        payload = {"trial": trial.to_dict(),
                   "simulator": self.simulator,
                   "golden_cache": self.golden_cache,
                   "reuse_faultfree": self.reuse_faultfree}
        if self.checkpointing:
            payload["checkpointing"] = True
            if self.checkpoint_interval is not None:
                payload["checkpoint_interval"] = self.checkpoint_interval
        return payload


# -- results ---------------------------------------------------------------

@dataclass
class CampaignResult:
    """Everything a finished (or resumed) campaign run produced."""

    spec: object
    #: One record per trial of the grid, in spec-expansion order.
    #: Under an adaptive plan, trials a converged cell never ran have
    #: no record — the list is then the executed subset, still in spec
    #: order.
    records: list = field(default_factory=list)
    executed: int = 0               # trials simulated by this run
    skipped: int = 0                # trials satisfied from the store
    #: :class:`~repro.campaign.adaptive.AdaptiveSummary` of what the
    #: scheduler did (None for fixed-plan runs).
    adaptive: Optional[AdaptiveSummary] = None

    @property
    def outcome_counts(self):
        counts = {}
        for record in self.records:
            counts[record["outcome"]] = \
                counts.get(record["outcome"], 0) + 1
        return counts


@dataclass(frozen=True)
class CampaignProgress:
    """A point-in-time snapshot of a session's completion state."""

    done: int
    total: int

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    def __str__(self):
        return "%d/%d trials (%.1f%%)" % (self.done, self.total,
                                          100.0 * self.fraction)


def execute_trial_payload(payload):
    """Worker entry point: run one serialised trial, return its record.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can
    pickle it; takes and returns plain dicts for the same reason.
    Accepts either a bare ``Trial.to_dict()`` (the PR-1 payload shape)
    or ``{"trial": ..., "simulator": ..., "golden_cache": ...,
    "reuse_faultfree": ...}``.
    """
    if "trial" in payload:
        trial = Trial.from_dict(payload["trial"])
        return run_trial(
            trial,
            simulator=payload.get("simulator", "fast"),
            golden_cache=payload.get("golden_cache", True),
            reuse_faultfree=payload.get("reuse_faultfree", True),
            checkpointing=payload.get("checkpointing", False),
            checkpoint_interval=payload.get("checkpoint_interval"),
        ).to_record()
    trial = Trial.from_dict(payload)
    return run_trial(trial).to_record()


#: Cells warmed per worker by the persistent-worker initializer; a
#: bound, not coverage — workers warm the rest lazily as trials land.
_WARM_CELL_LIMIT = 8


def _warm_worker(payloads):
    """Persistent-worker pool initializer: pre-run fault-free twins.

    Executes each warm payload (a cell's trial with the rate forced to
    zero and sites stripped) so the worker's decoded-program, golden-
    trace, fault-free-baseline and checkpoint caches are hot before
    its first real trial.  Purely a warm-up: results are discarded,
    and a failing twin is skipped — an initializer exception would
    permanently break the pool, and the real trial will surface the
    same error as a normal record or worker failure.
    """
    for payload in payloads:
        try:
            execute_trial_payload(payload)
        except Exception:  # repro-lint: disable=except-policy
            # Warm-up only: any error here will recur on the real
            # trial and surface through the normal record/retry path;
            # raising instead would permanently break the pool.
            continue


def warm_payloads(options: ExecutionOptions, trials) -> list:
    """Fault-free warm-up payloads, one per distinct cell of ``trials``
    (capped at ``_WARM_CELL_LIMIT`` cells)."""
    seen = set()
    payloads = []
    for trial in trials:
        cell = (trial.workload, trial.workload_seed, trial.model,
                trial.machine_overrides, trial.instructions,
                trial.warmup, trial.max_cycles)
        if cell in seen:
            continue
        seen.add(cell)
        twin = trial.to_dict()
        twin["rate_per_million"] = 0.0
        twin.pop("sites", None)
        twin.pop("site_config", None)
        payloads.append(options.trial_payload(Trial.from_dict(twin)))
        if len(payloads) >= _WARM_CELL_LIMIT:
            break
    return payloads


#: The aggregation cell a trial (as a dict) belongs to — shared with
#: the aggregate reducer so the two can never drift.
_cell_of = trial_cell


# -- the facade ------------------------------------------------------------

class CampaignSession:
    """Stateful facade over one campaign: spec + options + store + events.

    ``spec`` may be a :class:`~repro.campaign.spec.CampaignSpec` or a
    :class:`~repro.campaign.spec.CampaignShard`; ``store`` a
    :class:`~repro.campaign.store.StoreBackend` instance or a URL-style
    path (``out.jsonl`` / ``sqlite:campaign.db`` / ``shard:dir/`` —
    see :func:`~repro.campaign.store.open_store`).

    :meth:`run` executes every trial into an empty (or absent) store;
    :meth:`resume` skips trials whose keys the store already holds.
    Either way :attr:`result` ends up with one record per trial in
    spec-expansion order, and :meth:`aggregate` reduces them to
    per-cell statistics.  A session whose store was filled by previous
    runs (or by :func:`~repro.campaign.store.merge_stores` over shard
    stores) can call :meth:`aggregate` without running at all.
    """

    def __init__(self, spec, options: Optional[ExecutionOptions] = None,
                 store=None,
                 listeners: Tuple[CampaignListener, ...] = ()):
        self.options = options if options is not None \
            else ExecutionOptions()
        self.spec = self._stamp_max_cycles(spec, self.options.max_cycles)
        if self.options.simulator != "fast" \
                and getattr(self.spec, "fault_sites", None):
            # Fail at construction, not per-trial inside a pool worker.
            raise ConfigError(
                "fault-site campaigns require the fast simulator (the "
                "frozen reference engine predates the site subsystem)")
        self.store: Optional[StoreBackend] = open_store(store)
        if self.store is not None \
                and self.options.store_retry is not None \
                and not isinstance(self.store, RetryingStore):
            self.store = RetryingStore(self.store,
                                       policy=self.options.store_retry)
        self._listeners: List[CampaignListener] = list(listeners)
        self.result: Optional[CampaignResult] = None

    @staticmethod
    def _stamp_max_cycles(spec, max_cycles):
        if max_cycles is None:
            return spec
        current = getattr(spec, "max_cycles", None)
        if current == max_cycles:
            return spec
        if current is not None:
            raise ConfigError(
                "options.max_cycles=%d contradicts the spec's "
                "max_cycles=%d (max_cycles is part of every trial key; "
                "change the spec instead)" % (max_cycles, current))
        # isinstance, not duck typing: a CampaignShard delegates every
        # spec attribute (including `shard`), so only the concrete type
        # says which replace() is legal.
        if isinstance(spec, CampaignShard):
            # Re-stamp the underlying spec, keep the shard view.
            return replace(spec.spec, max_cycles=max_cycles).shard(
                spec.index, spec.total)
        if isinstance(spec, CampaignSpec):
            return replace(spec, max_cycles=max_cycles)
        raise ConfigError(
            "options.max_cycles cannot be stamped onto %s; set "
            "max_cycles on the spec itself" % type(spec).__name__)

    # -- event stream ------------------------------------------------------

    def subscribe(self, listener: CampaignListener) -> CampaignListener:
        """Attach a listener; returns it (usable as a decorator)."""
        self._listeners.append(listener)
        return listener

    def _emit(self, kind, done, total, trial=None, record=None,
              cell=None):
        if not self._listeners:
            return
        event = CampaignEvent(kind=kind, done=done, total=total,
                              trial=trial, record=record, cell=cell)
        for listener in self._listeners:
            listener(event)

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute every trial of the spec (store must be fresh)."""
        return self._run(resume=False)

    def resume(self) -> CampaignResult:
        """Execute only the trials the store has no record of yet."""
        if self.store is None:
            raise ConfigError("resume requires a result store")
        return self._run(resume=True)

    def progress(self) -> CampaignProgress:
        """Completion snapshot: from the finished result if this
        session ran, else from the store's completed keys."""
        trials = list(self.spec.trials())
        if self.result is not None:
            return CampaignProgress(done=len(self.result.records),
                                    total=len(trials))
        done = 0
        if self.store is not None and self.store.exists:
            completed = self.store.completed_keys()
            done = sum(1 for trial in trials if trial.key in completed)
        return CampaignProgress(done=done, total=len(trials))

    def records(self) -> List[dict]:
        """This campaign's records, in spec-expansion order.

        From :attr:`result` after a run; otherwise loaded from the
        store (e.g. an earlier run's file, or shard stores merged via
        :func:`~repro.campaign.store.merge_stores`) and re-ordered —
        which is what makes merged-shard aggregation byte-identical to
        a single-host run.
        """
        if self.result is not None:
            return self.result.records
        if self.store is None:
            raise ConfigError("no result yet and no store to load "
                              "records from; call run() first")
        by_key = {record["key"]: record for record in self.store.load()}
        return [by_key[trial.key] for trial in self.spec.trials()
                if trial.key in by_key]

    def aggregate(self):
        """Per-cell statistics of :meth:`records` (spec order)."""
        return aggregate(self.records())

    def aggregate_structures(self):
        """Per-structure sensitivity of this campaign's fault-site
        trials (empty for rate-only campaigns)."""
        return aggregate_structures(self.records())

    def orchestrate(self, shards: int, store_dir: str,
                    mode: str = "process",
                    poll_interval: Optional[float] = None,
                    max_restarts: int = 2) -> CampaignResult:
        """Run this session's spec across ``shards`` parallel shard
        workers (see :class:`~repro.campaign.orchestrator.
        CampaignOrchestrator`).

        The session's options (including an adaptive sampling plan)
        apply to every shard worker, its listeners receive the merged
        live event stream, and its store — when it has one — becomes
        the merged destination store.  On return :attr:`result` holds
        the merged records in spec order, so :meth:`aggregate` works
        exactly as after :meth:`run`.
        """
        from .orchestrator import CampaignOrchestrator
        orchestrator = CampaignOrchestrator(
            self.spec, shards=shards, store_dir=store_dir,
            options=self.options, mode=mode,
            poll_interval=poll_interval, max_restarts=max_restarts,
            merged_store=self.store, listeners=tuple(self._listeners))
        result = orchestrator.run()
        if self.store is None:
            # Later records()/progress() calls read the merged store.
            self.store = orchestrator.merged_store
        self.result = result
        return result

    # -- execution core ----------------------------------------------------

    def _run(self, resume) -> CampaignResult:
        trials = list(self.spec.trials())
        total = len(trials)
        completed: Dict[str, dict] = {}
        if self.store is not None:
            if resume:
                wanted = {trial.key for trial in trials}
                completed = {record["key"]: record
                             for record in self.store.load()
                             if record["key"] in wanted}
            else:
                if self.store.completed_keys():
                    raise ConfigError(
                        "result store %s already holds completed "
                        "trials; pass resume=True (--resume) to "
                        "continue it, or delete the file to start "
                        "fresh" % self.store.path)
                self.store.truncate()
        todo = [trial for trial in trials if trial.key not in completed]
        result = CampaignResult(spec=self.spec, executed=len(todo),
                                skipped=total - len(todo))
        # cell_finished fires when the last outstanding trial of a cell
        # completes in this run; cells fully satisfied from the store
        # never re-fire.  (Under an adaptive plan a converged cell
        # keeps a positive remainder forever — it emits cell_converged
        # instead.)
        cell_remaining: Dict[tuple, int] = {}
        for trial in todo:
            cell = _cell_of(trial)
            cell_remaining[cell] = cell_remaining.get(cell, 0) + 1
        if self.options.adaptive:
            scheduler = AdaptiveScheduler(self.options.sampling, trials,
                                          completed)
            fresh = self._execute_adaptive(
                scheduler, cell_remaining,
                done_offset=len(completed), total=total)
            result.adaptive = scheduler.summary()
            result.executed = len(fresh)
        else:
            fresh = self._execute(todo, cell_remaining,
                                  done_offset=len(completed),
                                  total=total)
        completed.update(fresh)
        if self.options.adaptive:
            # Converged cells legitimately leave replicates unrun.
            result.records = [completed[trial.key] for trial in trials
                              if trial.key in completed]
        else:
            # Fixed plans must cover the grid — a missing record is a
            # store/worker defect and must fail loudly (KeyError), not
            # silently shrink the aggregate.
            result.records = [completed[trial.key] for trial in trials]
        self.result = result
        self._emit(CAMPAIGN_FINISHED, done=len(result.records),
                   total=total)
        return result

    def _make_collector(self, records, cell_remaining, done_offset,
                        total, on_record=None):
        """The shared per-record bookkeeping closure: store append,
        progress counter, ``trial_finished``/``cell_finished`` events,
        plus an optional hook (the adaptive scheduler's observer).

        The hook runs *before* the ``cell_finished`` accounting and
        its return value can veto that event: a cell whose final
        pending replicate is also its converging observation (or a
        straggler landing after convergence) must emit only
        ``cell_converged`` — the two events are documented as
        mutually exclusive per cell.
        """
        state = {"done": done_offset}

        def collect(record):
            records[record["key"]] = record
            if self.store is not None:
                self.store.append(record)
            state["done"] += 1
            done = state["done"]
            trial_dict = record.get("trial")
            self._emit(TRIAL_FINISHED, done=done, total=total,
                       trial=trial_dict, record=record)
            suppress_finished = False
            if on_record is not None:
                suppress_finished = bool(on_record(record, done))
            if isinstance(trial_dict, dict):
                cell = _cell_of(trial_dict)
                remaining = cell_remaining.get(cell)
                if remaining is not None:
                    if remaining <= 1:
                        del cell_remaining[cell]
                        if not suppress_finished:
                            self._emit(CELL_FINISHED, done=done,
                                       total=total, cell=cell)
                    else:
                        cell_remaining[cell] = remaining - 1

        return collect, state

    def _pool_supervisor(self, state, total, warm=None):
        """A :class:`~repro.resilience.watchdog.PoolSupervisor` over a
        session-private process pool.

        The holder closure owns pool lifetime: the supervisor retires
        a broken executor through ``reset_pool`` and lazily rebuilds
        through ``get_pool``, so a SIGKILL'd pool worker (or a trial
        past ``options.trial_timeout``) costs a rebuild + resubmit
        instead of the whole session.  Every resubmission re-emits
        ``trial_started`` — listeners see the retry, and the record
        that eventually lands is byte-identical (trial seeds derive
        from trial keys, not scheduling).  ``warm`` (persistent-worker
        mode) is a list of fault-free warm-up payloads every worker —
        including rebuilt ones — runs through :func:`_warm_worker`
        before taking trials.
        """
        workers = self.options.workers
        holder = {"pool": None}

        def get_pool():
            if holder["pool"] is None:
                if warm:
                    holder["pool"] = ProcessPoolExecutor(
                        max_workers=workers,
                        initializer=_warm_worker, initargs=(warm,))
                else:
                    holder["pool"] = ProcessPoolExecutor(
                        max_workers=workers)
            return holder["pool"]

        def reset_pool(broken=None):
            pool = holder["pool"]
            if pool is None or (broken is not None
                                and pool is not broken):
                return
            holder["pool"] = None
            pool.shutdown(wait=False, cancel_futures=True)

        def on_resubmit(trial, attempt):
            self._emit(TRIAL_STARTED, done=state["done"], total=total,
                       trial=trial.to_dict())

        supervisor = PoolSupervisor(
            get_pool, reset_pool,
            trial_timeout=self.options.trial_timeout,
            trial_retries=self.options.trial_retries,
            on_resubmit=on_resubmit)
        return supervisor, holder

    @staticmethod
    def _shutdown_pool(holder):
        pool = holder["pool"]
        holder["pool"] = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _execute(self, todo, cell_remaining, done_offset, total):
        """Run the outstanding trials; return {key: record}."""
        records: Dict[str, dict] = {}
        collect, state = self._make_collector(records, cell_remaining,
                                              done_offset, total)
        workers = self.options.workers
        if workers == 1 or len(todo) <= 1:
            for trial in todo:
                self._emit(TRIAL_STARTED, done=state["done"],
                           total=total, trial=trial.to_dict())
                collect(execute_trial_payload(
                    self.options.trial_payload(trial)))
            return records
        warm = warm_payloads(self.options, todo) \
            if self.options.persistent_workers else None
        supervisor, holder = self._pool_supervisor(state, total,
                                                   warm=warm)
        try:
            for trial in todo:
                supervisor.submit(trial.key, execute_trial_payload,
                                  self.options.trial_payload(trial),
                                  context=trial)
                self._emit(TRIAL_STARTED, done=state["done"],
                           total=total, trial=trial.to_dict())
            while supervisor.inflight:
                for _trial, record in supervisor.wait():
                    collect(record)
        finally:
            self._shutdown_pool(holder)
        return records

    def _execute_adaptive(self, scheduler, cell_remaining, done_offset,
                          total):
        """Run trials the scheduler selects; return {key: record}.

        The scheduler re-decides after every finished trial, so the
        worker pool is fed one slot at a time instead of being flooded
        up front — that is the whole point: a trial that would have
        gone to an already-converged cell goes to the widest open
        interval instead.
        """
        records: Dict[str, dict] = {}

        def on_record(record, done):
            converged = scheduler.record_finished(record)
            if converged is not None:
                self._emit(CELL_CONVERGED, done=done, total=total,
                           cell=converged.cell)
            # Veto cell_finished for any converged cell — whether this
            # record converged it or it is a straggler completing the
            # cell's last outstanding trial after convergence.
            trial = record.get("trial")
            if not isinstance(trial, dict):
                return False
            tracker = scheduler.trackers.get(_cell_of(trial))
            return tracker is not None \
                and tracker.closed == _CONVERGED

        collect, state = self._make_collector(
            records, cell_remaining, done_offset, total,
            on_record=on_record)
        for tracker in scheduler.pre_converged():
            # Cells the resumed store already settled: surface the
            # decision even though this run executes nothing for them.
            self._emit(CELL_CONVERGED, done=state["done"], total=total,
                       cell=tracker.cell)
        workers = self.options.workers
        if workers == 1:
            while True:
                trial = scheduler.next_trial()
                if trial is None:
                    break
                self._emit(TRIAL_STARTED, done=state["done"],
                           total=total, trial=trial.to_dict())
                collect(execute_trial_payload(
                    self.options.trial_payload(trial)))
            return records
        warm = warm_payloads(self.options, self.spec.trials()) \
            if self.options.persistent_workers else None
        supervisor, holder = self._pool_supervisor(state, total,
                                                   warm=warm)

        def refill():
            while supervisor.inflight < workers:
                trial = scheduler.next_trial()
                if trial is None:
                    return
                supervisor.submit(trial.key, execute_trial_payload,
                                  self.options.trial_payload(trial),
                                  context=trial)
                self._emit(TRIAL_STARTED, done=state["done"],
                           total=total, trial=trial.to_dict())

        try:
            refill()
            while supervisor.inflight:
                for _trial, record in supervisor.wait():
                    collect(record)
                refill()
        finally:
            self._shutdown_pool(holder)
        return records
