"""Multi-shard campaign orchestrator: one driver, N shard sessions.

:meth:`CampaignSpec.shard` already partitions a campaign's trial
keyspace deterministically; this module adds the driver that actually
runs all partitions at once and survives the failures a multi-hour
sweep will see:

* **launch** — one worker per shard, either an in-process fork running
  a :class:`~repro.campaign.api.CampaignSession` over
  ``spec.shard(i, n)`` (``mode="process"``) or a ``repro-ft campaign
  --shard i/N`` subprocess (``mode="cli"`` — the exact worker you
  would start by hand on another host);
* **monitor** — the driver polls every shard's result store and
  re-emits each new record on the session event stream
  (``trial_finished`` with merged ``done``/``total`` and the
  originating ``shard``), so one listener observes the merged live
  state of the whole fleet;
* **restart** — a worker that dies (crash, OOM-kill, ``kill -9``) is
  relaunched against its own store and *resumes*: every record the
  dead worker flushed is kept, only its unfinished trials re-run.
  A worker that keeps dying past ``max_restarts`` fails the campaign
  with :class:`~repro.errors.OrchestratorError`;
* **merge** — on completion the shard stores are stitched together
  with :func:`~repro.campaign.store.merge_stores` into one merged
  store, and the result carries the records in spec-expansion order —
  byte-identical to a single-session run of the same spec.

The shard stores under ``store_dir`` are the durable state: killing
and re-running the *orchestrator itself* also resumes, because every
launch decision is "store has records -> resume, else run".

Adaptive sampling composes: an adaptive
:class:`~repro.campaign.adaptive.SamplingPlan` on the options is
applied by every shard session to its own slice of each cell (each
shard must individually reach the half-width target on its local
sample — a conservative split, since the merged interval is at least
as tight as the widest per-shard one).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..errors import (ConfigError, OrchestratorError,
                      OrchestratorStopped)
from ..resilience.heartbeat import Heartbeat, HeartbeatMonitor
from ..resilience.retry import RetryPolicy
from .api import (CAMPAIGN_FINISHED, TRIAL_FINISHED, CampaignEvent,
                  CampaignListener, CampaignResult, CampaignSession,
                  ExecutionOptions)
from .adaptive import merged_adaptive_summary
from .spec import CampaignSpec
from .store import JSONLStore, merge_stores, open_store, shard_of_key

# -- shard lifecycle event kinds (same listener protocol as sessions) ------

SHARD_STARTED = "shard_started"
SHARD_FINISHED = "shard_finished"
SHARD_RESTARTED = "shard_restarted"
#: A live-but-stalled worker was detected via heartbeat lease expiry
#: and SIGKILL'd; a ``shard_restarted`` follows once its backoff
#: delay elapses.
SHARD_HUNG = "shard_hung"

#: Registry of every shard lifecycle kind — the wire-parity lint rule
#: checks emissions against this, mirroring ``EVENT_KINDS`` /
#: ``JOB_EVENT_KINDS``.
SHARD_EVENT_KINDS = (SHARD_STARTED, SHARD_FINISHED, SHARD_RESTARTED,
                     SHARD_HUNG)

#: Worker launch modes.
PROCESS_MODE = "process"        # forked in-process CampaignSession
CLI_MODE = "cli"                # repro-ft campaign --shard subprocess
MODES = (PROCESS_MODE, CLI_MODE)

_SHARD_STORE = "shard-%02d-of-%02d.jsonl"
_SHARD_LOG = "shard-%02d.log"
_SHARD_HEARTBEAT = "shard-%02d.heartbeat"
_SPEC_FILE = "orchestrate-spec.json"
MERGED_STORE = "merged.jsonl"

#: Default relaunch backoff: 0.5 s doubling to 30 s, ±10 % jitter
#: derived from the shard index (deterministic — a replayed failure
#: schedule restarts on the same timeline).
DEFAULT_RESTART_BACKOFF = RetryPolicy(
    attempts=1, base_delay=0.5, max_delay=30.0, multiplier=2.0,
    jitter=0.1)

#: A worker that stayed up this long before dying earns its restart
#: count back — transient deaths spread over a long campaign must not
#: accumulate into a spurious OrchestratorError, while a crash loop
#: (deaths far faster than this) still burns the budget.
DEFAULT_MIN_UPTIME = 5.0


def shard_store_path(store_dir: str, index: int, total: int) -> str:
    """The canonical store file of shard ``index`` under ``store_dir``."""
    return os.path.join(store_dir, _SHARD_STORE % (index, total))


def _run_shard(spec_data, index, total, options_data, store_path,
               heartbeat_path=None, heartbeat_interval=1.0):
    """Process-mode worker entry point (module-level: picklable).

    Resumes when the shard store already holds records — the restart
    path and the fresh-launch path are the same function.  When the
    driver asked for liveness (``heartbeat_path``), the worker stamps
    a progress-coupled heartbeat on every session event — a worker
    that stops making progress stops beating, whatever its process
    state says.
    """
    spec = CampaignSpec.from_dict(spec_data)
    options = ExecutionOptions.from_dict(options_data)
    store = JSONLStore(store_path)
    session = CampaignSession(spec.shard(index, total), options=options,
                              store=store)
    heartbeat = None
    if heartbeat_path:
        heartbeat = Heartbeat(heartbeat_path,
                              interval=heartbeat_interval)
        session.subscribe(
            lambda event: heartbeat.beat(progress=event.done))
        heartbeat.beat(progress=0, force=True)
    if store.exists and store.completed_keys():
        session.resume()
    else:
        session.run()
    if heartbeat is not None:
        heartbeat.beat(progress=len(session.result.records),
                       force=True)


@dataclass
class ShardWorker:
    """Driver-side handle for one shard's worker process."""

    index: int
    total: int
    store: JSONLStore
    #: Full shard keyspace (what "complete" means for a fixed plan).
    expected_keys: frozenset
    #: Deaths in the *current* crash-loop window; reset once the
    #: worker stays up past ``min_uptime`` (budget forgiveness).
    restarts: int = 0
    #: Lifetime relaunch count — never forgiven; feeds observability.
    lifetime_restarts: int = 0
    seen: Set[str] = field(default_factory=set)
    process: object = None          # multiprocessing.Process or Popen
    finished: bool = False
    log_path: str = ""
    #: How far into the (append-only) shard store the driver has read.
    read_offset: int = 0
    #: monotonic() stamp of the last launch (crash-loop detection).
    launched_at: float = 0.0
    #: monotonic() deadline of a scheduled (backed-off) relaunch;
    #: ``None`` when no relaunch is pending.
    relaunch_at: Optional[float] = None
    #: Heartbeat file the worker stamps (liveness enabled only).
    heartbeat_path: str = ""
    #: Driver-side lease over the heartbeat (liveness enabled only).
    monitor: Optional[HeartbeatMonitor] = None
    #: Times this worker was SIGKILL'd for a heartbeat lease expiry.
    hung: int = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        if self.process is None:
            return False
        if isinstance(self.process, subprocess.Popen):
            return self.process.poll() is None
        return self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        if self.process is None:
            return None
        if isinstance(self.process, subprocess.Popen):
            return self.process.poll()
        return self.process.exitcode

    def reap(self):
        """Join/terminate bookkeeping after the process ended."""
        if isinstance(self.process, subprocess.Popen):
            self.process.wait()
        else:
            self.process.join()

    def terminate(self):
        if self.process is None or not self.alive:
            return
        self.process.terminate()
        self.reap()

    def kill(self):
        """SIGKILL (not terminate): a hung worker may ignore SIGTERM —
        and a SIGSTOP'd one certainly does; SIGKILL takes down both."""
        if self.process is None:
            return
        try:
            self.process.kill()
        except (ProcessLookupError, OSError):
            pass
        self.reap()


class CampaignOrchestrator:
    """Drive one campaign spec across N shard workers to a merged result.

    ``store_dir`` receives one JSONL store per shard (plus the worker
    logs and spec file in ``cli`` mode); ``merged_store`` — any
    :func:`~repro.campaign.store.open_store` URL or backend — receives
    the merged record set on completion (default:
    ``store_dir/merged.jsonl``).  The merge appends and compacts, so
    records already in the merged store survive unless a fresh shard
    record supersedes their key — handing in a store that holds other
    results is safe; the shard stores remain the durable campaign
    state.

    Listeners receive the same :class:`~repro.campaign.api.
    CampaignEvent` protocol a session emits, with ``event.shard`` set:
    ``shard_started`` / ``shard_restarted`` / ``shard_finished`` for
    worker lifecycle, ``trial_finished`` per record as it appears in
    any shard store, and one final ``campaign_finished``.
    """

    #: Store poll cadence when neither the constructor nor
    #: ``ExecutionOptions.poll_interval`` chooses one.
    DEFAULT_POLL_INTERVAL = 0.2

    def __init__(self, spec, shards: int, store_dir: str,
                 options: Optional[ExecutionOptions] = None,
                 mode: str = PROCESS_MODE,
                 poll_interval: Optional[float] = None,
                 max_restarts: int = 2, merged_store=None,
                 listeners=(), stop_requested=None,
                 restart_backoff: Optional[RetryPolicy] = None,
                 min_uptime: float = DEFAULT_MIN_UPTIME,
                 heartbeat_lease: Optional[float] = None,
                 heartbeat_interval: float = 1.0):
        if not isinstance(spec, CampaignSpec):
            raise ConfigError(
                "orchestrate needs a full CampaignSpec (got %s); the "
                "orchestrator does its own sharding"
                % type(spec).__name__)
        if not isinstance(shards, int) or isinstance(shards, bool) \
                or shards < 1:
            raise ConfigError("shards must be an integer >= 1, got %r"
                              % (shards,))
        if mode not in MODES:
            raise ConfigError("unknown orchestrator mode %r (choose "
                              "from %s)" % (mode, "/".join(MODES)))
        if not isinstance(max_restarts, int) \
                or isinstance(max_restarts, bool) or max_restarts < 0:
            raise ConfigError("max_restarts must be an integer >= 0")
        self.options = options if options is not None \
            else ExecutionOptions()
        # Explicit constructor value wins; the options bundle is the
        # configurable default (the campaign service sets a tight
        # interval there for live progress); 0.2 s the fallback.
        if poll_interval is None:
            poll_interval = self.options.poll_interval \
                if self.options.poll_interval is not None \
                else self.DEFAULT_POLL_INTERVAL
        if not isinstance(poll_interval, (int, float)) \
                or isinstance(poll_interval, bool) or poll_interval <= 0:
            raise ConfigError("poll_interval must be > 0")
        if mode == CLI_MODE:
            defaults = ExecutionOptions()
            for name in ("simulator", "golden_cache", "reuse_faultfree"):
                if getattr(self.options, name) \
                        != getattr(defaults, name):
                    raise ConfigError(
                        "mode='cli' shard workers run the default "
                        "execution path; %s is not forwardable over "
                        "the repro-ft command line" % name)
        # Stamp max_cycles onto the spec up front so both worker modes
        # (and the spec file) agree on trial identity.
        self.spec = CampaignSession._stamp_max_cycles(
            spec, self.options.max_cycles)
        if restart_backoff is not None \
                and not isinstance(restart_backoff, RetryPolicy):
            raise ConfigError("restart_backoff must be a RetryPolicy "
                              "or None")
        if not isinstance(min_uptime, (int, float)) \
                or isinstance(min_uptime, bool) or min_uptime < 0:
            raise ConfigError("min_uptime must be >= 0")
        if heartbeat_lease is not None and (
                not isinstance(heartbeat_lease, (int, float))
                or isinstance(heartbeat_lease, bool)
                or heartbeat_lease <= 0):
            raise ConfigError("heartbeat_lease must be > 0 (or None)")
        self.shards = shards
        self.store_dir = store_dir
        self.mode = mode
        self.poll_interval = poll_interval
        self.max_restarts = max_restarts
        #: Relaunch backoff schedule (see DEFAULT_RESTART_BACKOFF).
        self.restart_backoff = restart_backoff \
            if restart_backoff is not None else DEFAULT_RESTART_BACKOFF
        #: Uptime that restores a worker's full restart budget.
        self.min_uptime = float(min_uptime)
        #: When set, each worker stamps a progress-coupled heartbeat
        #: file and the driver SIGKILLs (then restarts) any live
        #: worker whose heartbeat AND store both stall for a full
        #: lease interval.  ``None`` disables liveness detection —
        #: the lease must exceed the worst honest trial time, which
        #: only the operator knows.
        self.heartbeat_lease = heartbeat_lease
        self.heartbeat_interval = heartbeat_interval
        self.merged_store = open_store(merged_store) \
            if merged_store is not None else None
        if self.merged_store is None:
            self.merged_store = JSONLStore(
                os.path.join(store_dir, MERGED_STORE))
        self._listeners: List[CampaignListener] = list(listeners)
        #: Optional zero-argument callable polled once per monitor
        #: tick; returning truthy terminates every worker and raises
        #: :class:`~repro.errors.OrchestratorStopped`.  This is the
        #: cancellation/drain hook of the campaign service — shard
        #: stores keep every completed record, so a stopped campaign
        #: resumes exactly like a crashed one.
        self.stop_requested = stop_requested
        self.workers: List[ShardWorker] = []
        self.result: Optional[CampaignResult] = None
        self._total = 0

    # -- event stream ------------------------------------------------------

    def subscribe(self, listener: CampaignListener) -> CampaignListener:
        self._listeners.append(listener)
        return listener

    def _emit(self, kind, shard=None, record=None, trial=None):
        if not self._listeners:
            return
        event = CampaignEvent(kind=kind, done=self._done(),
                              total=self._total, trial=trial,
                              record=record, shard=shard)
        for listener in self._listeners:
            listener(event)

    def _done(self) -> int:
        return sum(len(worker.seen) for worker in self.workers)

    # -- worker management -------------------------------------------------

    def _make_workers(self):
        # One grid expansion, bucketed with the same partition
        # function spec.shard uses — expanding the full grid once per
        # shard would hash every trial key N+1 times at startup.  The
        # list is kept for the merge ordering at the end of run().
        trials = self._trials = list(self.spec.trials())
        self._total = len(trials)
        shard_keys: Dict[int, set] = {i: set()
                                      for i in range(self.shards)}
        for trial in trials:
            shard_keys[shard_of_key(trial.key, self.shards)].add(
                trial.key)
        self.workers = [
            ShardWorker(
                index=index, total=self.shards,
                store=JSONLStore(shard_store_path(self.store_dir,
                                                  index, self.shards)),
                expected_keys=frozenset(shard_keys[index]),
                log_path=os.path.join(self.store_dir,
                                      _SHARD_LOG % index))
            for index in range(self.shards)]

    def _launch(self, worker: ShardWorker):
        worker.relaunch_at = None
        worker.launched_at = time.monotonic()
        if self.heartbeat_lease is not None:
            worker.heartbeat_path = os.path.join(
                self.store_dir, _SHARD_HEARTBEAT % worker.index)
            # A stale heartbeat from the previous incarnation must not
            # renew the new lease; the monitor grants a full lease
            # from launch for the first beat anyway.
            try:
                os.unlink(worker.heartbeat_path)
            except OSError:
                pass
            worker.monitor = HeartbeatMonitor(worker.heartbeat_path,
                                              self.heartbeat_lease)
        if self.mode == PROCESS_MODE:
            context = multiprocessing.get_context()
            worker.process = context.Process(
                target=_run_shard,
                args=(self.spec.to_dict(), worker.index, self.shards,
                      self.options.to_dict(), worker.store.path,
                      worker.heartbeat_path or None,
                      self.heartbeat_interval))
            worker.process.start()
            return
        command = [sys.executable, "-m", "repro.harness.cli",
                   "campaign", "--spec", self._spec_file,
                   "--shard", "%d/%d" % (worker.index, self.shards),
                   "--store", worker.store.path, "--quiet"]
        if worker.heartbeat_path:
            command += ["--heartbeat", worker.heartbeat_path,
                        "--heartbeat-interval",
                        repr(self.heartbeat_interval)]
        if self.options.workers > 1:
            command += ["--workers", str(self.options.workers)]
        if self.options.checkpointing:
            command.append("--checkpointing")
            if self.options.checkpoint_interval is not None:
                command += ["--checkpoint-interval",
                            str(self.options.checkpoint_interval)]
        if self.options.persistent_workers:
            command.append("--persistent-workers")
        plan = self.options.sampling
        if plan is not None and plan.is_adaptive:
            command += ["--adaptive", repr(plan.target_halfwidth),
                        "--adaptive-metric", plan.metric,
                        "--adaptive-min", str(plan.min_replicates)]
            if plan.max_replicates is not None:
                command += ["--adaptive-max",
                            str(plan.max_replicates)]
        if worker.store.exists and worker.store.completed_keys():
            command.append("--resume")
        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.dirname(package_root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        log = open(worker.log_path, "a")
        try:
            worker.process = subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT, env=env)
        finally:
            log.close()

    def _poll_store(self, worker: ShardWorker):
        """Surface records appended to one shard store since last poll.

        Shard stores are append-only JSONL, so the driver reads only
        the tail past its per-worker byte offset — a full re-parse per
        tick would make monitoring quadratic in campaign size.  Only
        newline-terminated lines are consumed (the tail may be
        mid-write; it is left for the next poll), and a terminated
        line that fails to parse is torn-tail garbage a killed worker
        left behind — skipped for good, exactly like
        :meth:`~repro.campaign.store.JSONLStore.load` skips it.

        Read errors are tolerated: a store that cannot be read right
        now (transient NFS hiccup, or a genuinely broken path) yields
        no new records this poll — a broken path also kills the worker
        itself, whose restart budget then reports the shard properly.
        """
        try:
            size = os.path.getsize(worker.store.path)
            if size < worker.read_offset:
                # The worker truncated and recreated the store (fresh
                # run over a file that held no intact records).
                worker.read_offset = 0
            if size <= worker.read_offset:
                return
            with open(worker.store.path, "rb") as handle:
                handle.seek(worker.read_offset)
                chunk = handle.read()
        except OSError:
            return
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return
        worker.read_offset += cut + 1
        for line in chunk[:cut + 1].splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            key = record.get("key")
            if key is None or key in worker.seen:
                continue
            worker.seen.add(key)
            self._emit(TRIAL_FINISHED, shard=worker.index,
                       record=record, trial=record.get("trial"))

    def _shard_complete(self, worker: ShardWorker) -> bool:
        """Whether a clean exit may be trusted as 'shard done'.

        Fixed plans must cover the whole shard keyspace; adaptive
        plans legitimately skip converged cells' replicates, so the
        worker's exit status is the only authority.
        """
        if self.options.adaptive:
            return True
        return worker.expected_keys <= worker.seen

    def _handle_exit(self, worker: ShardWorker):
        exitcode = worker.exitcode
        worker.reap()
        self._poll_store(worker)     # drain before judging
        if exitcode == 0 and self._shard_complete(worker):
            worker.finished = True
            self._emit(SHARD_FINISHED, shard=worker.index)
            return
        # Crash-loop window: a worker that stayed up past min_uptime
        # earned its restart budget back — only deaths in quick
        # succession accumulate toward OrchestratorError.
        uptime = time.monotonic() - worker.launched_at
        if worker.launched_at and self.min_uptime \
                and uptime >= self.min_uptime:
            worker.restarts = 0
        if worker.restarts >= self.max_restarts:
            raise OrchestratorError(
                "shard %d/%d died with exit code %s after %d "
                "restart%s (store: %s%s); its completed records are "
                "preserved — fix the cause and re-run to resume"
                % (worker.index, self.shards, exitcode, worker.restarts,
                   "" if worker.restarts == 1 else "s",
                   worker.store.path,
                   ", log: %s" % worker.log_path
                   if self.mode == CLI_MODE else ""))
        # Schedule the relaunch behind an exponential backoff instead
        # of firing immediately — an immediate relaunch into the same
        # fault (full disk, dead mount) burns max_restarts in
        # milliseconds and amplifies whatever is already on fire.
        worker.restarts += 1
        worker.lifetime_restarts += 1
        worker.relaunch_at = time.monotonic() + self.restart_backoff \
            .delay(worker.restarts - 1, token="shard-%d" % worker.index)

    def _check_hung(self, worker: ShardWorker) -> bool:
        """SIGKILL a live worker whose heartbeat lease expired.

        The lease renews on heartbeat payload changes AND on store
        progress the driver observes itself (``len(worker.seen)``), so
        a worker beating onto a dead disk is still covered; expiry
        means *neither* channel moved for a full lease.
        """
        if worker.monitor is None \
                or not worker.monitor.expired(
                    progress=len(worker.seen)):
            return False
        worker.hung += 1
        self._emit(SHARD_HUNG, shard=worker.index)
        worker.kill()
        self._handle_exit(worker)
        return True

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> CampaignResult:
        """Drive every shard to completion and merge the result."""
        os.makedirs(self.store_dir, exist_ok=True)
        self._make_workers()
        if self.mode == CLI_MODE:
            self._spec_file = os.path.join(self.store_dir, _SPEC_FILE)
            with open(self._spec_file, "w") as handle:
                json.dump(self.spec.to_dict(), handle, indent=2,
                          sort_keys=True)
        resumed_keys = set()
        for worker in self.workers:
            self._poll_store(worker)       # records of a previous run
            resumed_keys.update(worker.seen)
        skipped = len(resumed_keys)
        try:
            for worker in self.workers:
                if not self.options.adaptive \
                        and self._shard_complete(worker):
                    # A prior run already covered this shard's whole
                    # keyspace: nothing to launch (adaptive shards
                    # must still run — only the worker knows whether
                    # its open cells have converged).
                    worker.finished = True
                    self._emit(SHARD_FINISHED, shard=worker.index)
                    continue
                self._launch(worker)
                self._emit(SHARD_STARTED, shard=worker.index)
            while True:
                if self.stop_requested is not None \
                        and self.stop_requested():
                    raise OrchestratorStopped(
                        "campaign %r stopped on request with %d/%d "
                        "trials recorded; shard stores under %s keep "
                        "every completed record and a re-run resumes "
                        "from them" % (self.spec.name, self._done(),
                                       self._total, self.store_dir))
                for worker in self.workers:
                    if worker.finished:
                        continue
                    self._poll_store(worker)
                    if worker.relaunch_at is not None:
                        if time.monotonic() >= worker.relaunch_at:
                            self._launch(worker)
                            self._emit(SHARD_RESTARTED,
                                       shard=worker.index)
                        continue
                    if not worker.alive:
                        self._handle_exit(worker)
                    else:
                        self._check_hung(worker)
                if all(worker.finished for worker in self.workers):
                    break
                time.sleep(self.poll_interval)
        finally:
            for worker in self.workers:
                worker.terminate()
        for worker in self.workers:
            self._poll_store(worker)       # final drain
        # Merge APPENDS to the merged store (fresh shard records win
        # over anything already there, per merge_stores' documented
        # last-write-wins) and compaction collapses the duplicates —
        # a pre-existing store a user handed in is never wiped, which
        # run() on a session would have refused to do too.
        merge_stores([worker.store for worker in self.workers],
                     self.merged_store)
        self.merged_store.compact()
        by_key = {record["key"]: record
                  for record in self.merged_store.load()}
        trials = self._trials
        if self.options.adaptive:
            records = [by_key[trial.key] for trial in trials
                       if trial.key in by_key]
        else:
            # Fixed plans must cover the grid; a gap in the merged
            # store is a defect, not a convergence decision.
            missing = [trial.key for trial in trials
                       if trial.key not in by_key]
            if missing:
                raise OrchestratorError(
                    "merged store %s is missing %d of %d trial "
                    "records (first: %s) — shard stores and merge "
                    "disagree" % (self.merged_store.path,
                                  len(missing), len(trials),
                                  missing[0]))
            records = [by_key[trial.key] for trial in trials]
        self.result = CampaignResult(
            spec=self.spec, records=records,
            executed=self._done() - skipped, skipped=skipped)
        if self.options.adaptive:
            self.result.adaptive = merged_adaptive_summary(
                self.options.sampling, trials,
                {record["key"]: record for record in records},
                resumed_keys=resumed_keys)
        self._emit(CAMPAIGN_FINISHED)
        return self.result

    @property
    def total_restarts(self) -> int:
        """Worker relaunches over the whole run (cumulative — crash-loop
        forgiveness resets the per-window budget, not this tally)."""
        return sum(worker.lifetime_restarts for worker in self.workers)

    @property
    def total_hung(self) -> int:
        """Workers SIGKILL'd for heartbeat lease expiry (cumulative)."""
        return sum(worker.hung for worker in self.workers)
