"""Multi-shard campaign orchestrator: one driver, N shard sessions.

:meth:`CampaignSpec.shard` already partitions a campaign's trial
keyspace deterministically; this module adds the driver that actually
runs all partitions at once and survives the failures a multi-hour
sweep will see:

* **launch** — one worker per shard, either an in-process fork running
  a :class:`~repro.campaign.api.CampaignSession` over
  ``spec.shard(i, n)`` (``mode="process"``) or a ``repro-ft campaign
  --shard i/N`` subprocess (``mode="cli"`` — the exact worker you
  would start by hand on another host);
* **monitor** — the driver polls every shard's result store and
  re-emits each new record on the session event stream
  (``trial_finished`` with merged ``done``/``total`` and the
  originating ``shard``), so one listener observes the merged live
  state of the whole fleet;
* **restart** — a worker that dies (crash, OOM-kill, ``kill -9``) is
  relaunched against its own store and *resumes*: every record the
  dead worker flushed is kept, only its unfinished trials re-run.
  A worker that keeps dying past ``max_restarts`` fails the campaign
  with :class:`~repro.errors.OrchestratorError`;
* **merge** — on completion the shard stores are stitched together
  with :func:`~repro.campaign.store.merge_stores` into one merged
  store, and the result carries the records in spec-expansion order —
  byte-identical to a single-session run of the same spec.

The shard stores under ``store_dir`` are the durable state: killing
and re-running the *orchestrator itself* also resumes, because every
launch decision is "store has records -> resume, else run".

Adaptive sampling composes: an adaptive
:class:`~repro.campaign.adaptive.SamplingPlan` on the options is
applied by every shard session to its own slice of each cell (each
shard must individually reach the half-width target on its local
sample — a conservative split, since the merged interval is at least
as tight as the widest per-shard one).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..errors import (ConfigError, OrchestratorError,
                      OrchestratorStopped)
from .api import (CAMPAIGN_FINISHED, TRIAL_FINISHED, CampaignEvent,
                  CampaignListener, CampaignResult, CampaignSession,
                  ExecutionOptions)
from .adaptive import merged_adaptive_summary
from .spec import CampaignSpec
from .store import JSONLStore, merge_stores, open_store, shard_of_key

# -- shard lifecycle event kinds (same listener protocol as sessions) ------

SHARD_STARTED = "shard_started"
SHARD_FINISHED = "shard_finished"
SHARD_RESTARTED = "shard_restarted"

#: Worker launch modes.
PROCESS_MODE = "process"        # forked in-process CampaignSession
CLI_MODE = "cli"                # repro-ft campaign --shard subprocess
MODES = (PROCESS_MODE, CLI_MODE)

_SHARD_STORE = "shard-%02d-of-%02d.jsonl"
_SHARD_LOG = "shard-%02d.log"
_SPEC_FILE = "orchestrate-spec.json"
MERGED_STORE = "merged.jsonl"


def shard_store_path(store_dir: str, index: int, total: int) -> str:
    """The canonical store file of shard ``index`` under ``store_dir``."""
    return os.path.join(store_dir, _SHARD_STORE % (index, total))


def _run_shard(spec_data, index, total, options_data, store_path):
    """Process-mode worker entry point (module-level: picklable).

    Resumes when the shard store already holds records — the restart
    path and the fresh-launch path are the same function.
    """
    spec = CampaignSpec.from_dict(spec_data)
    options = ExecutionOptions.from_dict(options_data)
    store = JSONLStore(store_path)
    session = CampaignSession(spec.shard(index, total), options=options,
                              store=store)
    if store.exists and store.completed_keys():
        session.resume()
    else:
        session.run()


@dataclass
class ShardWorker:
    """Driver-side handle for one shard's worker process."""

    index: int
    total: int
    store: JSONLStore
    #: Full shard keyspace (what "complete" means for a fixed plan).
    expected_keys: frozenset
    restarts: int = 0
    seen: Set[str] = field(default_factory=set)
    process: object = None          # multiprocessing.Process or Popen
    finished: bool = False
    log_path: str = ""
    #: How far into the (append-only) shard store the driver has read.
    read_offset: int = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        if self.process is None:
            return False
        if isinstance(self.process, subprocess.Popen):
            return self.process.poll() is None
        return self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        if self.process is None:
            return None
        if isinstance(self.process, subprocess.Popen):
            return self.process.poll()
        return self.process.exitcode

    def reap(self):
        """Join/terminate bookkeeping after the process ended."""
        if isinstance(self.process, subprocess.Popen):
            self.process.wait()
        else:
            self.process.join()

    def terminate(self):
        if self.process is None or not self.alive:
            return
        self.process.terminate()
        self.reap()


class CampaignOrchestrator:
    """Drive one campaign spec across N shard workers to a merged result.

    ``store_dir`` receives one JSONL store per shard (plus the worker
    logs and spec file in ``cli`` mode); ``merged_store`` — any
    :func:`~repro.campaign.store.open_store` URL or backend — receives
    the merged record set on completion (default:
    ``store_dir/merged.jsonl``).  The merge appends and compacts, so
    records already in the merged store survive unless a fresh shard
    record supersedes their key — handing in a store that holds other
    results is safe; the shard stores remain the durable campaign
    state.

    Listeners receive the same :class:`~repro.campaign.api.
    CampaignEvent` protocol a session emits, with ``event.shard`` set:
    ``shard_started`` / ``shard_restarted`` / ``shard_finished`` for
    worker lifecycle, ``trial_finished`` per record as it appears in
    any shard store, and one final ``campaign_finished``.
    """

    #: Store poll cadence when neither the constructor nor
    #: ``ExecutionOptions.poll_interval`` chooses one.
    DEFAULT_POLL_INTERVAL = 0.2

    def __init__(self, spec, shards: int, store_dir: str,
                 options: Optional[ExecutionOptions] = None,
                 mode: str = PROCESS_MODE,
                 poll_interval: Optional[float] = None,
                 max_restarts: int = 2, merged_store=None,
                 listeners=(), stop_requested=None):
        if not isinstance(spec, CampaignSpec):
            raise ConfigError(
                "orchestrate needs a full CampaignSpec (got %s); the "
                "orchestrator does its own sharding"
                % type(spec).__name__)
        if not isinstance(shards, int) or isinstance(shards, bool) \
                or shards < 1:
            raise ConfigError("shards must be an integer >= 1, got %r"
                              % (shards,))
        if mode not in MODES:
            raise ConfigError("unknown orchestrator mode %r (choose "
                              "from %s)" % (mode, "/".join(MODES)))
        if not isinstance(max_restarts, int) \
                or isinstance(max_restarts, bool) or max_restarts < 0:
            raise ConfigError("max_restarts must be an integer >= 0")
        self.options = options if options is not None \
            else ExecutionOptions()
        # Explicit constructor value wins; the options bundle is the
        # configurable default (the campaign service sets a tight
        # interval there for live progress); 0.2 s the fallback.
        if poll_interval is None:
            poll_interval = self.options.poll_interval \
                if self.options.poll_interval is not None \
                else self.DEFAULT_POLL_INTERVAL
        if not isinstance(poll_interval, (int, float)) \
                or isinstance(poll_interval, bool) or poll_interval <= 0:
            raise ConfigError("poll_interval must be > 0")
        if mode == CLI_MODE:
            defaults = ExecutionOptions()
            for name in ("simulator", "golden_cache", "reuse_faultfree"):
                if getattr(self.options, name) \
                        != getattr(defaults, name):
                    raise ConfigError(
                        "mode='cli' shard workers run the default "
                        "execution path; %s is not forwardable over "
                        "the repro-ft command line" % name)
        # Stamp max_cycles onto the spec up front so both worker modes
        # (and the spec file) agree on trial identity.
        self.spec = CampaignSession._stamp_max_cycles(
            spec, self.options.max_cycles)
        self.shards = shards
        self.store_dir = store_dir
        self.mode = mode
        self.poll_interval = poll_interval
        self.max_restarts = max_restarts
        self.merged_store = open_store(merged_store) \
            if merged_store is not None else None
        if self.merged_store is None:
            self.merged_store = JSONLStore(
                os.path.join(store_dir, MERGED_STORE))
        self._listeners: List[CampaignListener] = list(listeners)
        #: Optional zero-argument callable polled once per monitor
        #: tick; returning truthy terminates every worker and raises
        #: :class:`~repro.errors.OrchestratorStopped`.  This is the
        #: cancellation/drain hook of the campaign service — shard
        #: stores keep every completed record, so a stopped campaign
        #: resumes exactly like a crashed one.
        self.stop_requested = stop_requested
        self.workers: List[ShardWorker] = []
        self.result: Optional[CampaignResult] = None
        self._total = 0

    # -- event stream ------------------------------------------------------

    def subscribe(self, listener: CampaignListener) -> CampaignListener:
        self._listeners.append(listener)
        return listener

    def _emit(self, kind, shard=None, record=None, trial=None):
        if not self._listeners:
            return
        event = CampaignEvent(kind=kind, done=self._done(),
                              total=self._total, trial=trial,
                              record=record, shard=shard)
        for listener in self._listeners:
            listener(event)

    def _done(self) -> int:
        return sum(len(worker.seen) for worker in self.workers)

    # -- worker management -------------------------------------------------

    def _make_workers(self):
        # One grid expansion, bucketed with the same partition
        # function spec.shard uses — expanding the full grid once per
        # shard would hash every trial key N+1 times at startup.  The
        # list is kept for the merge ordering at the end of run().
        trials = self._trials = list(self.spec.trials())
        self._total = len(trials)
        shard_keys: Dict[int, set] = {i: set()
                                      for i in range(self.shards)}
        for trial in trials:
            shard_keys[shard_of_key(trial.key, self.shards)].add(
                trial.key)
        self.workers = [
            ShardWorker(
                index=index, total=self.shards,
                store=JSONLStore(shard_store_path(self.store_dir,
                                                  index, self.shards)),
                expected_keys=frozenset(shard_keys[index]),
                log_path=os.path.join(self.store_dir,
                                      _SHARD_LOG % index))
            for index in range(self.shards)]

    def _launch(self, worker: ShardWorker):
        if self.mode == PROCESS_MODE:
            context = multiprocessing.get_context()
            worker.process = context.Process(
                target=_run_shard,
                args=(self.spec.to_dict(), worker.index, self.shards,
                      self.options.to_dict(), worker.store.path))
            worker.process.start()
            return
        command = [sys.executable, "-m", "repro.harness.cli",
                   "campaign", "--spec", self._spec_file,
                   "--shard", "%d/%d" % (worker.index, self.shards),
                   "--store", worker.store.path, "--quiet"]
        if self.options.workers > 1:
            command += ["--workers", str(self.options.workers)]
        plan = self.options.sampling
        if plan is not None and plan.is_adaptive:
            command += ["--adaptive", repr(plan.target_halfwidth),
                        "--adaptive-metric", plan.metric,
                        "--adaptive-min", str(plan.min_replicates)]
            if plan.max_replicates is not None:
                command += ["--adaptive-max",
                            str(plan.max_replicates)]
        if worker.store.exists and worker.store.completed_keys():
            command.append("--resume")
        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.dirname(package_root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        log = open(worker.log_path, "a")
        try:
            worker.process = subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT, env=env)
        finally:
            log.close()

    def _poll_store(self, worker: ShardWorker):
        """Surface records appended to one shard store since last poll.

        Shard stores are append-only JSONL, so the driver reads only
        the tail past its per-worker byte offset — a full re-parse per
        tick would make monitoring quadratic in campaign size.  Only
        newline-terminated lines are consumed (the tail may be
        mid-write; it is left for the next poll), and a terminated
        line that fails to parse is torn-tail garbage a killed worker
        left behind — skipped for good, exactly like
        :meth:`~repro.campaign.store.JSONLStore.load` skips it.

        Read errors are tolerated: a store that cannot be read right
        now (transient NFS hiccup, or a genuinely broken path) yields
        no new records this poll — a broken path also kills the worker
        itself, whose restart budget then reports the shard properly.
        """
        try:
            size = os.path.getsize(worker.store.path)
            if size < worker.read_offset:
                # The worker truncated and recreated the store (fresh
                # run over a file that held no intact records).
                worker.read_offset = 0
            if size <= worker.read_offset:
                return
            with open(worker.store.path, "rb") as handle:
                handle.seek(worker.read_offset)
                chunk = handle.read()
        except OSError:
            return
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return
        worker.read_offset += cut + 1
        for line in chunk[:cut + 1].splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            key = record.get("key")
            if key is None or key in worker.seen:
                continue
            worker.seen.add(key)
            self._emit(TRIAL_FINISHED, shard=worker.index,
                       record=record, trial=record.get("trial"))

    def _shard_complete(self, worker: ShardWorker) -> bool:
        """Whether a clean exit may be trusted as 'shard done'.

        Fixed plans must cover the whole shard keyspace; adaptive
        plans legitimately skip converged cells' replicates, so the
        worker's exit status is the only authority.
        """
        if self.options.adaptive:
            return True
        return worker.expected_keys <= worker.seen

    def _handle_exit(self, worker: ShardWorker):
        exitcode = worker.exitcode
        worker.reap()
        self._poll_store(worker)     # drain before judging
        if exitcode == 0 and self._shard_complete(worker):
            worker.finished = True
            self._emit(SHARD_FINISHED, shard=worker.index)
            return
        if worker.restarts >= self.max_restarts:
            raise OrchestratorError(
                "shard %d/%d died with exit code %s after %d "
                "restart%s (store: %s%s); its completed records are "
                "preserved — fix the cause and re-run to resume"
                % (worker.index, self.shards, exitcode, worker.restarts,
                   "" if worker.restarts == 1 else "s",
                   worker.store.path,
                   ", log: %s" % worker.log_path
                   if self.mode == CLI_MODE else ""))
        worker.restarts += 1
        self._launch(worker)
        self._emit(SHARD_RESTARTED, shard=worker.index)

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> CampaignResult:
        """Drive every shard to completion and merge the result."""
        os.makedirs(self.store_dir, exist_ok=True)
        self._make_workers()
        if self.mode == CLI_MODE:
            self._spec_file = os.path.join(self.store_dir, _SPEC_FILE)
            with open(self._spec_file, "w") as handle:
                json.dump(self.spec.to_dict(), handle, indent=2,
                          sort_keys=True)
        resumed_keys = set()
        for worker in self.workers:
            self._poll_store(worker)       # records of a previous run
            resumed_keys.update(worker.seen)
        skipped = len(resumed_keys)
        try:
            for worker in self.workers:
                if not self.options.adaptive \
                        and self._shard_complete(worker):
                    # A prior run already covered this shard's whole
                    # keyspace: nothing to launch (adaptive shards
                    # must still run — only the worker knows whether
                    # its open cells have converged).
                    worker.finished = True
                    self._emit(SHARD_FINISHED, shard=worker.index)
                    continue
                self._launch(worker)
                self._emit(SHARD_STARTED, shard=worker.index)
            while True:
                if self.stop_requested is not None \
                        and self.stop_requested():
                    raise OrchestratorStopped(
                        "campaign %r stopped on request with %d/%d "
                        "trials recorded; shard stores under %s keep "
                        "every completed record and a re-run resumes "
                        "from them" % (self.spec.name, self._done(),
                                       self._total, self.store_dir))
                for worker in self.workers:
                    if worker.finished:
                        continue
                    self._poll_store(worker)
                    if not worker.alive:
                        self._handle_exit(worker)
                if all(worker.finished for worker in self.workers):
                    break
                time.sleep(self.poll_interval)
        finally:
            for worker in self.workers:
                worker.terminate()
        for worker in self.workers:
            self._poll_store(worker)       # final drain
        # Merge APPENDS to the merged store (fresh shard records win
        # over anything already there, per merge_stores' documented
        # last-write-wins) and compaction collapses the duplicates —
        # a pre-existing store a user handed in is never wiped, which
        # run() on a session would have refused to do too.
        merge_stores([worker.store for worker in self.workers],
                     self.merged_store)
        self.merged_store.compact()
        by_key = {record["key"]: record
                  for record in self.merged_store.load()}
        trials = self._trials
        if self.options.adaptive:
            records = [by_key[trial.key] for trial in trials
                       if trial.key in by_key]
        else:
            # Fixed plans must cover the grid; a gap in the merged
            # store is a defect, not a convergence decision.
            missing = [trial.key for trial in trials
                       if trial.key not in by_key]
            if missing:
                raise OrchestratorError(
                    "merged store %s is missing %d of %d trial "
                    "records (first: %s) — shard stores and merge "
                    "disagree" % (self.merged_store.path,
                                  len(missing), len(trials),
                                  missing[0]))
            records = [by_key[trial.key] for trial in trials]
        self.result = CampaignResult(
            spec=self.spec, records=records,
            executed=self._done() - skipped, skipped=skipped)
        if self.options.adaptive:
            self.result.adaptive = merged_adaptive_summary(
                self.options.sampling, trials,
                {record["key"]: record for record in records},
                resumed_keys=resumed_keys)
        self._emit(CAMPAIGN_FINISHED)
        return self.result

    @property
    def total_restarts(self) -> int:
        return sum(worker.restarts for worker in self.workers)
