"""Parallel Monte Carlo fault-injection campaigns.

Turns one-off ``run_on_model`` simulations into resumable, parallel,
statistically aggregated injection campaigns:

* :mod:`~repro.campaign.spec` — declarative grid of (workload x model x
  fault rate x kind mix x replicate), expanded into content-keyed trials;
* :mod:`~repro.campaign.outcome` — per-trial golden-reference
  classification (masked / detected_recovered / sdc / timeout);
* :mod:`~repro.campaign.golden` — memoized, seekable golden traces and
  store-footprint state comparison shared by all trials of a cell;
* :mod:`~repro.campaign.engine` — serial or process-pool execution with
  order-independent determinism;
* :mod:`~repro.campaign.store` — JSONL persistence keyed by trial hash,
  the substrate for ``--resume``;
* :mod:`~repro.campaign.aggregate` — per-cell coverage / SDC-rate / IPC
  statistics with Wilson confidence intervals.

Quickstart::

    from repro.campaign import CampaignSpec, aggregate, run_campaign

    spec = CampaignSpec(workloads=("gcc",), models=("SS-1", "SS-2"),
                        rates_per_million=(0.0, 3000.0), replicates=8,
                        instructions=2_000)
    result = run_campaign(spec, workers=4)
    for cell in aggregate(result.records):
        print(cell.workload, cell.model, cell.rate_per_million,
              cell.counts, cell.coverage)
"""

from .aggregate import (CellStats, aggregate, cells_to_json,
                        wilson_interval)
from .engine import CampaignResult, execute_trial_payload, run_campaign
from .golden import (GoldenTrace, cached_trace, clear_trace_cache,
                     compare_with_golden)
from .outcome import (DETECTED_RECOVERED, MASKED, OUTCOMES, SDC,
                      SIMULATORS, TIMEOUT, TrialResult,
                      clear_result_caches, run_trial)
from .spec import CampaignSpec, Trial
from .store import ResultStore

__all__ = [
    "CellStats", "aggregate", "cells_to_json", "wilson_interval",
    "CampaignResult", "execute_trial_payload", "run_campaign",
    "GoldenTrace", "cached_trace", "clear_trace_cache",
    "compare_with_golden",
    "DETECTED_RECOVERED", "MASKED", "OUTCOMES", "SDC", "SIMULATORS",
    "TIMEOUT", "TrialResult", "clear_result_caches", "run_trial",
    "CampaignSpec", "Trial", "ResultStore",
]
