"""Parallel Monte Carlo fault-injection campaigns.

Turns one-off ``run_on_model`` simulations into resumable, parallel,
statistically aggregated injection campaigns:

* :mod:`~repro.campaign.spec` — declarative grid of (workload x model x
  machine-override x fault rate x kind mix x replicate), expanded into
  content-keyed trials; ``spec.shard(i, n)`` partitions the keyspace
  deterministically for multi-host runs;
* :mod:`~repro.campaign.api` — the :class:`CampaignSession` facade:
  spec + :class:`ExecutionOptions` + store backend + typed
  :class:`CampaignEvent` stream, with ``run`` / ``resume`` /
  ``progress`` / ``aggregate``;
* :mod:`~repro.campaign.outcome` — per-trial golden-reference
  classification (masked / detected_recovered / sdc / timeout);
* :mod:`~repro.campaign.golden` — memoized, seekable golden traces and
  store-footprint state comparison shared by all trials of a cell;
* :mod:`~repro.campaign.store` — pluggable result stores behind
  :class:`StoreBackend`: single-file JSONL, indexed SQLite and sharded
  JSONL, selected by URL-style path (``out.jsonl`` /
  ``sqlite:campaign.db`` / ``shard:dir/``), mergeable via
  :func:`merge_stores`, compactable via ``StoreBackend.compact``;
* :mod:`~repro.campaign.engine` — the deprecated ``run_campaign``
  keyword surface, kept as a thin wrapper over the session;
* :mod:`~repro.campaign.aggregate` — per-cell coverage / SDC-rate / IPC
  statistics with Wilson confidence intervals;
* :mod:`~repro.campaign.adaptive` — :class:`SamplingPlan` adaptive
  sampling: stop a cell once its Wilson interval is tight enough and
  spend the freed replicate budget on the widest open interval
  (``ExecutionOptions(sampling=SamplingPlan.wilson(0.05))``);
* :mod:`~repro.campaign.orchestrator` — the multi-shard driver:
  launch N shard workers, monitor their stores, restart dead workers
  from their records, merge on completion
  (``CampaignSession.orchestrate(...)`` / ``repro-ft orchestrate``).

Quickstart::

    from repro.campaign import CampaignSession, CampaignSpec, ExecutionOptions

    spec = CampaignSpec(workloads=("gcc",), models=("SS-1", "SS-2"),
                        rates_per_million=(0.0, 3000.0), replicates=8,
                        instructions=2_000)
    session = CampaignSession(spec,
                              options=ExecutionOptions(workers=4),
                              store="sqlite:campaign.db")
    session.run()                        # or .resume() after a kill
    for cell in session.aggregate():
        print(cell.workload, cell.model, cell.rate_per_million,
              cell.counts, cell.coverage)
"""

from .adaptive import (AdaptiveScheduler, AdaptiveSummary,
                       SamplingPlan, merged_adaptive_summary,
                       wilson_halfwidth)
from .aggregate import (CellStats, StructureStats, aggregate,
                        aggregate_structures, cells_to_json,
                        structures_to_json, wilson_interval)
from .api import (CAMPAIGN_FINISHED, CELL_CONVERGED, CELL_FINISHED,
                  EVENT_KINDS, TRIAL_FINISHED, TRIAL_STARTED,
                  CampaignEvent, CampaignProgress, CampaignResult,
                  CampaignSession, ExecutionOptions,
                  execute_trial_payload)
from .engine import run_campaign
from .orchestrator import (CampaignOrchestrator, ShardWorker,
                           shard_store_path)
from .golden import (GoldenTrace, cached_trace, clear_trace_cache,
                     compare_with_golden)
from .outcome import (DETECTED_RECOVERED, MASKED, OUTCOMES, SDC,
                      SIMULATORS, TIMEOUT, TrialResult,
                      clear_result_caches, run_trial)
from .spec import CampaignShard, CampaignSpec, Trial
from .store import (JSONLStore, ResultStore, RetryingStore,
                    ShardedJSONLStore, SQLiteStore, StoreBackend,
                    merge_stores, open_store, shard_of_key)

__all__ = [
    "AdaptiveScheduler", "AdaptiveSummary", "SamplingPlan",
    "merged_adaptive_summary", "wilson_halfwidth",
    "CellStats", "StructureStats", "aggregate", "aggregate_structures",
    "cells_to_json", "structures_to_json", "wilson_interval",
    "CAMPAIGN_FINISHED", "CELL_CONVERGED", "CELL_FINISHED",
    "EVENT_KINDS", "TRIAL_FINISHED", "TRIAL_STARTED", "CampaignEvent",
    "CampaignProgress", "CampaignResult", "CampaignSession",
    "ExecutionOptions", "execute_trial_payload", "run_campaign",
    "CampaignOrchestrator", "ShardWorker", "shard_store_path",
    "GoldenTrace", "cached_trace", "clear_trace_cache",
    "compare_with_golden",
    "DETECTED_RECOVERED", "MASKED", "OUTCOMES", "SDC", "SIMULATORS",
    "TIMEOUT", "TrialResult", "clear_result_caches", "run_trial",
    "CampaignShard", "CampaignSpec", "Trial",
    "JSONLStore", "ResultStore", "RetryingStore",
    "ShardedJSONLStore", "SQLiteStore",
    "StoreBackend", "merge_stores", "open_store", "shard_of_key",
]
