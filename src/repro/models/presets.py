"""The paper's simulated machine models (Section 5.1.2).

* **SS-1** — the baseline single-thread out-of-order superscalar with
  the Table-1 parameters (stock ``sim-outorder`` configuration).
* **SS-2** — the same datapath in 2-way dynamically redundant
  fault-tolerant mode (the paper's main design point).
* **SS-3** — 3-way redundancy; by default with 2-of-3 majority election
  (the Figure 6 comparison design).  The ROB size is trimmed to the
  nearest multiple of 3, per the paper's alignment requirement.
* **Static-2** — a statically redundant processor: two identical
  lock-step pipelines, each with half of the baseline resources *except*
  caches and branch-prediction hardware — and each with its own
  FPMult/Div unit, which the paper's footnote 3 calls out as Static-2's
  structural advantage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import (DUAL_REDUNDANT, TRIPLE_MAJORITY, TRIPLE_REWIND,
                           UNPROTECTED, FTConfig)
from ..errors import ConfigError
from ..uarch.config import MachineConfig


@dataclass(frozen=True)
class MachineModel:
    """A named (machine config, fault-tolerance mode) pair."""

    name: str
    config: MachineConfig
    ft: FTConfig

    @property
    def redundancy(self):
        return self.ft.redundancy


def baseline_config(**overrides):
    """The Table-1 machine configuration."""
    return MachineConfig(name="ss-1").derive(**overrides) \
        if overrides else MachineConfig(name="ss-1")


def ss1(**overrides):
    """SS-1: the unprotected baseline superscalar."""
    return MachineModel("SS-1", baseline_config(**overrides), UNPROTECTED)


def ss2(**overrides):
    """SS-2: 2-way redundant fault-tolerant superscalar."""
    config = baseline_config(**overrides).derive(name="ss-2")
    return MachineModel("SS-2", config, DUAL_REDUNDANT)


def ss3(majority=True, **overrides):
    """SS-3: 3-way redundant design (majority election by default)."""
    config = baseline_config(**overrides)
    rob = config.rob_size - (config.rob_size % 3)
    config = config.derive(name="ss-3", rob_size=rob)
    ft = TRIPLE_MAJORITY if majority else TRIPLE_REWIND
    return MachineModel("SS-3", config, ft)


def static2(**overrides):
    """Static-2: two lock-step half-resource pipelines (per-pipe model).

    Simulated as one pipeline with half the Table-1 resources; caches
    and branch predictor stay full-size, and the pipe keeps a full
    FPMult/Div unit (the paper's footnote 3).
    """
    config = baseline_config(**overrides).derive(
        name="static-2",
        fetch_width=4, dispatch_width=4, issue_width=4, commit_width=4,
        ifq_size=8, rob_size=64, lsq_size=32,
        int_alu=2, int_mult=1, fp_add=1, fp_mult=1, mem_ports=1)
    return MachineModel("Static-2", config, UNPROTECTED)


#: The Figure-5 model line-up, in presentation order.
FIGURE5_MODELS = ("SS-1", "Static-2", "SS-2")


def get_model(name, **overrides):
    """Model by name: SS-1, SS-2, SS-3, SS-3-rewind or Static-2."""
    key = name.lower().replace("_", "-")
    if key == "ss-1":
        return ss1(**overrides)
    if key == "ss-2":
        return ss2(**overrides)
    if key == "ss-3":
        return ss3(majority=True, **overrides)
    if key == "ss-3-rewind":
        return ss3(majority=False, **overrides)
    if key == "static-2":
        return static2(**overrides)
    raise KeyError("unknown machine model %r" % name)


#: MachineConfig fields that may not be overridden through a campaign's
#: ``machine_overrides`` axis: the name is preset-owned, and the two
#: composite parameter blocks are not flat scalars.
NON_OVERRIDABLE_FIELDS = ("name", "branch", "hierarchy")


def overridable_config_fields():
    """The flat MachineConfig fields open to machine_overrides sweeps."""
    return tuple(f for f in MachineConfig.__dataclass_fields__
                 if f not in NON_OVERRIDABLE_FIELDS)


def derive_model(name, overrides):
    """Model by name with MachineConfig field overrides applied.

    The design-space entry point behind a campaign's
    ``machine_overrides`` axis: ``derive_model("SS-2", {"rob_size": 64,
    "int_alu": 8})`` is SS-2 on a 64-entry-ROB, 8-ALU derivation of the
    Table-1 datapath.  Unknown fields and invalid values raise
    :class:`~repro.errors.ConfigError` (not a TypeError traceback), so
    spec validation can reject bad sweeps before any trial runs.
    """
    overrides = dict(overrides)
    allowed = overridable_config_fields()
    unknown = sorted(set(overrides) - set(allowed))
    if unknown:
        raise ConfigError(
            "unknown MachineConfig override field(s) %s; overridable "
            "fields: %s" % (", ".join(unknown), ", ".join(allowed)))
    try:
        return get_model(name, **overrides)
    except ConfigError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigError("invalid machine override for %s: %s"
                          % (name, exc))
