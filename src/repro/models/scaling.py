"""Resource-scaling helpers for the Section-5.2 sensitivity study.

The paper explains each benchmark's redundancy penalty by testing its
"sensitivity to varying numbers of functional units (0.5x, 2x, infinite)
and RUU sizes (0.5x, 2x, infinite)".  These helpers derive those scaled
configurations from any base machine.
"""

from __future__ import annotations

import math

#: Practical stand-ins for "infinite": far beyond what an 8-wide front
#: end can consume, while keeping per-cycle scans cheap.
INFINITE_FU = 64
INFINITE_ROB = 2048
INFINITE_LSQ = 1024

#: The factor labels used in the study.
SCALE_LABELS = ("0.5x", "1x", "2x", "inf")


def _scaled(value, factor, minimum=1, infinite=INFINITE_FU):
    if math.isinf(factor):
        return infinite
    return max(minimum, int(round(value * factor)))


def scale_functional_units(config, factor):
    """Scale every FU pool (and D-cache ports) by ``factor``."""
    return config.derive(
        name="%s-fu%s" % (config.name, _label(factor)),
        int_alu=_scaled(config.int_alu, factor),
        int_mult=_scaled(config.int_mult, factor),
        fp_add=_scaled(config.fp_add, factor),
        fp_mult=_scaled(config.fp_mult, factor),
        mem_ports=_scaled(config.mem_ports, factor))


def scale_window(config, factor):
    """Scale the RUU (ROB) and LSQ sizes by ``factor``."""
    if math.isinf(factor):
        rob, lsq = INFINITE_ROB, INFINITE_LSQ
    else:
        rob = max(8, int(round(config.rob_size * factor)))
        lsq = max(4, int(round(config.lsq_size * factor)))
        rob -= rob % 2  # keep even so R=2 alignment always works
    return config.derive(name="%s-ruu%s" % (config.name, _label(factor)),
                         rob_size=rob, lsq_size=lsq)


def _label(factor):
    if math.isinf(factor):
        return "inf"
    if factor == int(factor):
        return "%dx" % int(factor)
    return "%gx" % factor


def factor_for_label(label):
    """Inverse of the study labels: '0.5x' -> 0.5, 'inf' -> math.inf."""
    if label == "inf":
        return math.inf
    if not label.endswith("x"):
        raise ValueError("bad scale label %r" % label)
    return float(label[:-1])
