"""Machine-model presets and resource-scaling helpers."""

from .presets import (FIGURE5_MODELS, MachineModel, baseline_config,
                      get_model, ss1, ss2, ss3, static2)
from .scaling import (INFINITE_FU, INFINITE_LSQ, INFINITE_ROB,
                      SCALE_LABELS, factor_for_label,
                      scale_functional_units, scale_window)

__all__ = [
    "FIGURE5_MODELS", "MachineModel", "baseline_config", "get_model",
    "ss1", "ss2", "ss3", "static2", "INFINITE_FU", "INFINITE_LSQ",
    "INFINITE_ROB", "SCALE_LABELS", "factor_for_label",
    "scale_functional_units", "scale_window",
]
