"""Two-level adaptive predictor (SimpleScalar "2lev" style).

Table 1 configures it as: 2-entry L1 of 10-bit history registers, a
1024-entry L2 of 2-bit counters, and 1-bit XOR folding of the PC into
the history when indexing L2 (gshare-flavoured).
"""

from __future__ import annotations

from .base import DirectionPredictor, require_power_of_two

_WEAKLY_TAKEN = 2
_MAX = 3


class TwoLevelPredictor(DirectionPredictor):
    """L1 history registers indexing an L2 pattern-history table."""

    def __init__(self, l1_size=2, l2_size=1024, history_bits=10,
                 use_xor=True):
        require_power_of_two(l1_size, "2-level L1 size")
        require_power_of_two(l2_size, "2-level L2 size")
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.l1_size = l1_size
        self.l2_size = l2_size
        self.history_bits = history_bits
        self.use_xor = use_xor
        self._history_mask = (1 << history_bits) - 1
        self._l1_mask = l1_size - 1
        self._l2_mask = l2_size - 1
        self._histories = [0] * l1_size
        self._counters = [_WEAKLY_TAKEN] * l2_size
        self.lookups = 0

    def _l2_index(self, pc):
        history = self._histories[pc & self._l1_mask]
        if self.use_xor:
            return (history ^ pc) & self._l2_mask
        return history & self._l2_mask

    def predict(self, pc):
        self.lookups += 1
        return self._counters[self._l2_index(pc)] >= _WEAKLY_TAKEN

    def update(self, pc, taken):
        index = self._l2_index(pc)
        counter = self._counters[index]
        if taken:
            if counter < _MAX:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
        l1_index = pc & self._l1_mask
        self._histories[l1_index] = (
            ((self._histories[l1_index] << 1) | int(taken))
            & self._history_mask)

    def reset(self):
        self._histories = [0] * self.l1_size
        self._counters = [_WEAKLY_TAKEN] * self.l2_size
        self.lookups = 0
