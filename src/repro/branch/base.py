"""Interfaces and helpers for branch direction predictors."""

from __future__ import annotations

from ..errors import ConfigError


class DirectionPredictor:
    """Interface: predicts taken/not-taken for conditional branches."""

    def predict(self, pc):
        """Predicted direction for the branch at ``pc``."""
        raise NotImplementedError

    def update(self, pc, taken):
        """Train with the resolved direction (called at commit)."""
        raise NotImplementedError

    def reset(self):
        """Forget all learned state."""
        raise NotImplementedError


class SaturatingCounter:
    """Reference 2-bit saturating counter (tables use raw ints for speed)."""

    __slots__ = ("value", "max_value")

    def __init__(self, bits=2, value=None):
        self.max_value = (1 << bits) - 1
        self.value = (self.max_value + 1) // 2 if value is None else value

    @property
    def taken(self):
        return self.value > self.max_value // 2

    def train(self, taken):
        if taken:
            if self.value < self.max_value:
                self.value += 1
        elif self.value > 0:
            self.value -= 1


def require_power_of_two(value, what):
    if value <= 0 or value & (value - 1):
        raise ConfigError("%s must be a power of two, got %d"
                          % (what, value))
    return value
