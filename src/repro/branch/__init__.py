"""Branch prediction substrate."""

from .base import DirectionPredictor, SaturatingCounter
from .bimodal import BimodalPredictor
from .btb import BranchTargetBuffer
from .combined import CombinedPredictor
from .ras import ReturnAddressStack
from .static import AlwaysNotTaken, AlwaysTaken
from .twolevel import TwoLevelPredictor

__all__ = [
    "DirectionPredictor", "SaturatingCounter", "BimodalPredictor",
    "BranchTargetBuffer", "CombinedPredictor", "ReturnAddressStack",
    "AlwaysNotTaken", "AlwaysTaken", "TwoLevelPredictor",
]
