"""Combined (tournament) predictor: bimodal + 2-level with a chooser.

This is the Table-1 configuration: "Combined predictor that selects
between a 2K bimodal and a 2-level predictor".  The meta (chooser) table
is a PC-indexed array of 2-bit counters trained toward whichever
component was right when they disagree.
"""

from __future__ import annotations

from .base import DirectionPredictor, require_power_of_two
from .bimodal import BimodalPredictor
from .twolevel import TwoLevelPredictor

_PREFER_TWOLEVEL = 2
_MAX = 3


class CombinedPredictor(DirectionPredictor):
    """Tournament of a bimodal and a two-level component."""

    def __init__(self, bimodal=None, twolevel=None, meta_size=1024):
        require_power_of_two(meta_size, "meta table size")
        self.bimodal = bimodal or BimodalPredictor()
        self.twolevel = twolevel or TwoLevelPredictor()
        self.meta_size = meta_size
        self._meta_mask = meta_size - 1
        self._meta = [_PREFER_TWOLEVEL] * meta_size
        self.lookups = 0

    def predict(self, pc):
        self.lookups += 1
        if self._meta[pc & self._meta_mask] >= _PREFER_TWOLEVEL:
            return self.twolevel.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc, taken):
        bimodal_said = self.bimodal._table[pc & self.bimodal._mask] >= 2
        twolevel_said = (self.twolevel._counters[
            self.twolevel._l2_index(pc)] >= 2)
        if bimodal_said != twolevel_said:
            index = pc & self._meta_mask
            counter = self._meta[index]
            if twolevel_said == taken:
                if counter < _MAX:
                    self._meta[index] = counter + 1
            elif counter > 0:
                self._meta[index] = counter - 1
        self.bimodal.update(pc, taken)
        self.twolevel.update(pc, taken)

    def reset(self):
        self.bimodal.reset()
        self.twolevel.reset()
        self._meta = [_PREFER_TWOLEVEL] * self.meta_size
        self.lookups = 0
