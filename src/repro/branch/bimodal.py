"""Bimodal branch predictor: a PC-indexed table of 2-bit counters."""

from __future__ import annotations

from .base import DirectionPredictor, require_power_of_two

_WEAKLY_TAKEN = 2
_MAX = 3


class BimodalPredictor(DirectionPredictor):
    """The 2K-entry bimodal component of the Table-1 combined predictor."""

    def __init__(self, size=2048):
        require_power_of_two(size, "bimodal table size")
        self.size = size
        self._mask = size - 1
        self._table = [_WEAKLY_TAKEN] * size
        self.lookups = 0

    def predict(self, pc):
        self.lookups += 1
        return self._table[pc & self._mask] >= _WEAKLY_TAKEN

    def update(self, pc, taken):
        index = pc & self._mask
        counter = self._table[index]
        if taken:
            if counter < _MAX:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1

    def reset(self):
        self._table = [_WEAKLY_TAKEN] * self.size
        self.lookups = 0
