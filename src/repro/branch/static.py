"""Static direction predictors, for ablations and tests."""

from __future__ import annotations

from .base import DirectionPredictor


class AlwaysTaken(DirectionPredictor):
    """Predicts taken for every branch."""

    def predict(self, pc):
        return True

    def update(self, pc, taken):
        pass

    def reset(self):
        pass


class AlwaysNotTaken(DirectionPredictor):
    """Predicts not-taken for every branch."""

    def predict(self, pc):
        return False

    def update(self, pc, taken):
        pass

    def reset(self):
        pass
