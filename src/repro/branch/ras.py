"""Return address stack with snapshot/restore for speculation repair.

The RAS is updated speculatively at fetch (pushes on ``jal``/``jalr``,
pops on ``jr r31``); each in-flight control instruction carries a
snapshot so a branch misprediction can restore the stack, and a fault
rewind simply clears it (the stack is a pure performance hint).
"""

from __future__ import annotations


class ReturnAddressStack:
    """Fixed-depth circular return-address stack."""

    def __init__(self, depth=8):
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._stack = [None] * depth
        self._top = 0          # index of the next free slot
        self._occupancy = 0
        self.pushes = 0
        self.pops = 0

    def push(self, address):
        self.pushes += 1
        self._stack[self._top] = address
        self._top = (self._top + 1) % self.depth
        if self._occupancy < self.depth:
            self._occupancy += 1

    def pop(self):
        """Pop the predicted return address, or ``None`` when empty."""
        self.pops += 1
        if self._occupancy == 0:
            return None
        self._top = (self._top - 1) % self.depth
        self._occupancy -= 1
        return self._stack[self._top]

    def snapshot(self):
        """Cheap copyable state for misprediction repair."""
        return (self._top, self._occupancy, tuple(self._stack))

    def restore(self, snap):
        self._top, self._occupancy, stack = snap
        self._stack = list(stack)

    def clear(self):
        self._stack = [None] * self.depth
        self._top = 0
        self._occupancy = 0
