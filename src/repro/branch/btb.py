"""Branch target buffer: set-associative tag/target store.

With decoded instructions, direct targets are computable at fetch; the
BTB earns its keep on *indirect* jumps (``jr``/``jalr``) whose targets
come from registers.  Per Section 3.4 the BTB needs no ECC protection —
a corrupted target manifests as a recoverable misprediction.
"""

from __future__ import annotations

from .base import require_power_of_two


class BranchTargetBuffer:
    """LRU set-associative BTB (default 512 sets x 4 ways).

    Sets are materialised lazily as plain dicts; insertion order is the
    LRU recency order (hits pop and re-insert their tag).
    """

    def __init__(self, sets=512, assoc=4):
        require_power_of_two(sets, "BTB set count")
        if assoc <= 0:
            raise ValueError("BTB associativity must be positive")
        self.num_sets = sets
        self.assoc = assoc
        self._mask = sets - 1
        self._sets = {}                  # set index -> {pc: target}
        self.lookups = 0
        self.hits = 0

    def lookup(self, pc):
        """Predicted target for ``pc`` or ``None`` on a BTB miss."""
        self.lookups += 1
        entry_set = self._sets.get(pc & self._mask)
        if entry_set is None:
            return None
        target = entry_set.pop(pc, None)
        if target is not None:
            self.hits += 1
            entry_set[pc] = target       # refresh recency
        return target

    def update(self, pc, target):
        """Install/refresh the target for ``pc``."""
        sets = self._sets
        index = pc & self._mask
        entry_set = sets.get(index)
        if entry_set is None:
            entry_set = sets[index] = {}
        elif pc in entry_set:
            del entry_set[pc]            # re-insert at MRU position
        elif len(entry_set) >= self.assoc:
            del entry_set[next(iter(entry_set))]
        entry_set[pc] = target

    def reset(self):
        self._sets = {}
        self.lookups = 0
        self.hits = 0
