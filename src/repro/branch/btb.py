"""Branch target buffer: set-associative tag/target store.

With decoded instructions, direct targets are computable at fetch; the
BTB earns its keep on *indirect* jumps (``jr``/``jalr``) whose targets
come from registers.  Per Section 3.4 the BTB needs no ECC protection —
a corrupted target manifests as a recoverable misprediction.
"""

from __future__ import annotations

from collections import OrderedDict

from .base import require_power_of_two


class BranchTargetBuffer:
    """LRU set-associative BTB (default 512 sets x 4 ways)."""

    def __init__(self, sets=512, assoc=4):
        require_power_of_two(sets, "BTB set count")
        if assoc <= 0:
            raise ValueError("BTB associativity must be positive")
        self.num_sets = sets
        self.assoc = assoc
        self._mask = sets - 1
        self._sets = [OrderedDict() for _ in range(sets)]
        self.lookups = 0
        self.hits = 0

    def lookup(self, pc):
        """Predicted target for ``pc`` or ``None`` on a BTB miss."""
        self.lookups += 1
        entry_set = self._sets[pc & self._mask]
        target = entry_set.get(pc)
        if target is not None:
            self.hits += 1
            entry_set.move_to_end(pc)
        return target

    def update(self, pc, target):
        """Install/refresh the target for ``pc``."""
        entry_set = self._sets[pc & self._mask]
        if pc in entry_set:
            entry_set.move_to_end(pc)
        elif len(entry_set) >= self.assoc:
            entry_set.popitem(last=False)
        entry_set[pc] = target

    def reset(self):
        for entry_set in self._sets:
            entry_set.clear()
        self.lookups = 0
        self.hits = 0
