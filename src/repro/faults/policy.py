"""Pluggable injection policies: *when and where* faults strike.

An :class:`InjectionPolicy` is the dispatch-time oracle the pipeline
consults for every replicated instruction: once per group (group-scope
``pc`` strikes) and once per redundant copy (everything else).  Three
policies ship:

* :class:`RatePolicy` — the legacy Monte Carlo injector behind the
  ABC.  It *is* :class:`~repro.core.faults.FaultInjector`, wrapped:
  the RNG stream, plan sequence and therefore every existing trial
  key, record and aggregate are byte-identical to the pre-subsystem
  engine (the hot loop still inlines the rate draws against the
  wrapped injector — see ``Replicator.build_group``).
* :class:`SiteListPolicy` — a deterministic list of addressed
  :class:`~repro.faults.sites.FaultSite` strikes for directed
  experiments: "flip bit 12 of the ROB entry of the 4000th dispatched
  group's copy 1".
* :class:`StructureSweepPolicy` — uniform sampling *within one
  structure* (target index, copy, operand slot and bit drawn from a
  seeded RNG), the per-structure sensitivity-campaign workhorse.

Policies are registered by name; :func:`build_policy` constructs one
from a plain JSON-able spec dict, which is how campaign trials carry
them across process-pool workers.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..core.faults import FaultConfig, FaultInjector
from ..errors import ConfigError
from .sites import (FaultSite, SiteStrike, STRUCTURES, structure_applies,
                    structure_width)


class InjectionPolicy(ABC):
    """Decides, at dispatch, which faults strike which sites.

    The pipeline calls :meth:`bind` once (processor construction),
    :meth:`reset` to rewind the policy to its initial state, then
    :meth:`plan_group` per dispatched group and :meth:`plan_copy` per
    redundant copy.  Returning ``None`` means no strike.
    """

    #: Registry name; subclasses override.
    name = "?"

    def bind(self, redundancy):
        """Late-bind machine facts (called once per processor)."""

    @abstractmethod
    def reset(self):
        """Rewind to the initial state (fresh RNG, re-armed sites)."""

    def plan_group(self, gseq, cycle):
        """A group-scope (``pc``) strike for dispatched group ``gseq``,
        or ``None``."""
        return None

    def plan_copy(self, gseq, copy, inst, cycle):
        """A copy-scope strike for copy ``copy`` of group ``gseq``, or
        ``None``."""
        return None

    def describe(self):
        """One-line human description of this policy instance."""
        doc = (type(self).__doc__ or "").strip()
        return doc.splitlines()[0] if doc else type(self).__name__


class RatePolicy(InjectionPolicy):
    """The legacy global-rate injector, unchanged behind the ABC.

    Wraps a :class:`~repro.core.faults.FaultInjector`; the engine's
    dispatch loop recognises the wrapped injector and keeps its inlined
    rate draws, so the RNG stream — and with it every trial key,
    record and aggregate ever produced — is byte-identical to the
    pre-subsystem code (``tests/test_injector_rng_freeze.py`` and the
    policy-equivalence suite enforce this).
    """

    name = "rate"

    def __init__(self, config=None):
        self.config = config or FaultConfig()
        self.injector = FaultInjector(self.config)

    def bind(self, redundancy):
        pass

    def reset(self):
        self.injector.reset()

    def plan_group(self, gseq, cycle):
        plan = self.injector.plan_for_group(None)
        if plan is None:
            return None
        return SiteStrike(structure="pc", bit=plan.bit)

    def plan_copy(self, gseq, copy, inst, cycle):
        plan = self.injector.plan_for_copy(inst)
        if plan is None:
            return None
        structure = {"value": "fu_result", "address": "lsq_address",
                     "branch": "branch_outcome"}[plan.kind]
        bit = plan.bit
        if structure == "branch_outcome":
            # The legacy injector draws branch bits over 64; the
            # engine applies them mod the 16-bit outcome field, so the
            # strike declares the bit it will actually flip.
            bit &= 15
        return SiteStrike(structure=structure, bit=bit)

    def describe(self):
        return ("Monte Carlo rate injector: %.6g faults/M instructions "
                "per copy, kind weights %r"
                % (self.config.rate_per_million,
                   dict(self.config.kind_weights)))


class SiteListPolicy(InjectionPolicy):
    """Deterministic directed strikes against an explicit site list.

    Each :class:`~repro.faults.sites.FaultSite` arms independently and
    fires at the first applicable dispatch at-or-after its ``index``
    (copy-scope sites additionally wait for their ``copy``); a site
    whose cycle ``window`` closes first expires.  After the run,
    :attr:`landed` / :attr:`expired` / :attr:`pending` account for
    every site.
    """

    name = "site_list"

    def __init__(self, sites):
        sites = tuple(sites)
        if not sites:
            raise ConfigError("site_list policy needs >= 1 fault site")
        for site in sites:
            if not isinstance(site, FaultSite):
                raise ConfigError("site_list entries must be FaultSite "
                                  "objects, got %r" % (site,))
        self.sites = sites
        self.reset()

    def reset(self):
        self._group_sites = [site for site in self.sites
                             if site.is_group_scope]
        self._copy_sites = [site for site in self.sites
                            if not site.is_group_scope]
        self.landed = []
        self.expired = []

    @property
    def pending(self):
        """Sites that neither landed nor expired (yet)."""
        return tuple(self._group_sites) + tuple(self._copy_sites)

    def _sweep_expired(self, sites, cycle):
        live = [site for site in sites if not site.expired(cycle)]
        if len(live) != len(sites):
            self.expired.extend(site for site in sites
                                if site.expired(cycle))
        return live

    def plan_group(self, gseq, cycle):
        sites = self._group_sites
        if not sites:
            return None
        sites = self._group_sites = self._sweep_expired(sites, cycle)
        for position, site in enumerate(sites):
            if gseq >= site.index and site.in_window(cycle):
                del sites[position]
                self.landed.append(site)
                return SiteStrike(structure=site.structure, bit=site.bit)
        return None

    def plan_copy(self, gseq, copy, inst, cycle):
        sites = self._copy_sites
        if not sites:
            return None
        sites = self._copy_sites = self._sweep_expired(sites, cycle)
        for position, site in enumerate(sites):
            if (gseq >= site.index and copy == site.copy
                    and site.in_window(cycle)
                    and structure_applies(site.structure, inst,
                                          site.operand)):
                del sites[position]
                self.landed.append(site)
                return SiteStrike(structure=site.structure, bit=site.bit,
                                  operand=site.operand)
        return None

    def describe(self):
        return ("directed strikes: %d site%s (%s)"
                % (len(self.sites), "" if len(self.sites) == 1 else "s",
                   ", ".join(sorted({site.structure
                                     for site in self.sites}))))


class StructureSweepPolicy(InjectionPolicy):
    """Uniform site sampling within one structure.

    Draws ``strikes`` sites from a seeded RNG — target index uniform
    over ``[0, horizon)`` dispatched groups, copy uniform over the
    machine's redundancy (late-bound), bit uniform over the structure's
    field width, operand slot uniform for operand structures — then
    behaves exactly like a :class:`SiteListPolicy` over that sample.
    The same (structure, seed, horizon, redundancy) always sweeps the
    same sites, which is what makes sweep trials content-addressable.
    """

    name = "structure_sweep"

    def __init__(self, structure, strikes=1, horizon=1_000, seed=0):
        if structure not in STRUCTURES:
            raise ConfigError(
                "unknown fault structure %r (choose from %s)"
                % (structure, ", ".join(STRUCTURES)))
        if not isinstance(strikes, int) or isinstance(strikes, bool) \
                or strikes < 1:
            raise ConfigError("structure_sweep strikes must be >= 1, "
                              "got %r" % (strikes,))
        if not isinstance(horizon, int) or isinstance(horizon, bool) \
                or horizon < 1:
            raise ConfigError("structure_sweep horizon must be >= 1, "
                              "got %r" % (horizon,))
        self.structure = structure
        self.strikes = strikes
        self.horizon = horizon
        self.seed = seed
        self._redundancy = 1
        self._list = None
        self.reset()

    def bind(self, redundancy):
        if redundancy != self._redundancy:
            self._redundancy = redundancy
            self._sample()

    def reset(self):
        self._sample()

    def _sample(self):
        from .sites import OPERAND_STRUCTURES
        rng = random.Random(self.seed)
        width = structure_width(self.structure)
        operand_scope = self.structure in OPERAND_STRUCTURES
        sites = []
        for _ in range(self.strikes):
            sites.append(FaultSite(
                structure=self.structure,
                index=rng.randrange(self.horizon),
                copy=rng.randrange(self._redundancy),
                bit=rng.randrange(width),
                operand=rng.randrange(2) if operand_scope else 0))
        self._list = SiteListPolicy(sites)

    @property
    def sites(self):
        return self._list.sites

    @property
    def landed(self):
        return self._list.landed

    @property
    def expired(self):
        return self._list.expired

    @property
    def pending(self):
        return self._list.pending

    def plan_group(self, gseq, cycle):
        return self._list.plan_group(gseq, cycle)

    def plan_copy(self, gseq, copy, inst, cycle):
        return self._list.plan_copy(gseq, copy, inst, cycle)

    def describe(self):
        return ("uniform sweep of %s: %d strike%s over %d dispatched "
                "groups (seed %d)"
                % (self.structure, self.strikes,
                   "" if self.strikes == 1 else "s", self.horizon,
                   self.seed))


#: Registered policies, by name.
POLICY_REGISTRY = {
    RatePolicy.name: RatePolicy,
    SiteListPolicy.name: SiteListPolicy,
    StructureSweepPolicy.name: StructureSweepPolicy,
}

#: Policies constructible from a campaign ``fault_sites`` axis cell.
SITE_POLICY_NAMES = (SiteListPolicy.name, StructureSweepPolicy.name)


def register_policy(cls):
    """Register an :class:`InjectionPolicy` subclass by its ``name``.

    Usable as a decorator for out-of-tree policies.
    """
    if not (isinstance(cls, type) and issubclass(cls, InjectionPolicy)):
        raise ConfigError("register_policy expects an InjectionPolicy "
                          "subclass, got %r" % (cls,))
    if not cls.name or cls.name == "?":
        raise ConfigError("policy %r needs a non-default 'name'"
                          % cls.__name__)
    POLICY_REGISTRY[cls.name] = cls
    return cls


def build_policy(spec, seed=0, horizon=None):
    """Construct a site policy from a plain JSON-able spec dict.

    ``spec`` is one ``fault_sites`` axis cell, e.g.::

        {"policy": "structure_sweep", "structure": "rob_entry",
         "strikes": 1}
        {"policy": "site_list",
         "sites": [{"structure": "fu_result", "index": 40, "bit": 7}]}

    ``seed`` (normally the trial's content-derived fault seed) feeds
    sampling policies; ``horizon`` supplies a default sweep horizon
    when the spec does not fix one (normally the trial's instruction
    budget).
    """
    if not isinstance(spec, dict):
        raise ConfigError("fault-site policy spec must be a dict, "
                          "got %r" % (spec,))
    kind = spec.get("policy")
    if kind == SiteListPolicy.name:
        unknown = set(spec) - {"policy", "sites"}
        if unknown:
            raise ConfigError("unknown site_list fields: %s"
                              % sorted(unknown))
        sites = spec.get("sites")
        if not isinstance(sites, (list, tuple)) or not sites:
            raise ConfigError("site_list policy needs a non-empty "
                              "'sites' list")
        return SiteListPolicy([FaultSite.from_dict(site)
                               for site in sites])
    if kind == StructureSweepPolicy.name:
        unknown = set(spec) - {"policy", "structure", "strikes",
                               "horizon", "seed"}
        if unknown:
            raise ConfigError("unknown structure_sweep fields: %s"
                              % sorted(unknown))
        if "structure" not in spec:
            raise ConfigError("structure_sweep policy needs a "
                              "'structure' field")
        sweep_horizon = spec.get("horizon")
        if sweep_horizon is None:
            sweep_horizon = horizon if horizon is not None else 1_000
        return StructureSweepPolicy(
            structure=spec["structure"],
            strikes=spec.get("strikes", 1),
            horizon=sweep_horizon,
            seed=spec.get("seed", seed))
    raise ConfigError(
        "unknown fault-site policy %r (choose from %s)"
        % (kind, ", ".join(SITE_POLICY_NAMES)))
