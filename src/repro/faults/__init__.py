"""Addressable fault-site subsystem.

Splits transient-fault injection into two orthogonal questions:

* **Where can a fault land?** — :mod:`repro.faults.sites`: the
  :class:`FaultSite` address (structure x dynamic target x copy x bit
  x cycle window) over the taxonomy of pipeline structures;
* **Which faults strike this run?** — :mod:`repro.faults.policy`: the
  :class:`InjectionPolicy` ABC with the legacy Monte Carlo
  :class:`RatePolicy` (byte-identical RNG stream), directed
  :class:`SiteListPolicy` strikes, and per-structure
  :class:`StructureSweepPolicy` sampling.

The legacy surface (:class:`repro.core.faults.FaultConfig` /
:class:`~repro.core.faults.FaultInjector`) keeps working unchanged;
this package is the extensible face of the same machinery.
"""

from .policy import (InjectionPolicy, POLICY_REGISTRY, RatePolicy,
                     SITE_POLICY_NAMES, SiteListPolicy,
                     StructureSweepPolicy, build_policy, register_policy)
from .sites import (COPY_STRUCTURES, FaultSite, GROUP_STRUCTURES,
                    OPERAND_STRUCTURES, STRUCTURES,
                    STRUCTURE_DESCRIPTIONS, STRUCTURE_WIDTHS, SiteStrike,
                    arm_entry, count_strike, structure_applies,
                    structure_width)

__all__ = [
    "InjectionPolicy", "POLICY_REGISTRY", "RatePolicy",
    "SITE_POLICY_NAMES", "SiteListPolicy", "StructureSweepPolicy",
    "build_policy", "register_policy",
    "COPY_STRUCTURES", "FaultSite", "GROUP_STRUCTURES",
    "OPERAND_STRUCTURES", "STRUCTURES", "STRUCTURE_DESCRIPTIONS",
    "STRUCTURE_WIDTHS", "SiteStrike", "arm_entry", "count_strike",
    "structure_applies", "structure_width",
]
