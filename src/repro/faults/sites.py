"""Addressable fault sites: *which* structure, entry, bit and when.

The legacy injector (:mod:`repro.core.faults`) models *how often* a
fault strikes; this module models *where*.  A :class:`FaultSite` names
one single-event upset precisely enough to replay it::

    structure x dynamic target x redundant copy x bit x cycle window

``structure`` is one of the microarchitectural structures of the
paper's datapath (Section 5.1.1 injects "at any stage of the
pipeline"); the dynamic target is the Nth dispatched group of the run
(speculative groups included — squashed targets simply never commit
their corruption), so a site is deterministic across re-runs of the
same trial.

Structure taxonomy and strike semantics:

=================  =====  =====  ==========================================
structure          scope  width  what the flipped bit corrupts
=================  =====  =====  ==========================================
``fu_result``      copy   64     the result leaving a functional unit —
                                 dependents *and* the committed value see it
``rob_entry``      copy   64     the result at rest in the ROB entry —
                                 dependents already captured the clean
                                 value; only commit (and the cross-check)
                                 sees the corruption
``lsq_address``    copy   64     the computed effective address of a
                                 memory op in the LSQ
``branch_outcome`` copy   16     the resolved control-flow outcome
                                 (direction for branches, target bits for
                                 jumps)
``pc``             group  16     the fetched PC shared by all copies
                                 (only PC-continuity checking catches it)
``rename_tag``     copy   64     the operand captured through the rename
                                 tag — the copy computes on a wrong source
``iq_entry``       copy   64     the operand latched in the issue-queue
                                 entry while waiting to issue
=================  =====  =====  ==========================================

``rename_tag`` and ``iq_entry`` address different physical latches but
share one architectural consequence (a corrupted source operand at
execute), exactly as ``fu_result`` and ``rob_entry`` share a corrupted
result — the split is what lets a campaign attribute sensitivity to the
structure, not to the consequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigError
from ..isa.opcodes import Kind

#: Every addressable structure, in taxonomy order.
STRUCTURES = ("fu_result", "rob_entry", "lsq_address", "branch_outcome",
              "pc", "rename_tag", "iq_entry")

#: Structures whose strike lands on one redundant copy.
COPY_STRUCTURES = ("fu_result", "rob_entry", "lsq_address",
                   "branch_outcome", "rename_tag", "iq_entry")

#: Structures whose strike corrupts the whole group.
GROUP_STRUCTURES = ("pc",)

#: Structures struck through a source-operand latch.
OPERAND_STRUCTURES = ("rename_tag", "iq_entry")

#: Struck-field width in bits, per structure.
STRUCTURE_WIDTHS = {
    "fu_result": 64,
    "rob_entry": 64,
    "lsq_address": 64,
    "branch_outcome": 16,
    "pc": 16,
    "rename_tag": 64,
    "iq_entry": 64,
}

#: One-line description per structure (``repro-ft faults --list``).
STRUCTURE_DESCRIPTIONS = {
    "fu_result": "result leaving a functional unit (dependents see it)",
    "rob_entry": "result at rest in the ROB entry (commit-visible only)",
    "lsq_address": "effective address of a memory op in the LSQ",
    "branch_outcome": "resolved control-flow outcome of a branch/jump",
    "pc": "fetched PC shared by all copies of a group",
    "rename_tag": "operand captured through the rename tag",
    "iq_entry": "operand latched in the issue-queue entry",
}


def structure_width(structure):
    """Bit width of the field a strike on ``structure`` flips."""
    try:
        return STRUCTURE_WIDTHS[structure]
    except KeyError:
        raise ConfigError(
            "unknown fault structure %r (choose from %s)"
            % (structure, ", ".join(STRUCTURES))) from None


def structure_applies(structure, inst, operand=0):
    """Does ``structure`` physically exist for this instruction?

    Strict — unlike the legacy kind-weight injector there is no
    fallback to a different site: a directed strike against a structure
    the instruction does not have simply waits for the next applicable
    instruction (see :class:`~repro.faults.policy.SiteListPolicy`).
    """
    info = inst.info
    if structure == "pc":
        return True
    if structure == "lsq_address":
        return info.is_mem
    if structure == "branch_outcome":
        return inst.is_control
    if structure == "fu_result":
        return info.writes_reg or info.kind == Kind.STORE
    if structure == "rob_entry":
        return info.writes_reg
    if structure == "rename_tag" or structure == "iq_entry":
        return info.reads_rs2 if operand else info.reads_rs1
    raise ConfigError("unknown fault structure %r (choose from %s)"
                      % (structure, ", ".join(STRUCTURES)))


@dataclass(frozen=True)
class FaultSite:
    """One fully addressed single-event upset.

    ``index`` is the dynamic target: the strike arms for the first
    *applicable* dispatched group whose group sequence number is
    ``>= index`` (dispatch order counts speculative groups).  ``copy``
    selects the redundant copy for copy-scope structures; ``operand``
    the source-operand slot for :data:`OPERAND_STRUCTURES`.  ``window``
    is an optional ``[start, end)`` dispatch-cycle gate — a site whose
    window closes before it lands expires instead of striking.
    """

    structure: str
    index: int = 0
    copy: int = 0
    bit: int = 0
    operand: int = 0
    window: Optional[Tuple[int, int]] = None

    def __post_init__(self):
        width = structure_width(self.structure)   # validates the name
        for label, value in (("index", self.index), ("copy", self.copy),
                             ("bit", self.bit),
                             ("operand", self.operand)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigError("fault site %s must be an integer, "
                                  "got %r" % (label, value))
        if self.index < 0:
            raise ConfigError("fault site index must be >= 0")
        if self.copy < 0:
            raise ConfigError("fault site copy must be >= 0")
        if not 0 <= self.bit < width:
            raise ConfigError(
                "fault site bit %d out of range for %s (field width %d)"
                % (self.bit, self.structure, width))
        if self.operand not in (0, 1):
            raise ConfigError("fault site operand must be 0 or 1")
        if self.window is not None:
            window = tuple(self.window)
            if len(window) != 2 or not all(
                    isinstance(edge, int) and not isinstance(edge, bool)
                    for edge in window):
                raise ConfigError(
                    "fault site window must be (start, end) cycles, "
                    "got %r" % (self.window,))
            start, end = window
            if start < 0 or end <= start:
                raise ConfigError(
                    "fault site window must satisfy 0 <= start < end, "
                    "got %r" % (self.window,))
            object.__setattr__(self, "window", window)

    @property
    def is_group_scope(self):
        return self.structure in GROUP_STRUCTURES

    def in_window(self, cycle):
        """Is ``cycle`` inside this site's strike window?"""
        if self.window is None:
            return True
        return self.window[0] <= cycle < self.window[1]

    def expired(self, cycle):
        """Has the strike window closed without a strike?"""
        return self.window is not None and cycle >= self.window[1]

    def to_dict(self):
        data = {"structure": self.structure, "index": self.index,
                "copy": self.copy, "bit": self.bit}
        if self.operand:
            data["operand"] = self.operand
        if self.window is not None:
            data["window"] = list(self.window)
        return data

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise ConfigError("fault site must be a dict, got %r"
                              % (data,))
        unknown = set(data) - {"structure", "index", "copy", "bit",
                               "operand", "window"}
        if unknown:
            raise ConfigError("unknown fault site fields: %s"
                              % sorted(unknown))
        if "structure" not in data:
            raise ConfigError("fault site needs a 'structure' field")
        window = data.get("window")
        if window is not None:
            if not isinstance(window, (list, tuple)):
                raise ConfigError(
                    "fault site window must be [start, end], got %r"
                    % (window,))
            window = tuple(window)
        return cls(structure=data["structure"],
                   index=data.get("index", 0),
                   copy=data.get("copy", 0),
                   bit=data.get("bit", 0),
                   operand=data.get("operand", 0),
                   window=window)


@dataclass(frozen=True)
class SiteStrike:
    """A site that armed against one concrete dispatch.

    What an :class:`~repro.faults.policy.InjectionPolicy` hands the
    pipeline: the structure decides *which* field the engine corrupts,
    ``bit`` which bit, ``operand`` which source slot (operand
    structures only).
    """

    structure: str
    bit: int
    operand: int = 0


def arm_entry(entry, strike):
    """Arm one ROB entry with a planned site strike.

    Translates the structure into the engine's application channel:
    ``fu_result``/``lsq_address``/``branch_outcome`` ride the legacy
    ``fault_kind`` writeback paths, ``rob_entry`` the post-wakeup
    ``rob_value`` path, and the operand structures the issue-time
    ``op_fault`` path.  ``entry.site`` remembers the structure for
    per-structure accounting.
    """
    structure = strike.structure
    if structure == "fu_result":
        entry.fault_kind = "value"
        entry.fault_bit = strike.bit
    elif structure == "rob_entry":
        entry.fault_kind = "rob_value"
        entry.fault_bit = strike.bit
    elif structure == "lsq_address":
        entry.fault_kind = "address"
        entry.fault_bit = strike.bit
    elif structure == "branch_outcome":
        entry.fault_kind = "branch"
        entry.fault_bit = strike.bit
    elif structure in OPERAND_STRUCTURES:
        entry.op_fault = (strike.operand, strike.bit)
    else:
        raise ConfigError("cannot arm a ROB entry with a %r strike"
                          % structure)
    entry.site = structure


def count_strike(stats, structure):
    """Record one applied strike in the per-structure stats ledger.

    Lives in ``stats.extras['site_strikes']`` so legacy rate runs (which
    never call this) keep byte-identical :class:`PipelineStats`.
    """
    strikes = stats.extras.get("site_strikes")
    if strikes is None:
        strikes = stats.extras["site_strikes"] = {}
    strikes[structure] = strikes.get(structure, 0) + 1
