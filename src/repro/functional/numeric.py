"""Numeric helpers shared by the functional and timing simulators.

Integer registers hold 64-bit two's-complement values represented as
Python ints in ``[-2**63, 2**63)``.  Floating registers hold Python
floats (IEEE-754 double).  Memory cells hold either, so coercion helpers
define how a value read with the "wrong" type is interpreted — this
matters under fault injection, where a corrupted address can make a load
hit a float cell.
"""

from __future__ import annotations

import math
import struct

MASK64 = (1 << 64) - 1
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1


def s64(value):
    """Wrap an int to signed 64-bit two's complement."""
    value &= MASK64
    if value > INT64_MAX:
        value -= 1 << 64
    return value


def u64(value):
    """Reinterpret a signed 64-bit value as unsigned."""
    return value & MASK64


def as_int(value):
    """Coerce a memory/register cell value to a signed 64-bit integer."""
    if isinstance(value, int):
        return s64(value)
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return 0
        return s64(int(value))
    raise TypeError("cannot interpret %r as an integer word" % (value,))


def as_float(value):
    """Coerce a memory/register cell value to a float."""
    if isinstance(value, float):
        return value
    if isinstance(value, int):
        return float(value)
    raise TypeError("cannot interpret %r as a float word" % (value,))


def float_to_bits(value):
    """IEEE-754 bit pattern of a double, as an unsigned 64-bit int."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits):
    """Double with the given IEEE-754 bit pattern."""
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


def flip_int_bit(value, bit):
    """Flip one bit of a signed 64-bit integer (returns signed result)."""
    return s64(u64(value) ^ (1 << (bit & 63)))


def flip_float_bit(value, bit):
    """Flip one bit of a double's IEEE-754 representation."""
    return bits_to_float(float_to_bits(value) ^ (1 << (bit & 63)))


def values_equal(a, b):
    """Equality for committed values: exact, with NaN equal to NaN.

    Redundantly executed copies perform identical operations on identical
    inputs, so agreement is bit-exact; NaN results compare equal so that a
    fault-free NaN-producing program does not trigger false detections.
    """
    if a is b:
        # Identity implies equality under every rule below (a NaN is
        # "equal" to itself here by design); redundant copies frequently
        # share the exact object (interned ints, the group's single
        # load value), so this short-circuit carries the hot path.
        return True
    if isinstance(a, float) and isinstance(b, float):
        if a == b:
            # Equal non-zero floats always share a sign; only the
            # +0.0/-0.0 pair needs the sign-bit comparison.
            return a != 0.0 or \
                math.copysign(1.0, a) == math.copysign(1.0, b)
        return math.isnan(a) and math.isnan(b)
    if isinstance(a, float) or isinstance(b, float):
        return False
    return a == b
