"""Golden-state comparison between two committed architectural states.

Mirrors the paper's sanity-check methodology: "we have the option to
periodically drain the pipeline to compare the two sets of states to
ensure our error detection scheme has captured the randomly injected
faults and the recovery scheme has correctly restored the processor to a
good state" (Section 5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.registers import NUM_LOGICAL_REGS, reg_name
from .numeric import values_equal


@dataclass
class StateDiff:
    """Differences between two architectural states."""

    reg_mismatches: list = field(default_factory=list)
    mem_mismatches: list = field(default_factory=list)
    pc_mismatch: tuple = None

    @property
    def clean(self):
        return (not self.reg_mismatches and not self.mem_mismatches
                and self.pc_mismatch is None)

    def summary(self, limit=8):
        if self.clean:
            return "states identical"
        lines = []
        if self.pc_mismatch is not None:
            lines.append("pc: %s != %s" % self.pc_mismatch)
        for index, left, right in self.reg_mismatches[:limit]:
            lines.append("%s: %r != %r" % (reg_name(index), left, right))
        for address, left, right in self.mem_mismatches[:limit]:
            lines.append("mem[%d]: %r != %r" % (address, left, right))
        hidden = (len(self.reg_mismatches) + len(self.mem_mismatches)
                  - min(limit, len(self.reg_mismatches))
                  - min(limit, len(self.mem_mismatches)))
        if hidden > 0:
            lines.append("... and %d more" % hidden)
        return "; ".join(lines)


def compare_states(left, right, check_pc=False):
    """Compare registers and memory of two states; return a StateDiff."""
    diff = StateDiff()
    for index in range(NUM_LOGICAL_REGS):
        a, b = left.regs[index], right.regs[index]
        if not values_equal(a, b):
            diff.reg_mismatches.append((index, a, b))
    left_cells = left.memory.snapshot()
    right_cells = right.memory.snapshot()
    if len(left_cells) != len(right_cells):
        raise ValueError("cannot compare memories of different sizes")
    for address, (a, b) in enumerate(zip(left_cells, right_cells)):
        if not values_equal(a, b):
            diff.mem_mismatches.append((address, a, b))
    if check_pc and left.pc != right.pc:
        diff.pc_mismatch = (left.pc, right.pc)
    return diff


def assert_states_equal(left, right, context=""):
    """Raise AssertionError with a readable diff if the states differ."""
    diff = compare_states(left, right)
    if not diff.clean:
        prefix = context + ": " if context else ""
        raise AssertionError(prefix + diff.summary())
