"""In-order functional simulator — the golden model.

This is the paper's "second set of committed state ... updated by
executing the program in an in-order, non-speculative manner"
(Section 5.1.1).  The out-of-order core's committed state is compared
against it in tests, in the sanity-check mode of the harness, and after
fault-injection runs to prove that detection + rewind restored correct
execution.

It also doubles as the dynamic instruction-mix profiler used to
regenerate Table 2.
"""

from __future__ import annotations

from collections import Counter

from ..errors import SimulationError
from ..isa.opcodes import FuClass, Kind, Op
from ..memory.main_memory import MainMemory
from .kernel import (alu_value, branch_taken, control_next_pc,
                     effective_address)
from .numeric import as_float, as_int
from .state import ArchState


class MixCounters:
    """Dynamic instruction-mix accounting (Table-2 categories)."""

    def __init__(self):
        self.total = 0
        self.mem_ops = 0
        self.int_ops = 0
        self.fp_add = 0
        self.fp_mult = 0
        self.fp_div = 0
        self.branches = 0
        self.by_op = Counter()

    def record(self, inst):
        info = inst.info
        self.total += 1
        self.by_op[inst.op] += 1
        if info.is_mem:
            self.mem_ops += 1
        elif inst.op == Op.FDIV or inst.op == Op.FSQRT:
            self.fp_div += 1
        elif info.fu == FuClass.FP_MULT:
            self.fp_mult += 1
        elif info.fu == FuClass.FP_ADD:
            self.fp_add += 1
        else:
            # Integer ALU / mult / div, control flow, nop, halt: the paper
            # folds everything non-memory, non-FP into "Int Ops".
            self.int_ops += 1
        if info.kind == Kind.BRANCH:
            self.branches += 1

    def percentages(self):
        """Table-2 row: percent (mem, int, fp add, fp mult, fp div)."""
        if self.total == 0:
            return (0.0,) * 5
        scale = 100.0 / self.total
        return (self.mem_ops * scale, self.int_ops * scale,
                self.fp_add * scale, self.fp_mult * scale,
                self.fp_div * scale)


class FunctionalSimulator:
    """Executes a program one instruction at a time, in program order."""

    def __init__(self, program, mem_size=None, strict_memory=False):
        self.program = program
        kwargs = {}
        if mem_size is not None:
            kwargs["size_words"] = mem_size
        memory = MainMemory(image=program.data, strict=strict_memory,
                            **kwargs)
        self.state = ArchState(memory=memory, pc=program.entry)
        self.instret = 0
        self.mix = MixCounters()

    def step(self):
        """Execute one instruction.  Returns False once halted."""
        state = self.state
        if state.halted:
            return False
        inst = self.program.fetch(state.pc)
        if inst is None:
            raise SimulationError("functional PC ran off the text segment: "
                                  "%d" % state.pc)
        info = inst.info
        a = state.read_reg(inst.rs1) if info.reads_rs1 else 0
        b = state.read_reg(inst.rs2) if info.reads_rs2 else 0
        kind = info.kind

        if kind == Kind.ALU:
            state.write_reg(inst.rd, alu_value(inst.op, a, b, inst.imm,
                                               state.pc))
            state.pc += 1
        elif kind == Kind.LOAD:
            address = effective_address(a, inst.imm)
            value = state.memory.load(address)
            if info.fp_dest:
                state.write_reg(inst.rd, as_float(value))
            else:
                state.write_reg(inst.rd, as_int(value))
            state.pc += 1
        elif kind == Kind.STORE:
            address = effective_address(a, inst.imm)
            state.memory.store(address, b)
            state.pc += 1
        elif kind == Kind.BRANCH:
            if branch_taken(inst.op, a, b):
                state.pc = state.pc + 1 + inst.imm
            else:
                state.pc += 1
        elif kind == Kind.JUMP:
            next_pc = control_next_pc(inst, a, b, state.pc)
            if info.writes_reg:
                state.write_reg(inst.rd, state.pc + 1)
            state.pc = next_pc
        elif kind == Kind.HALT:
            state.halted = True
        elif kind == Kind.NOP:
            state.pc += 1
        else:  # pragma: no cover - exhaustive over Kind
            raise SimulationError("unhandled kind %r" % kind)

        self.instret += 1
        self.mix.record(inst)
        return not state.halted

    def run(self, max_instructions=10_000_000):
        """Run until HALT or the instruction budget is exhausted."""
        remaining = max_instructions
        while remaining > 0:
            if not self.step():
                return self.state
            remaining -= 1
        if not self.state.halted:
            raise SimulationError(
                "program did not halt within %d instructions"
                % max_instructions)
        return self.state


def run_functional(program, max_instructions=10_000_000, mem_size=None):
    """Convenience: run ``program`` to completion, return the simulator."""
    simulator = FunctionalSimulator(program, mem_size=mem_size)
    simulator.run(max_instructions=max_instructions)
    return simulator
