"""Committed architectural state.

One unified register file of 64 logical registers (integer 0..31,
floating 32..63), the program counter, and a reference to main memory.
Values are normalised on write (integers wrapped to signed 64-bit, float
registers coerced to float), so two states that executed the same
committed instruction sequence compare bit-equal.
"""

from __future__ import annotations

from ..isa.registers import FP_BASE, NUM_LOGICAL_REGS, ZERO
from ..memory.main_memory import DEFAULT_MEMORY_WORDS, MainMemory
from .numeric import INT64_MAX, INT64_MIN, as_float, as_int


class ArchState:
    """Registers + PC + memory: everything inside the committed domain."""

    def __init__(self, memory=None, pc=0, mem_size=DEFAULT_MEMORY_WORDS):
        self.regs = [0] * FP_BASE + [0.0] * (NUM_LOGICAL_REGS - FP_BASE)
        self.pc = pc
        self.memory = memory if memory is not None else MainMemory(mem_size)
        self.halted = False

    def read_reg(self, index):
        """Read logical register ``index`` (r0 always reads zero)."""
        if index == ZERO:
            return 0
        return self.regs[index]

    def write_reg(self, index, value):
        """Write logical register ``index`` (writes to r0 are dropped)."""
        if index == ZERO:
            return
        if index < FP_BASE:
            # Fast path: an in-range int is its own normal form (bool is
            # excluded by the exact type check and falls through).
            if type(value) is int and INT64_MIN <= value <= INT64_MAX:
                self.regs[index] = value
            else:
                self.regs[index] = as_int(value)
        elif type(value) is float:
            self.regs[index] = value
        else:
            self.regs[index] = as_float(value)

    def copy(self):
        """Deep copy (memory included)."""
        clone = ArchState(memory=self.memory.copy(), pc=self.pc)
        clone.regs = list(self.regs)
        clone.halted = self.halted
        return clone
