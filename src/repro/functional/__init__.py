"""In-order functional simulation: the golden model and semantic kernel."""

from .checker import StateDiff, assert_states_equal, compare_states
from .kernel import (alu_value, branch_taken, control_next_pc,
                     effective_address, static_target)
from .numeric import (as_float, as_int, bits_to_float, flip_float_bit,
                      flip_int_bit, float_to_bits, s64, u64, values_equal)
from .simulator import FunctionalSimulator, MixCounters, run_functional
from .state import ArchState

__all__ = [
    "StateDiff", "assert_states_equal", "compare_states", "alu_value",
    "branch_taken", "control_next_pc", "effective_address", "static_target",
    "as_float", "as_int", "bits_to_float", "flip_float_bit", "flip_int_bit",
    "float_to_bits", "s64", "u64", "values_equal", "FunctionalSimulator",
    "MixCounters", "run_functional", "ArchState",
]
