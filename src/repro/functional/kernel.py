"""The pure semantic kernel of the ISA.

Every simulator in the package — the in-order golden model and each
redundant copy of an instruction flowing through the out-of-order
pipeline — computes results through these pure functions.  They take
operand *values* (never architectural state), which is exactly the shape
the out-of-order core needs: operands are captured at rename time from
the ROB or the committed register file.

All handlers are total: division by zero, NaNs and overflow produce
defined results rather than exceptions, because fault injection can and
does feed arbitrary values into any operation.
"""

from __future__ import annotations

import math

from ..isa.opcodes import Kind, Op
from .numeric import MASK64, s64, u64


def _div(a, b):
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return s64(quotient)


def _rem(a, b):
    if b == 0:
        return 0
    return s64(a - _div(a, b) * b)


def _fdiv(a, b):
    try:
        return a / b
    except ZeroDivisionError:
        if a == 0:
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)


def _fsqrt(a):
    if a < 0 or math.isnan(a):
        return math.nan
    return math.sqrt(a)


_VALUE_HANDLERS = {
    Op.ADD: lambda a, b, imm, pc: s64(a + b),
    Op.SUB: lambda a, b, imm, pc: s64(a - b),
    Op.AND: lambda a, b, imm, pc: s64(a & b),
    Op.OR: lambda a, b, imm, pc: s64(a | b),
    Op.XOR: lambda a, b, imm, pc: s64(a ^ b),
    Op.SLL: lambda a, b, imm, pc: s64(a << (b & 63)),
    Op.SRL: lambda a, b, imm, pc: s64(u64(a) >> (b & 63)),
    Op.SRA: lambda a, b, imm, pc: s64(a >> (b & 63)),
    Op.SLT: lambda a, b, imm, pc: 1 if a < b else 0,
    Op.SLTU: lambda a, b, imm, pc: 1 if u64(a) < u64(b) else 0,
    Op.ADDI: lambda a, b, imm, pc: s64(a + imm),
    Op.ANDI: lambda a, b, imm, pc: s64(a & imm),
    Op.ORI: lambda a, b, imm, pc: s64(a | imm),
    Op.XORI: lambda a, b, imm, pc: s64(a ^ imm),
    Op.SLTI: lambda a, b, imm, pc: 1 if a < imm else 0,
    Op.SLLI: lambda a, b, imm, pc: s64(a << (imm & 63)),
    Op.SRLI: lambda a, b, imm, pc: s64(u64(a) >> (imm & 63)),
    Op.SRAI: lambda a, b, imm, pc: s64(a >> (imm & 63)),
    Op.LUI: lambda a, b, imm, pc: s64(imm << 16),
    Op.MUL: lambda a, b, imm, pc: s64(a * b),
    Op.MULH: lambda a, b, imm, pc: s64((a * b) >> 64),
    Op.DIV: lambda a, b, imm, pc: _div(a, b),
    Op.REM: lambda a, b, imm, pc: _rem(a, b),
    Op.FADD: lambda a, b, imm, pc: a + b,
    Op.FSUB: lambda a, b, imm, pc: a - b,
    Op.FMUL: lambda a, b, imm, pc: a * b,
    Op.FDIV: lambda a, b, imm, pc: _fdiv(a, b),
    Op.FSQRT: lambda a, b, imm, pc: _fsqrt(a),
    Op.FNEG: lambda a, b, imm, pc: -a,
    Op.FABS: lambda a, b, imm, pc: abs(a),
    Op.FMOV: lambda a, b, imm, pc: a,
    Op.CVTIF: lambda a, b, imm, pc: float(a),
    Op.CVTFI: lambda a, b, imm, pc: _cvtfi(a),
    Op.FCMPEQ: lambda a, b, imm, pc: 1 if a == b else 0,
    Op.FCMPLT: lambda a, b, imm, pc: 1 if a < b else 0,
    Op.FCMPLE: lambda a, b, imm, pc: 1 if a <= b else 0,
    Op.JAL: lambda a, b, imm, pc: pc + 1,
    Op.JALR: lambda a, b, imm, pc: pc + 1,
}

_BRANCH_CONDITIONS = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: a < b,
    Op.BGE: lambda a, b: a >= b,
}


def _cvtfi(a):
    if math.isnan(a):
        return 0
    if math.isinf(a):
        return (1 << 63) - 1 if a > 0 else -(1 << 63)
    return s64(int(a))


def alu_value(op, a, b, imm, pc):
    """Result value of a value-producing opcode (ALU, FP, link writes)."""
    return _VALUE_HANDLERS[op](a, b, imm, pc)


def branch_taken(op, a, b):
    """Resolved direction of a conditional branch."""
    return _BRANCH_CONDITIONS[op](a, b)


def effective_address(base, imm):
    """Effective word address of a memory operation."""
    return u64(base + imm)


def control_next_pc(inst, a, b, pc):
    """Architecturally correct next PC of any instruction.

    ``a``/``b`` are the register operand values (ignored where unused).
    """
    op = inst.op
    kind = inst.info.kind
    if kind == Kind.BRANCH:
        if _BRANCH_CONDITIONS[op](a, b):
            return pc + 1 + inst.imm
        return pc + 1
    if kind == Kind.JUMP:
        if op == Op.J or op == Op.JAL:
            return inst.imm
        return u64(a)  # JR / JALR: indirect through rs1
    if kind == Kind.HALT:
        return pc
    return pc + 1


def static_target(inst, pc):
    """Target of a direct control instruction, or None if indirect."""
    op = inst.op
    if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
        return pc + 1 + inst.imm
    if op in (Op.J, Op.JAL):
        return inst.imm
    return None
