"""Comparing two bench entries: ``repro-ft bench --diff A B``.

A diff is a set of per-metric verdicts (DEGRADED / IMPROVED /
UNCHANGED), each backed by the seeded permutation test in
:mod:`repro.perf.stats`:

* **trials_per_sec** — optimized-path campaign throughput, the
  headline gate metric (higher is better);
* **phase_<name>_seconds** — per-phase wall time of the optimized
  path (decode / golden / simulate / classify, lower is better):
  different campaign shapes regress in different phases, so a single
  throughput number hides *where* a regression lives;
* **speedup** — the optimized/reference wall-time ratio.
  Dimensionless, so it is the only metric that survives a host
  change.

**Cross-host refusal.** Absolute wall-clock metrics from different
hosts are not comparable — the history documents a mid-stream host
change — so when the two entries' host fingerprints (or campaign
specs) differ, the diff drops to *ratio-only* mode with an explicit
warning: only ``speedup`` is tested, and it becomes the gate metric.

``--check`` gates CI: the latest entry against the nearest earlier
entry it is absolutely comparable with (same host, same spec),
falling back to its immediate predecessor in ratio-only mode.  A
DEGRADED gate metric exits 1, the same way result divergence already
fails the build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import HistoryError
from .history import PHASES, BenchEntry, BenchHistory
from .stats import (DEGRADED, DEFAULT_PERMUTATIONS, HIGHER_IS_BETTER,
                    IMPROVED, LOWER_IS_BETTER, UNCHANGED,
                    compare_samples)

#: Diff modes.
ABSOLUTE = "absolute"
RATIO_ONLY = "ratio-only"


@dataclass(frozen=True)
class DiffConfig:
    """Knobs of the statistical gate (CLI: --alpha / --min-effect)."""

    alpha: float = 0.05             # two-sided significance level
    min_effect: float = 0.05        # minimum |relative change|
    permutations: int = DEFAULT_PERMUTATIONS
    seed: int = 2001                # Monte Carlo fallback seed

    def __post_init__(self):
        if not 0 < self.alpha < 1:
            raise HistoryError("alpha must be in (0, 1), got %r"
                               % (self.alpha,))
        if self.min_effect < 0:
            raise HistoryError("min_effect must be >= 0, got %r"
                               % (self.min_effect,))


@dataclass(frozen=True)
class MetricDiff:
    """One metric's comparison between two entries."""

    metric: str
    direction: str
    baseline_mean: float
    candidate_mean: float
    rel_change: float
    p_value: Optional[float]
    verdict: str
    gate: bool                      # counts toward the exit-1 gate
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "direction": self.direction,
            "baseline_mean": round(self.baseline_mean, 6),
            "candidate_mean": round(self.candidate_mean, 6),
            "rel_change": round(self.rel_change, 6),
            "p_value": None if self.p_value is None
            else round(self.p_value, 6),
            "verdict": self.verdict,
            "gate": self.gate,
            "note": self.note,
        }


@dataclass
class BenchDiff:
    """The full comparison of two bench entries."""

    baseline: BenchEntry
    candidate: BenchEntry
    mode: str                       # ABSOLUTE or RATIO_ONLY
    config: DiffConfig
    warnings: List[str] = field(default_factory=list)
    metrics: List[MetricDiff] = field(default_factory=list)

    @property
    def degraded(self) -> List[MetricDiff]:
        return [m for m in self.metrics if m.verdict == DEGRADED]

    @property
    def improved(self) -> List[MetricDiff]:
        return [m for m in self.metrics if m.verdict == IMPROVED]

    @property
    def gate_verdict(self) -> str:
        """The diff's overall verdict, judged on gate metrics only.

        Per-phase attribution rows inform but never gate: a phase can
        shift while total throughput holds (work moving between
        phases is not a regression of the product).
        """
        gates = [m for m in self.metrics if m.gate]
        if any(m.verdict == DEGRADED for m in gates):
            return DEGRADED
        if any(m.verdict == IMPROVED for m in gates):
            return IMPROVED
        return UNCHANGED

    @property
    def ok(self) -> bool:
        return self.gate_verdict != DEGRADED

    def as_dict(self) -> dict:
        return {
            "baseline": {"index": self.baseline.index,
                         "generated_at": self.baseline.generated_at,
                         "fingerprint": self.baseline.fingerprint},
            "candidate": {"index": self.candidate.index,
                          "generated_at": self.candidate.generated_at,
                          "fingerprint": self.candidate.fingerprint},
            "mode": self.mode,
            "alpha": self.config.alpha,
            "min_effect": self.config.min_effect,
            "warnings": list(self.warnings),
            "metrics": [metric.as_dict() for metric in self.metrics],
            "verdict": self.gate_verdict,
            "ok": self.ok,
        }


def _compared(metric, direction, baseline_samples, candidate_samples,
              config, gate) -> MetricDiff:
    comparison = compare_samples(
        baseline_samples, candidate_samples, direction=direction,
        alpha=config.alpha, min_effect=config.min_effect,
        seed=config.seed, permutations=config.permutations)
    return MetricDiff(
        metric=metric, direction=direction,
        baseline_mean=comparison.baseline_mean,
        candidate_mean=comparison.candidate_mean,
        rel_change=comparison.rel_change,
        p_value=comparison.p_value, verdict=comparison.verdict,
        gate=gate, note=comparison.note)


def diff_entries(baseline: BenchEntry, candidate: BenchEntry,
                 config: Optional[DiffConfig] = None) -> BenchDiff:
    """Compare two entries; decides absolute vs ratio-only itself."""
    config = config or DiffConfig()
    warnings = []
    mode = ABSOLUTE
    if baseline.fingerprint != candidate.fingerprint:
        mode = RATIO_ONLY
        warnings.append(
            "hosts differ (%s vs %s): absolute wall-clock metrics "
            "are not comparable across machines; comparing the "
            "dimensionless optimized/reference speedup ratio only"
            % (baseline.fingerprint, candidate.fingerprint))
    if baseline.spec != candidate.spec:
        mode = RATIO_ONLY
        warnings.append(
            "campaign specs differ (e.g. quick vs full grids): "
            "absolute metrics describe different workloads; "
            "comparing the speedup ratio only")
    diff = BenchDiff(baseline=baseline, candidate=candidate,
                     mode=mode, config=config, warnings=warnings)
    if mode == ABSOLUTE:
        diff.metrics.append(_compared(
            "trials_per_sec", HIGHER_IS_BETTER,
            baseline.throughput_samples(),
            candidate.throughput_samples(), config, gate=True))
        base_phases = baseline.phase_samples()
        cand_phases = candidate.phase_samples()
        for name in PHASES:
            base = base_phases.get(name)
            cand = cand_phases.get(name)
            if not base or not cand:
                continue
            if sum(base) == 0 or sum(cand) == 0:
                # Pool runs (workers > 1) measure phases in-process
                # and read zero; an all-zero side carries no signal.
                continue
            diff.metrics.append(_compared(
                "phase_%s_seconds" % name, LOWER_IS_BETTER,
                base, cand, config, gate=False))
    diff.metrics.append(_compared(
        "speedup", HIGHER_IS_BETTER, baseline.speedup_samples(),
        candidate.speedup_samples(), config,
        gate=(mode == RATIO_ONLY)))
    return diff


def diff_refs(history: BenchHistory, baseline_ref, candidate_ref,
              config: Optional[DiffConfig] = None) -> BenchDiff:
    """Resolve two version references and diff them."""
    baseline = history.entry(baseline_ref)
    candidate = history.entry(candidate_ref)
    if baseline.index == candidate.index:
        raise HistoryError(
            "refusing to diff entry #%d against itself (%r and %r "
            "resolve to the same entry)"
            % (baseline.index, baseline_ref, candidate_ref))
    return diff_entries(baseline, candidate, config)


def find_baseline(history: BenchHistory,
                  candidate: BenchEntry) -> Optional[BenchEntry]:
    """The nearest earlier entry absolutely comparable to
    ``candidate`` (same host fingerprint and campaign spec); falls
    back to the immediate predecessor (a ratio-only diff), or None
    when ``candidate`` is the only entry."""
    for index in range(candidate.index - 1, -1, -1):
        earlier = history[index]
        if earlier.fingerprint == candidate.fingerprint \
                and earlier.spec == candidate.spec:
            return earlier
    if candidate.index > 0:
        return history[candidate.index - 1]
    return None


def check_history(history: BenchHistory,
                  config: Optional[DiffConfig] = None
                  ) -> Optional[BenchDiff]:
    """The ``--check`` gate: latest entry vs its best baseline.

    Returns the diff (``diff.ok`` drives the exit code), or None when
    the history holds fewer than two entries — nothing to regress
    against is a pass, not a failure.
    """
    if len(history) < 2:
        return None
    candidate = history[len(history) - 1]
    baseline = find_baseline(history, candidate)
    if baseline is None:
        return None
    return diff_entries(baseline, candidate, config)
