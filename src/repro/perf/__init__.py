"""``repro.perf`` — a performance version system over the bench
history (``BENCH_simulator.json``).

Perun-style VCS-like tracking of performance profiles: every
``repro-ft bench`` run appends a typed entry (schema v3: per-repeat
wall-time samples per phase, host fingerprint), and the tools here
read them back —

* :mod:`repro.perf.history` — load / validate / append / migrate the
  entry file (:class:`BenchHistory`, :class:`BenchEntry`);
* :mod:`repro.perf.stats` — deterministic seeded permutation test
  with an effect-size gate, stdlib only;
* :mod:`repro.perf.diff` — ``bench --diff A B`` / ``--check``
  verdicts (DEGRADED / IMPROVED / UNCHANGED per metric, cross-host
  absolute comparisons refused into ratio-only mode);
* :mod:`repro.perf.report` — the rendered degradation report
  (``bench --history``).
"""

from .diff import (ABSOLUTE, RATIO_ONLY, BenchDiff, DiffConfig,
                   MetricDiff, check_history, diff_entries, diff_refs,
                   find_baseline)
from .history import (MAX_HISTORY, PHASES, SCHEMA_VERSION, BenchEntry,
                      BenchHistory, host_fingerprint, validate_entry)
from .report import (format_diff_report, format_history_report,
                     history_report)
from .stats import (DEGRADED, HIGHER_IS_BETTER, IMPROVED,
                    LOWER_IS_BETTER, UNCHANGED, PermutationResult,
                    SampleComparison, compare_samples,
                    permutation_test, relative_change)

__all__ = [
    "ABSOLUTE", "RATIO_ONLY", "BenchDiff", "DiffConfig", "MetricDiff",
    "check_history", "diff_entries", "diff_refs", "find_baseline",
    "MAX_HISTORY", "PHASES", "SCHEMA_VERSION", "BenchEntry",
    "BenchHistory", "host_fingerprint", "validate_entry",
    "format_diff_report", "format_history_report", "history_report",
    "DEGRADED", "HIGHER_IS_BETTER", "IMPROVED", "LOWER_IS_BETTER",
    "UNCHANGED", "PermutationResult", "SampleComparison",
    "compare_samples", "permutation_test", "relative_change",
]
