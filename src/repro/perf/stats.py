"""Deterministic two-sample significance testing, stdlib only.

The differ needs one statistical primitive: *did this metric's
distribution actually move between two bench entries, or is the
difference scheduler noise?*  The classic answer on small samples with
no distributional assumptions is a **permutation test** on the
difference of means: under the null hypothesis the two samples come
from the same distribution, so every re-assignment of the pooled
observations to two groups is equally likely, and the p-value is the
fraction of re-assignments whose statistic is at least as extreme as
the observed one.

Design constraints, all deliberate:

* **No scipy / numpy** — exhaustive enumeration via
  :func:`itertools.combinations` when the split count is small enough
  (it almost always is at bench repeat counts), otherwise a Monte
  Carlo sample drawn from a ``random.Random(seed)`` instance.  Either
  way the result is a pure function of (samples, seed, config).
* **Order invariance** — both samples are sorted before pooling, so a
  verdict can never depend on the order repeats happened to be listed
  in a JSON file.
* **Effect-size gate** — statistical significance alone is not a
  regression: on a quiet host a 0.4% slowdown can be "significant".
  :func:`compare_samples` requires the relative change to clear
  ``min_effect`` as well before it says anything but UNCHANGED.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from math import comb
from typing import Optional, Sequence

from ..errors import HistoryError

#: Metric verdicts (per-metric and for a whole diff).
DEGRADED = "DEGRADED"
IMPROVED = "IMPROVED"
UNCHANGED = "UNCHANGED"
VERDICTS = (DEGRADED, IMPROVED, UNCHANGED)

#: Metric directions: which way is good.
HIGHER_IS_BETTER = "higher_is_better"
LOWER_IS_BETTER = "lower_is_better"

#: Exhaustive enumeration limit: below this many distinct splits the
#: test enumerates every one (exact, seed-independent); above it, a
#: seeded Monte Carlo sample stands in.
MAX_EXACT_SPLITS = 20_000

#: Monte Carlo resamples when enumeration is too large.
DEFAULT_PERMUTATIONS = 10_000

#: Minimum samples per side for the test to have any power at all.
MIN_SAMPLES = 2


@dataclass(frozen=True)
class PermutationResult:
    """Outcome of one two-sided permutation test."""

    statistic: float        # mean(candidate) - mean(baseline)
    p_value: float
    splits: int             # permutations examined
    exact: bool             # enumerated exhaustively vs Monte Carlo


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def permutation_test(baseline: Sequence[float],
                     candidate: Sequence[float],
                     seed: int = 0,
                     permutations: int = DEFAULT_PERMUTATIONS,
                     max_exact: int = MAX_EXACT_SPLITS
                     ) -> PermutationResult:
    """Two-sided permutation test on the difference of means.

    Returns the observed statistic ``mean(candidate) -
    mean(baseline)`` and the probability, under the
    same-distribution null, of a split at least that extreme.  Exact
    (and seed-independent) when ``C(n+m, n) <= max_exact``; otherwise
    a Monte Carlo estimate with the add-one correction
    ``(hits + 1) / (permutations + 1)`` so the estimate is never an
    impossible zero.
    """
    baseline = sorted(float(value) for value in baseline)
    candidate = sorted(float(value) for value in candidate)
    if not baseline or not candidate:
        raise HistoryError("permutation test needs non-empty samples")
    n_base = len(baseline)
    pooled = baseline + candidate
    total = len(pooled)
    pooled_sum = sum(pooled)
    n_cand = total - n_base
    observed = _mean(candidate) - _mean(baseline)
    # Permuted statistics that tie the observed one must count as "at
    # least as extreme"; compare against a threshold eased by a
    # relative epsilon so float summation order cannot drop ties.
    threshold = abs(observed) - 1e-12 * max(1.0, abs(observed))

    def statistic_from_baseline_sum(base_sum: float) -> float:
        return (pooled_sum - base_sum) / n_cand - base_sum / n_base

    splits = comb(total, n_base)
    if splits <= max_exact:
        hits = 0
        for chosen in itertools.combinations(range(total), n_base):
            base_sum = 0.0
            for index in chosen:
                base_sum += pooled[index]
            if abs(statistic_from_baseline_sum(base_sum)) >= threshold:
                hits += 1
        return PermutationResult(statistic=observed,
                                 p_value=hits / splits,
                                 splits=splits, exact=True)
    rng = random.Random(seed)
    scratch = list(pooled)
    hits = 0
    for _ in range(permutations):
        rng.shuffle(scratch)
        base_sum = 0.0
        for index in range(n_base):
            base_sum += scratch[index]
        if abs(statistic_from_baseline_sum(base_sum)) >= threshold:
            hits += 1
    return PermutationResult(statistic=observed,
                             p_value=(hits + 1) / (permutations + 1),
                             splits=permutations, exact=False)


def relative_change(baseline_mean: float,
                    candidate_mean: float) -> float:
    """Signed fractional change from baseline to candidate."""
    if baseline_mean == 0:
        return 0.0
    return (candidate_mean - baseline_mean) / abs(baseline_mean)


@dataclass(frozen=True)
class SampleComparison:
    """A verdict on one metric's two sample sets."""

    baseline_mean: float
    candidate_mean: float
    rel_change: float               # signed fraction
    p_value: Optional[float]        # None when underpowered
    verdict: str
    note: str = ""

    @property
    def significant(self) -> bool:
        return self.verdict in (DEGRADED, IMPROVED)


def compare_samples(baseline: Sequence[float],
                    candidate: Sequence[float],
                    direction: str = LOWER_IS_BETTER,
                    alpha: float = 0.05,
                    min_effect: float = 0.05,
                    seed: int = 0,
                    permutations: int = DEFAULT_PERMUTATIONS
                    ) -> SampleComparison:
    """Gate a metric's movement on significance AND effect size.

    ``direction`` says which sign of movement is a degradation
    (:data:`LOWER_IS_BETTER` for wall seconds, ``HIGHER_IS_BETTER``
    for throughput).  The verdict is UNCHANGED unless the permutation
    p-value reaches ``alpha`` *and* the relative change clears
    ``min_effect``; with fewer than :data:`MIN_SAMPLES` observations
    on either side the test is refused outright (``p_value=None``) —
    one point cannot witness a distribution.
    """
    if direction not in (HIGHER_IS_BETTER, LOWER_IS_BETTER):
        raise HistoryError("unknown metric direction %r" % direction)
    if not baseline or not candidate:
        raise HistoryError("compare_samples needs non-empty samples")
    baseline_mean = _mean([float(value) for value in baseline])
    candidate_mean = _mean([float(value) for value in candidate])
    change = relative_change(baseline_mean, candidate_mean)
    if len(baseline) < MIN_SAMPLES or len(candidate) < MIN_SAMPLES:
        return SampleComparison(
            baseline_mean=baseline_mean,
            candidate_mean=candidate_mean,
            rel_change=change, p_value=None, verdict=UNCHANGED,
            note="insufficient samples (%d vs %d; need >= %d per "
                 "side)" % (len(baseline), len(candidate),
                            MIN_SAMPLES))
    result = permutation_test(baseline, candidate, seed=seed,
                              permutations=permutations)
    note = ""
    if result.exact and 2.0 / result.splits > alpha:
        # The achievable two-sided p-value floor for these sample
        # sizes sits above alpha: the verdict below is honest, but
        # the caller should know more repeats are needed for power.
        note = ("alpha %.3g unreachable at these sample sizes "
                "(p-value floor %.3g); add repeats for power"
                % (alpha, 2.0 / result.splits))
    verdict = UNCHANGED
    if result.p_value <= alpha and abs(change) >= min_effect:
        worse = change > 0 if direction == LOWER_IS_BETTER \
            else change < 0
        verdict = DEGRADED if worse else IMPROVED
    return SampleComparison(
        baseline_mean=baseline_mean, candidate_mean=candidate_mean,
        rel_change=change, p_value=result.p_value, verdict=verdict,
        note=note)
