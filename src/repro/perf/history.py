"""Typed model of the bench history file (``BENCH_simulator.json``).

The file is an append-per-PR record of ``repro-ft bench`` runs.  Three
schema generations coexist:

* **v1** — a single entry: the whole file is one measurement.
* **v2** — the top level is still the latest entry (v1 consumers keep
  working) and every earlier entry is preserved, oldest first, under
  ``history``.
* **v3** — same file layout; each *entry* additionally carries
  per-repeat wall-time samples (``campaign.reference_sample_seconds``
  / ``campaign.optimized_sample_seconds``), a per-phase sample matrix
  (``campaign.optimized_phase_sample_seconds``) and a host
  ``fingerprint``, so comparisons between entries have a distribution
  to test against instead of a point.

:class:`BenchEntry` wraps one entry's raw payload **without mutating
it**: v1/v2 entries are migrated *losslessly* by synthesising
single-sample views from their point values on access, never by
rewriting the stored dict — a load → save round trip of any valid
file is byte-identical.  :class:`BenchHistory` owns load / append /
save and version-reference resolution (``latest``, ``HEAD``,
``HEAD~N`` or a plain index).

Schema validation is strict on purpose: a torn write or a hand edit
raises :class:`~repro.errors.HistoryError` naming the entry and the
field, instead of silently dropping seven PRs of trajectory.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import HistoryError

#: Current entry schema generation (see module docstring).
SCHEMA_VERSION = 3

#: The execution phases a v3 entry samples per repeat (the bench's
#: injectable phase clock; see ``repro.campaign.outcome``).
PHASES = ("decode", "golden", "simulate", "classify")

#: Safety cap on retained history entries (newest kept).
MAX_HISTORY = 100

#: ``campaign`` fields every entry generation must carry, with the
#: types accepted for each.
_REQUIRED_CAMPAIGN_FIELDS = {
    "optimized_seconds": (int, float),
    "reference_seconds": (int, float),
    "optimized_trials_per_sec": (int, float),
    "reference_trials_per_sec": (int, float),
    "speedup": (int, float),
    "trials": (int,),
}


def host_fingerprint(platform: str, python: str) -> str:
    """Short stable identity of a measurement host.

    Two entries are absolutely comparable only when their fingerprints
    match — wall seconds from different machines say nothing about the
    code.  Derived (not stored verbatim) so v1/v2 entries, which
    predate the field, fingerprint identically to a v3 entry taken on
    the same host.
    """
    digest = hashlib.sha256(
        ("%s\n%s" % (platform, python)).encode("utf-8")).hexdigest()
    return digest[:12]


def _is_sample_list(value) -> bool:
    return (isinstance(value, list) and len(value) > 0
            and all(isinstance(item, (int, float))
                    and not isinstance(item, bool)
                    and item >= 0 for item in value))


def validate_entry(payload, label="entry") -> None:
    """Raise :class:`HistoryError` unless ``payload`` is a valid entry.

    ``label`` names the entry in error messages (e.g. ``entry 3``).
    Unknown keys are always allowed — the schema only grows.
    """
    def fail(message):
        raise HistoryError("%s: %s" % (label, message))

    if not isinstance(payload, dict):
        fail("not a JSON object (torn write or hand edit?)")
    version = payload.get("version")
    if not isinstance(version, int) or isinstance(version, bool) \
            or version < 1:
        fail("missing or non-integer 'version'")
    if version > SCHEMA_VERSION:
        fail("schema version %d is newer than this tool understands "
             "(max %d)" % (version, SCHEMA_VERSION))
    if not isinstance(payload.get("generated_at"), str):
        fail("missing or non-string 'generated_at'")
    host = payload.get("host")
    if not isinstance(host, dict):
        fail("missing 'host' object")
    for key in ("platform", "python"):
        if not isinstance(host.get(key), str):
            fail("missing or non-string 'host.%s'" % key)
    engine = payload.get("engine")
    if not isinstance(engine, dict) \
            or not isinstance(engine.get("rows"), list):
        fail("missing 'engine.rows' list")
    campaign = payload.get("campaign")
    if not isinstance(campaign, dict):
        fail("missing 'campaign' object")
    for key, types in _REQUIRED_CAMPAIGN_FIELDS.items():
        value = campaign.get(key)
        if not isinstance(value, types) or isinstance(value, bool):
            fail("missing or non-numeric 'campaign.%s'" % key)
    if campaign["trials"] <= 0:
        fail("'campaign.trials' must be positive")
    for key in ("optimized_seconds", "reference_seconds"):
        if campaign[key] <= 0:
            fail("'campaign.%s' must be positive" % key)
    # v3 additions: validated whenever present so a hand-edited sample
    # list is caught even in an entry still stamped version <= 2.
    for key in ("reference_sample_seconds", "optimized_sample_seconds"):
        if key in campaign and not _is_sample_list(campaign[key]):
            fail("'campaign.%s' must be a non-empty list of "
                 "non-negative numbers" % key)
    phases = campaign.get("optimized_phase_sample_seconds")
    if phases is not None:
        if not isinstance(phases, dict) or not phases:
            fail("'campaign.optimized_phase_sample_seconds' must be a "
                 "non-empty object of sample lists")
        lengths = set()
        for name, samples in phases.items():
            if name not in PHASES:
                fail("unknown phase %r in "
                     "'campaign.optimized_phase_sample_seconds'" % name)
            if not _is_sample_list(samples):
                fail("'campaign.optimized_phase_sample_seconds.%s' "
                     "must be a non-empty list of non-negative numbers"
                     % name)
            lengths.add(len(samples))
        if len(lengths) > 1:
            fail("phase sample lists disagree on repeat count: %s"
                 % sorted(lengths))
        if "optimized_sample_seconds" in campaign and lengths and \
                lengths != {len(campaign["optimized_sample_seconds"])}:
            fail("phase sample lists and "
                 "'campaign.optimized_sample_seconds' disagree on "
                 "repeat count")
    if version >= 3:
        for key in ("reference_sample_seconds",
                    "optimized_sample_seconds"):
            if key not in campaign:
                fail("version %d entry lacks 'campaign.%s'"
                     % (version, key))


@dataclass(frozen=True)
class BenchEntry:
    """One bench measurement, wrapping its raw stored payload.

    Accessors present every schema generation uniformly: a v1/v2
    entry's point values become single-sample lists, so downstream
    code (the differ, the report) never branches on ``version``.  The
    wrapped dict is never mutated — re-serialising it reproduces the
    stored bytes.
    """

    raw: dict = field(repr=False)
    index: int = -1                 # position in the owning history

    @property
    def version(self) -> int:
        return self.raw["version"]

    @property
    def generated_at(self) -> str:
        return self.raw["generated_at"]

    @property
    def note(self) -> str:
        return self.raw.get("note", "")

    @property
    def quick(self) -> bool:
        return bool(self.raw.get("quick"))

    @property
    def campaign(self) -> dict:
        return self.raw["campaign"]

    @property
    def spec(self) -> Optional[dict]:
        return self.campaign.get("spec")

    @property
    def host(self) -> dict:
        return self.raw["host"]

    @property
    def fingerprint(self) -> str:
        stored = self.host.get("fingerprint")
        if isinstance(stored, str) and stored:
            return stored
        return host_fingerprint(self.host["platform"],
                                self.host["python"])

    @property
    def trials(self) -> int:
        return self.campaign["trials"]

    @property
    def trials_per_sec(self) -> float:
        return float(self.campaign["optimized_trials_per_sec"])

    @property
    def speedup(self) -> float:
        return float(self.campaign["speedup"])

    def optimized_samples(self) -> List[float]:
        """Per-repeat optimized-path wall seconds (>= 1 sample)."""
        stored = self.campaign.get("optimized_sample_seconds")
        if stored:
            return [float(value) for value in stored]
        return [float(self.campaign["optimized_seconds"])]

    def reference_samples(self) -> List[float]:
        """Per-repeat unoptimized-path wall seconds (>= 1 sample)."""
        stored = self.campaign.get("reference_sample_seconds")
        if stored:
            return [float(value) for value in stored]
        return [float(self.campaign["reference_seconds"])]

    def throughput_samples(self) -> List[float]:
        """Per-repeat optimized trials/second."""
        trials = self.trials
        return [trials / seconds if seconds > 0 else 0.0
                for seconds in self.optimized_samples()]

    def speedup_samples(self) -> List[float]:
        """Per-repeat reference/optimized wall-time ratios.

        The i-th reference sample is paired with the i-th optimized
        sample (run order); the ratio is dimensionless, which is what
        makes it comparable across hosts.
        """
        pairs = zip(self.reference_samples(), self.optimized_samples())
        return [ref / opt if opt > 0 else 0.0 for ref, opt in pairs]

    def phase_samples(self) -> dict:
        """Per-phase per-repeat seconds ({} when the entry has none).

        Pre-phase-clock entries (v1 and early v2) report no phases;
        later v2 entries carry a single best-run breakdown, presented
        here as one sample per phase.
        """
        stored = self.campaign.get("optimized_phase_sample_seconds")
        if stored:
            return {name: [float(value) for value in samples]
                    for name, samples in stored.items()}
        point = self.campaign.get("optimized_phase_seconds")
        if point:
            return {name: [float(value)]
                    for name, value in point.items()}
        return {}

    def label(self) -> str:
        """Short human identity: ``#4 2026-07-29 host 1a2b3c4d5e6f``."""
        prefix = "#%d " % self.index if self.index >= 0 else ""
        return "%s%s host %s" % (prefix, self.generated_at,
                                 self.fingerprint)


class BenchHistory:
    """The ordered bench entries of one history file, oldest first."""

    def __init__(self, entries=(), path=""):
        self.path = path
        self.entries = [entry if isinstance(entry, BenchEntry)
                        else BenchEntry(raw=entry, index=index)
                        for index, entry in enumerate(entries)]

    def __len__(self):
        return len(self.entries)

    def __getitem__(self, index) -> BenchEntry:
        return self.entries[index]

    def __iter__(self):
        return iter(self.entries)

    @classmethod
    def from_payload(cls, payload, path="") -> "BenchHistory":
        """Build a history from a loaded file payload.

        The payload's top level is its latest entry; earlier entries
        ride under ``history``.  Every entry is validated.  The
        payload is not retained — :meth:`to_payload` rebuilds the
        layout from the entries.
        """
        where = path or "bench history"
        if not isinstance(payload, dict):
            raise HistoryError(
                "%s: top level is not a JSON object" % where)
        latest = dict(payload)
        older = latest.pop("history", [])
        if not isinstance(older, list):
            raise HistoryError(
                "%s: 'history' is not a list" % where)
        raw_entries = list(older) + [latest]
        for position, entry in enumerate(raw_entries):
            validate_entry(entry, label="%s: entry %d"
                                        % (where, position))
        return cls(raw_entries, path=path)

    @classmethod
    def load(cls, path) -> "BenchHistory":
        """Load ``path``; a missing file is an empty history.

        Anything else that prevents a faithful load — unreadable
        bytes, invalid JSON, a foreign or torn payload — raises
        :class:`HistoryError`: overwriting or silently dropping an
        existing history would defeat regression gating.
        """
        if not os.path.exists(path):
            return cls(path=path)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise HistoryError("cannot read %s: %s" % (path, exc)) \
                from exc
        except ValueError as exc:
            raise HistoryError(
                "%s is not valid JSON (torn write or hand edit?): %s"
                % (path, exc)) from exc
        return cls.from_payload(payload, path=path)

    def append(self, payload) -> BenchEntry:
        """Validate and append a new latest entry; returns it."""
        validate_entry(payload, label="new entry")
        entry = BenchEntry(raw=payload, index=len(self.entries))
        self.entries.append(entry)
        if len(self.entries) > MAX_HISTORY:
            del self.entries[:len(self.entries) - MAX_HISTORY]
            for index, kept in enumerate(list(self.entries)):
                self.entries[index] = BenchEntry(raw=kept.raw,
                                                 index=index)
        return entry

    def to_payload(self) -> dict:
        """The file layout: latest entry on top, the rest nested.

        Entries' raw dicts are embedded untouched, so serialising the
        result with ``sort_keys`` reproduces a loaded file
        byte-for-byte.
        """
        if not self.entries:
            raise HistoryError("empty history has no payload")
        latest = dict(self.entries[-1].raw)
        latest.pop("history", None)
        older = [entry.raw for entry in self.entries[:-1]]
        if older:
            latest["history"] = older
        return latest

    def save(self, path="") -> str:
        """Write the history to ``path`` (default: where it loaded)."""
        path = path or self.path
        if not path:
            raise HistoryError("no path to save the history to")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        self.path = path
        return path

    def resolve(self, ref) -> int:
        """A version reference to an entry index.

        Accepted forms: ``latest`` / ``HEAD`` (the newest entry),
        ``HEAD~N`` (N entries before the newest), or a plain integer
        index (negative counts from the end, python-style).
        """
        if not self.entries:
            raise HistoryError("cannot resolve %r: history is empty"
                               % (ref,))
        count = len(self.entries)
        index = None
        if isinstance(ref, int) and not isinstance(ref, bool):
            index = ref
        else:
            text = str(ref).strip()
            if text.lower() in ("latest", "head"):
                index = count - 1
            elif text.upper().startswith("HEAD~"):
                suffix = text[5:]
                if not suffix.isdigit():
                    raise HistoryError(
                        "bad version reference %r: HEAD~N needs a "
                        "non-negative integer N" % (ref,))
                index = count - 1 - int(suffix)
            else:
                try:
                    index = int(text, 10)
                except ValueError:
                    raise HistoryError(
                        "bad version reference %r: expected an entry "
                        "index, 'latest', 'HEAD' or 'HEAD~N'"
                        % (ref,)) from None
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise HistoryError(
                "no entry %r: history has %d entr%s (indices 0..%d)"
                % (ref, count, "y" if count == 1 else "ies",
                   count - 1))
        return index

    def entry(self, ref) -> BenchEntry:
        """The entry a version reference names."""
        return self.entries[self.resolve(ref)]
