"""Rendering bench diffs and the whole-history degradation report.

Two consumers: a human on a terminal (``repro-ft bench --diff`` /
``--history``) and the CI artifact (the same text uploaded next to
the JSON payload).  Formatting only — every number here is computed
by :mod:`repro.perf.diff`.
"""

from __future__ import annotations

from typing import Optional

from .diff import (ABSOLUTE, BenchDiff, DiffConfig, check_history,
                   diff_entries)
from .history import BenchHistory
from .stats import DEGRADED, IMPROVED, UNCHANGED


def _format_value(metric: str, value: float) -> str:
    if metric == "trials_per_sec":
        return "%.2f/s" % value
    if metric == "speedup":
        return "%.3fx" % value
    return "%.3fs" % value


def _format_p(p_value: Optional[float]) -> str:
    if p_value is None:
        return "-"
    if p_value < 0.001:
        return "<0.001"
    return "%.3f" % p_value


def format_diff_report(diff: BenchDiff) -> str:
    """Multi-line human rendering of one diff."""
    lines = [
        "bench diff: %s  ->  %s"
        % (diff.baseline.label(), diff.candidate.label()),
        "mode: %s   alpha %.3g   min effect %.1f%%"
        % (diff.mode, diff.config.alpha,
           diff.config.min_effect * 100.0),
    ]
    for warning in diff.warnings:
        lines.append("warning: %s" % warning)
    lines.append("")
    lines.append("  %-24s %12s %12s %8s %8s  %s"
                 % ("metric", "baseline", "candidate", "change",
                    "p", "verdict"))
    for metric in diff.metrics:
        verdict = metric.verdict
        if metric.gate and verdict != UNCHANGED:
            verdict += " [gate]"
        lines.append(
            "  %-24s %12s %12s %+7.1f%% %8s  %s"
            % (metric.metric,
               _format_value(metric.metric, metric.baseline_mean),
               _format_value(metric.metric, metric.candidate_mean),
               metric.rel_change * 100.0,
               _format_p(metric.p_value), verdict))
        if metric.note:
            lines.append("  %-24s   note: %s" % ("", metric.note))
    lines.append("")
    lines.append("verdict: %s%s"
                 % (diff.gate_verdict,
                    "" if diff.ok
                    else "  (gate metric regressed; see above)"))
    return "\n".join(lines)


def history_report(history: BenchHistory,
                   config: Optional[DiffConfig] = None) -> dict:
    """The degradation report as a JSON-ready dict.

    Every entry is diffed against its immediate predecessor (the
    differ downgrades to ratio-only by itself when host or spec
    changed mid-history), plus the ``--check`` verdict of the latest
    entry against its best comparable baseline.
    """
    config = config or DiffConfig()
    rows = []
    for entry in history:
        row = {
            "index": entry.index,
            "generated_at": entry.generated_at,
            "version": entry.version,
            "fingerprint": entry.fingerprint,
            "quick": entry.quick,
            "repeats": len(entry.optimized_samples()),
            "trials_per_sec": entry.trials_per_sec,
            "speedup": entry.speedup,
            "note": entry.note,
        }
        if entry.index > 0:
            diff = diff_entries(history[entry.index - 1], entry,
                                config)
            row["vs_previous"] = {
                "mode": diff.mode,
                "verdict": diff.gate_verdict,
                "degraded": [m.metric for m in diff.degraded],
                "improved": [m.metric for m in diff.improved],
            }
        rows.append(row)
    check = check_history(history, config)
    return {
        "entries": rows,
        "alpha": config.alpha,
        "min_effect": config.min_effect,
        "check": None if check is None else check.as_dict(),
    }


def format_history_report(history: BenchHistory,
                          config: Optional[DiffConfig] = None) -> str:
    """Human rendering of the whole-history degradation report."""
    if not len(history):
        return "bench history: empty"
    config = config or DiffConfig()
    report = history_report(history, config)
    lines = [
        "bench history: %d entr%s (alpha %.3g, min effect %.1f%%)"
        % (len(history), "y" if len(history) == 1 else "ies",
           config.alpha, config.min_effect * 100.0),
        "",
        "  %3s %-25s %-12s %4s %9s %8s  %-11s %s"
        % ("#", "generated", "host", "reps", "trials/s", "speedup",
           "vs prev", "note"),
    ]
    for row in report["entries"]:
        versus = row.get("vs_previous")
        if versus is None:
            verdict = "-"
        else:
            verdict = versus["verdict"]
            if versus["mode"] != ABSOLUTE:
                verdict += " (ratio)"
        flags = " [quick]" if row["quick"] else ""
        lines.append(
            "  %3d %-25s %-12s %4d %9.2f %7.2fx  %-11s %s%s"
            % (row["index"], row["generated_at"], row["fingerprint"],
               row["repeats"], row["trials_per_sec"], row["speedup"],
               verdict, row["note"][:40], flags))
    degraded = [row for row in report["entries"]
                if row.get("vs_previous", {}).get("verdict")
                == DEGRADED]
    improved = [row for row in report["entries"]
                if row.get("vs_previous", {}).get("verdict")
                == IMPROVED]
    lines.append("")
    lines.append("degradations: %d   improvements: %d"
                 % (len(degraded), len(improved)))
    for row in degraded:
        lines.append("  entry %d degraded: %s"
                     % (row["index"],
                        ", ".join(row["vs_previous"]["degraded"])))
    check = report["check"]
    if check is not None:
        lines.append(
            "check (latest vs #%d): %s"
            % (check["baseline"]["index"], check["verdict"]))
    return "\n".join(lines)
