"""Retry policies: exponential backoff, deterministic jitter, budgets.

Everything in the campaign stack that replays work is replayable
*byte-for-byte* (trial seeds derive from trial keys), and the retry
layer follows the same discipline: jitter is derived from a hash of
``(seed, token, attempt)``, not from a live RNG, so a re-run of the
same failure schedule backs off on the same timeline.  That is what
lets the chaos harness assert recovery behaviour instead of eyeballing
it.

:class:`RetryBudget` is the token bucket that keeps retries from
amplifying an outage: each retry spends a token, tokens refill at a
fixed rate, and an empty bucket turns a retryable failure into a
surfaced one.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..errors import ConfigError


def _jitter_factor(seed: int, token: str, attempt: int,
                   jitter: float) -> float:
    """Deterministic multiplier in ``[1 - jitter, 1 + jitter]``.

    sha256 over the identifying triple, mapped to [0, 1) — the same
    construction trial seeds use, for the same reason: replayability.
    """
    if jitter <= 0.0:
        return 1.0
    digest = hashlib.sha256(
        ("retry:%d:%s:%d" % (seed, token, attempt)).encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return 1.0 + jitter * (2.0 * unit - 1.0)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule with deterministic jitter.

    ``attempts`` counts *total* tries (1 = no retries).  The delay
    before retry ``attempt`` (0-based) is::

        min(max_delay, base_delay * multiplier ** attempt) * jitter

    where jitter is a seeded hash of ``(seed, token, attempt)`` —
    pass a distinct ``token`` per retried entity (shard index, trial
    key, URL path) to decorrelate their timelines without losing
    replayability.
    """

    attempts: int = 3
    base_delay: float = 0.2
    max_delay: float = 30.0
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if not isinstance(self.attempts, int) \
                or isinstance(self.attempts, bool) or self.attempts < 1:
            raise ConfigError("attempts must be an integer >= 1, got %r"
                              % (self.attempts,))
        for name in ("base_delay", "max_delay", "multiplier", "jitter"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value < 0:
                raise ConfigError("%s must be a number >= 0, got %r"
                                  % (name, value))
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1")
        if self.jitter > 1.0:
            raise ConfigError("jitter must be within [0, 1]")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigError("seed must be an integer")

    # -- schedule ----------------------------------------------------------

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before 0-based retry ``attempt`` (deterministic)."""
        if attempt < 0:
            raise ConfigError("attempt must be >= 0")
        base = min(self.max_delay,
                   self.base_delay * self.multiplier ** attempt)
        return base * _jitter_factor(self.seed, token, attempt,
                                     self.jitter)

    def call(self, fn: Callable, *,
             retry_on: Tuple[type, ...] = (OSError,),
             token: str = "",
             sleep: Callable[[float], None] = time.sleep,
             budget: Optional["RetryBudget"] = None,
             on_retry: Optional[Callable] = None):
        """Run ``fn()`` under this policy.

        Exceptions matching ``retry_on`` are retried (up to
        ``attempts`` total tries, respecting ``budget`` when given);
        anything else — and the final failure — propagates.
        ``on_retry(attempt, exc)`` observes each retry decision.
        """
        for attempt in range(self.attempts):
            try:
                return fn()
            except retry_on as exc:
                last_try = attempt >= self.attempts - 1
                if last_try or (budget is not None
                                and not budget.try_spend()):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(self.delay(attempt, token=token))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {"attempts": self.attempts,
                "base_delay": self.base_delay,
                "max_delay": self.max_delay,
                "multiplier": self.multiplier,
                "jitter": self.jitter,
                "seed": self.seed}

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        known = {"attempts", "base_delay", "max_delay", "multiplier",
                 "jitter", "seed"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError("unknown RetryPolicy fields: %s"
                              % sorted(unknown))
        return cls(**data)


class RetryBudget:
    """Token bucket bounding retry amplification (thread-safe).

    ``capacity`` tokens to start; each :meth:`try_spend` takes one;
    tokens refill continuously at ``refill_per_second`` up to
    ``capacity``.  When the bucket is empty a would-be retry is
    refused — the caller surfaces the original failure instead of
    piling retries onto whatever is already on fire.
    """

    def __init__(self, capacity: int = 10,
                 refill_per_second: float = 0.5,
                 clock: Callable[[], float] = time.monotonic):
        if not isinstance(capacity, int) or isinstance(capacity, bool) \
                or capacity < 1:
            raise ConfigError("capacity must be an integer >= 1")
        if not isinstance(refill_per_second, (int, float)) \
                or isinstance(refill_per_second, bool) \
                or refill_per_second < 0:
            raise ConfigError("refill_per_second must be >= 0")
        self.capacity = capacity
        self.refill_per_second = float(refill_per_second)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()
        self._lock = threading.Lock()
        self.spent = 0
        self.refused = 0

    def _refill_locked(self, now: float):
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(float(self.capacity),
                           self._tokens
                           + elapsed * self.refill_per_second)

    def try_spend(self) -> bool:
        """Take one token; ``False`` (refusal) when the bucket is dry."""
        with self._lock:
            self._refill_locked(self._clock())
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                return True
            self.refused += 1
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked(self._clock())
            return self._tokens
