"""Progress-coupled heartbeat files and lease-expiry monitors.

A dead worker is easy to notice (the process table says so); a *hung*
one — SIGSTOP'd, wedged on a dead filesystem, livelocked — looks
perfectly healthy to ``is_alive()`` forever.  The fix is a lease: the
worker stamps a small JSON file whenever it makes *progress* (not
merely whenever it is scheduled — a beat loop inside a wedged worker
would happily keep beating), and the supervisor declares the worker
hung when neither the heartbeat payload nor any externally observable
progress (e.g. records landing in the worker's store) has changed for
a full lease interval.

Writes are atomic (unique tmp + ``os.replace``) so a monitor never
reads a torn heartbeat, and throttled so a hot trial loop does not
turn into an fsync storm — the stamp only needs to move once per
lease, not once per trial.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import Callable, Optional

from ..errors import ConfigError


class Heartbeat:
    """Worker-side heartbeat writer (progress-coupled, throttled).

    Call :meth:`beat` at every progress point (trial finished, pool
    wait tick); the file is only rewritten when ``interval`` has
    elapsed since the last write or when forced, so beating is cheap
    enough to sprinkle liberally.
    """

    def __init__(self, path: str, interval: float = 1.0,
                 clock: Callable[[], float] = time.monotonic):
        if not isinstance(interval, (int, float)) \
                or isinstance(interval, bool) or interval <= 0:
            raise ConfigError("heartbeat interval must be > 0")
        self.path = path
        self.interval = float(interval)
        self._clock = clock
        self._last_write = None   # type: Optional[float]
        self._seq = 0
        self._progress = None

    def beat(self, progress=None, force: bool = False):
        """Stamp the heartbeat file (throttled to ``interval``).

        ``progress`` is any JSON-serializable progress indicator
        (typically a done-trial count); a *changed* progress value is
        always worth a write even inside the throttle window — the
        monitor renews its lease on payload changes, so suppressing
        one could cost a worker its lease during a slow stretch.
        """
        now = self._clock()
        throttled = (self._last_write is not None
                     and now - self._last_write < self.interval
                     and progress == self._progress)
        if throttled and not force:
            return
        self._last_write = now
        self._seq += 1
        self._progress = progress
        payload = {"pid": os.getpid(), "seq": self._seq,
                   "time": time.time(), "progress": progress}
        tmp = "%s.tmp.%s" % (self.path, uuid.uuid4().hex[:8])
        try:
            with open(tmp, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
        except OSError:
            # A heartbeat that cannot be written must never take the
            # worker down with it — losing the lease is the correct
            # (and self-describing) failure mode here.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def clear(self):
        try:
            os.unlink(self.path)
        except OSError:
            pass


class HeartbeatMonitor:
    """Supervisor-side lease over a worker's heartbeat file.

    The lease renews whenever the heartbeat payload changes OR the
    supervisor observes external progress (pass the worker's current
    record count to :meth:`expired`) — the two channels back each
    other up: a worker whose heartbeat file landed on a dead disk is
    still covered by its store progress, and a worker making no store
    progress on a legitimately slow trial is covered by its beats.
    :meth:`expired` returning ``True`` means *neither* channel moved
    for a full ``lease`` interval: kill and restart.
    """

    def __init__(self, path: str, lease: float,
                 clock: Callable[[], float] = time.monotonic):
        if not isinstance(lease, (int, float)) \
                or isinstance(lease, bool) or lease <= 0:
            raise ConfigError("heartbeat lease must be > 0")
        self.path = path
        self.lease = float(lease)
        self._clock = clock
        # The launch itself counts as activity: a worker gets a full
        # lease to produce its first beat before it can be called hung.
        self._renewed = clock()
        self._last_payload = None
        self._last_progress = None

    def _read(self):
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def renew(self):
        self._renewed = self._clock()

    def expired(self, progress=None) -> bool:
        """Check the lease; renews on any observed activity.

        ``progress`` is the supervisor's own progress observation for
        this worker (e.g. ``len(worker.seen)``) — the external renewal
        channel.
        """
        now = self._clock()
        payload = self._read()
        if payload is not None:
            stamp = (payload.get("seq"), payload.get("progress"))
            if stamp != self._last_payload:
                self._last_payload = stamp
                self._renewed = now
        if progress is not None and progress != self._last_progress:
            self._last_progress = progress
            self._renewed = now
        return now - self._renewed > self.lease

    @property
    def idle(self) -> float:
        """Seconds since the last observed activity."""
        return max(0.0, self._clock() - self._renewed)
