"""Fault tolerance for the campaign stack, one layer up.

The paper's thesis is detect-and-recover inside the datapath; this
package reproduces the pattern at infrastructure level so the
orchestrator/service layers survive the same class of faults we
inject into the simulated machine:

* :mod:`~repro.resilience.retry` — exponential backoff with
  *deterministic* jitter (seeded, replayable — same reason trial
  seeds derive from trial keys) and a token-bucket retry budget;
* :mod:`~repro.resilience.heartbeat` — progress-coupled heartbeat
  files and lease-expiry monitors, so a *hung* worker (SIGSTOP, dead
  NFS, livelock) is as visible as a dead one;
* :mod:`~repro.resilience.circuit` — a CLOSED/OPEN/HALF_OPEN circuit
  breaker used by the service to shed adaptive extra replicates
  before failing a job outright;
* :mod:`~repro.resilience.watchdog` — :class:`PoolSupervisor`, the
  process-pool babysitter: per-trial wall-clock deadlines,
  ``BrokenProcessPool`` recovery (rebuild the pool, re-submit
  in-flight trials by key) and bounded per-trial retry accounting.

The chaos harness that validates all of this lives in
:mod:`repro.resilience.chaos`; it is deliberately NOT imported here
(it pulls in the campaign and service layers, which import this
package) — reach it as ``repro.resilience.chaos``.
"""

from .circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .heartbeat import Heartbeat, HeartbeatMonitor
from .retry import RetryBudget, RetryPolicy
from .watchdog import PoolSupervisor

__all__ = [
    "CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker",
    "Heartbeat", "HeartbeatMonitor",
    "RetryBudget", "RetryPolicy",
    "PoolSupervisor",
]
