"""Process-pool supervision: deadlines, breakage recovery, resubmit.

:class:`PoolSupervisor` wraps a ``ProcessPoolExecutor`` (or anything
with ``submit``) and owns the three failure modes a pool path must
survive:

* **worker death** — a SIGKILL'd/OOM'd pool worker breaks the whole
  executor; every in-flight future fails with ``BrokenProcessPool``.
  The supervisor rebuilds the pool and re-submits every in-flight
  trial *by key*, so nothing is lost and (trial seeds being derived
  from trial keys) the re-execution is byte-identical;
* **hung trial** — a per-trial wall-clock deadline (``trial_timeout``)
  distinguishes an infrastructure hang from the simulated ``timeout``
  outcome (which is a normal record that returns promptly).  An
  expired deadline SIGKILLs the pool's workers, which converts the
  hang into the worker-death path above;
* **retry exhaustion** — each key carries a bounded resubmit budget
  (``trial_retries``); a trial that keeps taking the pool down raises
  :class:`~repro.errors.TrialHangError` instead of looping forever.

The supervisor does not own pool lifetime policy: callers hand in
``get_pool`` / ``reset_pool`` callables, so a session-private pool and
the service's shared pool (where ``reset_pool`` must be
identity-guarded against concurrent resets by other runners) both fit.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import ConfigError, TrialHangError


@dataclass
class _Entry:
    """Book-keeping for one in-flight submission."""

    key: str
    fn: Callable
    payload: object
    context: object
    pool: object
    deadline: Optional[float]
    killed: bool = False


def kill_pool_workers(pool):
    """SIGKILL every worker process of a ``ProcessPoolExecutor``.

    Reaches into ``pool._processes`` (stdlib-private but stable since
    3.7); SIGKILL also takes down SIGSTOP'd workers, which is exactly
    the hung case this exists for.  Best-effort: a worker that exited
    meanwhile is fine.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, ValueError):
            # Worker already reaped, or its Process handle closed.
            pass


class PoolSupervisor:
    """Babysit submissions to a (rebuildable) process pool.

    ``get_pool()`` returns the current executor (creating it lazily is
    fine); ``reset_pool(broken)`` must retire *that* executor and make
    ``get_pool`` return a fresh one — when the pool is shared between
    supervisors, implement it compare-and-swap style so two concurrent
    recoveries do not kill a freshly built pool.

    Callbacks: ``on_resubmit(context, attempt)`` fires per re-submitted
    trial, ``on_failure()`` / ``on_success()`` feed a circuit breaker.
    """

    def __init__(self, get_pool: Callable, reset_pool: Callable,
                 trial_timeout: Optional[float] = None,
                 trial_retries: int = 2,
                 on_resubmit: Optional[Callable] = None,
                 on_failure: Optional[Callable] = None,
                 on_success: Optional[Callable] = None,
                 kill_workers: Callable = kill_pool_workers,
                 clock: Callable[[], float] = time.monotonic):
        if trial_timeout is not None and (
                not isinstance(trial_timeout, (int, float))
                or isinstance(trial_timeout, bool) or trial_timeout <= 0):
            raise ConfigError("trial_timeout must be > 0 (or None)")
        if not isinstance(trial_retries, int) \
                or isinstance(trial_retries, bool) or trial_retries < 0:
            raise ConfigError("trial_retries must be an integer >= 0")
        self._get_pool = get_pool
        self._reset_pool = reset_pool
        self.trial_timeout = trial_timeout
        self.trial_retries = trial_retries
        self._on_resubmit = on_resubmit
        self._on_failure = on_failure
        self._on_success = on_success
        self._kill_workers = kill_workers
        self._clock = clock
        self._entries: Dict[object, _Entry] = {}   # future -> entry
        self._attempts: Dict[str, int] = {}        # key -> resubmits
        #: Pool rebuilds performed (worker death or hang recovery).
        self.recoveries = 0
        #: Deadline expiries observed (hung-trial kills).
        self.hangs = 0

    # -- submission --------------------------------------------------------

    @property
    def inflight(self) -> int:
        return len(self._entries)

    def submit(self, key: str, fn: Callable, payload,
               context=None):
        """Submit one trial; survives racing into a just-broken pool."""
        for _ in range(3):
            pool = self._get_pool()
            try:
                future = pool.submit(fn, payload)
            except (BrokenProcessPool, RuntimeError):
                # Another supervisor's recovery (or a worker death we
                # have not collected yet) broke/shut this pool between
                # get and submit.  Swap it and try again — the trial
                # never ran, so this is not a retry-budget event.
                self._reset_pool(pool)
                continue
            deadline = None
            if self.trial_timeout is not None:
                deadline = self._clock() + self.trial_timeout
            self._entries[future] = _Entry(
                key=key, fn=fn, payload=payload, context=context,
                pool=pool, deadline=deadline)
            return future
        raise TrialHangError(
            "could not submit trial %s: the process pool keeps "
            "breaking faster than it can be rebuilt" % (key,))

    # -- collection --------------------------------------------------------

    def wait(self, timeout: Optional[float] = None):
        """Block for completions; return ``[(context, result), ...]``.

        Handles pool breakage and deadline expiry internally (both end
        in rebuild + resubmit, bounded by ``trial_retries``); real
        exceptions raised by the submitted function propagate to the
        caller unchanged, exactly like ``Future.result()`` would.
        """
        if not self._entries:
            return []
        block = timeout
        nearest = min((entry.deadline for entry in
                       self._entries.values()
                       if entry.deadline is not None), default=None)
        if nearest is not None:
            until = max(0.0, nearest - self._clock())
            block = until if block is None else min(block, until)
        done, _ = futures_wait(list(self._entries),
                               timeout=block,
                               return_when=FIRST_COMPLETED)
        results = []
        broken = []
        for future in done:
            entry = self._entries.pop(future)
            try:
                result = future.result()
            except BrokenProcessPool:
                broken.append(entry)
                continue
            except Exception:
                if self._on_failure is not None:
                    self._on_failure()
                raise
            if self._on_success is not None:
                self._on_success()
            results.append((entry.context, result))
        if broken:
            self._recover(broken)
        elif not results:
            self._check_deadlines()
        return results

    def drain(self):
        """Collect every remaining in-flight result (with recovery)."""
        results = []
        while self._entries:
            results.extend(self.wait(timeout=1.0))
        return results

    def _check_deadlines(self):
        """SIGKILL pools owning expired futures; breakage follows."""
        now = self._clock()
        expired_pools = {}
        for entry in self._entries.values():
            if entry.deadline is not None and entry.deadline <= now \
                    and not entry.killed:
                entry.killed = True
                self.hangs += 1
                expired_pools[id(entry.pool)] = entry.pool
        # Kill each affected pool's workers once; the pending futures
        # then fail with BrokenProcessPool within the next wait() and
        # take the normal recovery path.
        for pool in expired_pools.values():
            self._kill_workers(pool)

    def _recover(self, entries):
        """Rebuild after breakage and resubmit the casualties by key."""
        if self._on_failure is not None:
            self._on_failure()
        for pool in {id(entry.pool): entry.pool
                     for entry in entries}.values():
            self._reset_pool(pool)
        self.recoveries += 1
        for entry in entries:
            attempt = self._attempts.get(entry.key, 0) + 1
            if attempt > self.trial_retries:
                raise TrialHangError(
                    "trial %s failed %d consecutive pool "
                    "recoveries (budget %d): the trial itself is "
                    "taking the worker down or never finishing "
                    "within its deadline" % (entry.key, attempt - 1,
                                             self.trial_retries))
            self._attempts[entry.key] = attempt
            self.submit(entry.key, entry.fn, entry.payload,
                        context=entry.context)
            if self._on_resubmit is not None:
                self._on_resubmit(entry.context, attempt)
