"""Seeded chaos harness for the campaign stack (``repro-ft chaos``).

The fault model the resilience layer claims to survive — worker
SIGKILLs, hung (SIGSTOPped) workers, torn store writes — is driven
here *for real* against live ``orchestrate`` and service runs, and the
outcome is checked against the stack's core promise: per-trial seeds
derive from content-hashed keys, so any amount of killing and
re-running must produce **byte-identical merged records** to an
undisturbed run.

Two targets:

* :func:`run_orchestrate_chaos` — a multi-shard
  :class:`~repro.campaign.orchestrator.CampaignOrchestrator` run with
  heartbeat liveness on, disturbed by a seeded schedule of worker
  SIGKILLs, worker SIGSTOPs (the orchestrator must *detect* these via
  heartbeat lease expiry — a stopped process never exits on its own)
  and torn shard-store appends (a partial JSON fragment with no
  newline, exactly what a power cut mid-``write`` leaves).
* :func:`run_service_chaos` — a :class:`~repro.service.backend.
  ServiceBackend` executing pooled jobs for two tenants while the
  schedule SIGKILLs and SIGSTOPs shared-pool workers; every job must
  still reach ``done`` (per-trial deadlines + pool rebuild + resubmit
  by key), with records identical to a plain in-process session and a
  sane fairness ledger.

Schedules are deterministic per seed (op kinds and fire times from
``random.Random(seed)``); the *victims* depend on which workers are
alive when an op fires, so runs are reproducible in shape, not in
wall-clock interleaving — the point of the invariants is that the
outcome must not depend on the interleaving at all.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError
from .retry import RetryPolicy

KILL = "kill"              #: SIGKILL a live worker process.
STALL = "stall"            #: SIGSTOP a live worker process (a hang).
TORN = "torn"              #: append a torn fragment to a store file.
OP_KINDS = (KILL, STALL, TORN)

#: The fragment a torn op appends: valid-looking JSON cut mid-string,
#: no trailing newline — what a writer killed mid-``write(2)`` leaves.
TORN_FRAGMENT = '{"key": "chaos-torn", "outcome": "inco'

#: The grid chaos runs disturb when the caller brings no spec: big
#: enough to stay in flight for a few seconds of scheduled mayhem,
#: small enough for a CI smoke job.
DEFAULT_CHAOS_SPEC = {
    "name": "chaos",
    "workloads": ["gcc"],
    "models": ["SS-1", "SS-2"],
    "rates_per_million": [0.0, 3000.0],
    "replicates": 12,
    "instructions": 5000,
}


@dataclass
class ChaosOp:
    """One scheduled disturbance."""

    at: float                       #: seconds after the run starts
    kind: str                       #: KILL / STALL / TORN
    applied: bool = False
    detail: str = ""                #: victim pid / store path

    def as_dict(self) -> dict:
        return {"at": round(self.at, 3), "kind": self.kind,
                "applied": self.applied, "detail": self.detail}


class ChaosSchedule:
    """A seed-deterministic list of :class:`ChaosOp`."""

    def __init__(self, ops: List[ChaosOp]):
        self.ops = sorted(ops, key=lambda op: op.at)

    @classmethod
    def generate(cls, seed: int, kills: int = 1, stalls: int = 1,
                 torn: int = 1, horizon: float = 2.5) -> "ChaosSchedule":
        """``kills + stalls + torn`` ops at seeded times within
        ``horizon`` seconds of the run start (ops whose victims are
        not ready yet fire as soon as one appears)."""
        if min(kills, stalls, torn) < 0:
            raise ConfigError("chaos op counts must be >= 0")
        if horizon <= 0:
            raise ConfigError("chaos horizon must be > 0")
        rng = random.Random(seed)
        ops = []
        for kind, count in ((KILL, kills), (STALL, stalls),
                            (TORN, torn)):
            for _ in range(count):
                ops.append(ChaosOp(at=rng.uniform(0.2, horizon),
                                   kind=kind))
        return cls(ops)

    def counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in OP_KINDS}
        for op in self.ops:
            counts[op.kind] += 1
        return counts

    def applied_counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in OP_KINDS}
        for op in self.ops:
            if op.applied:
                counts[op.kind] += 1
        return counts

    def all_applied(self) -> bool:
        return all(op.applied for op in self.ops)


class _Injector(threading.Thread):
    """Replays a schedule against a live run.

    Subclasses provide the victim surface; each op waits at its fire
    time until a victim exists (or the run ends), so a schedule is
    never silently skipped just because the run was briefly between
    workers.
    """

    #: How long an op keeps waiting for a victim before giving up.
    VICTIM_WAIT = 10.0

    def __init__(self, schedule: ChaosSchedule, seed: int):
        super().__init__(name="chaos-injector", daemon=True)
        self.schedule = schedule
        self.rng = random.Random(seed ^ 0x5EED)
        self.stop = threading.Event()

    def run(self):
        start = time.monotonic()
        for op in self.schedule.ops:
            while time.monotonic() - start < op.at:
                if self.stop.wait(timeout=0.02):
                    return
            deadline = time.monotonic() + self.VICTIM_WAIT
            while not op.applied and time.monotonic() < deadline:
                if self._apply(op):
                    op.applied = True
                    break
                if self.stop.wait(timeout=0.05):
                    return

    def finish(self, timeout: float = 5.0):
        self.stop.set()
        self.join(timeout=timeout)

    # -- subclass surface --------------------------------------------------

    def _apply(self, op: ChaosOp) -> bool:
        raise NotImplementedError

    @staticmethod
    def _signal(pid: int, signum) -> bool:
        try:
            os.kill(pid, signum)
        except (ProcessLookupError, OSError):
            return False
        return True


class _OrchestrateInjector(_Injector):
    """Disturbs a :class:`CampaignOrchestrator`'s shard workers."""

    def __init__(self, orchestrator, schedule: ChaosSchedule,
                 seed: int):
        super().__init__(schedule, seed)
        self.orchestrator = orchestrator

    def _apply(self, op: ChaosOp) -> bool:
        if op.kind == TORN:
            paths = [worker.store.path
                     for worker in self.orchestrator.workers
                     if hasattr(worker.store, "path")
                     and os.path.exists(worker.store.path)]
            if not paths:
                return False
            path = self.rng.choice(paths)
            try:
                with open(path, "a") as handle:
                    handle.write(TORN_FRAGMENT)
                    handle.flush()
            except OSError:
                return False
            op.detail = path
            return True
        victims = [worker for worker in self.orchestrator.workers
                   if worker.alive and worker.pid]
        if not victims:
            return False
        victim = self.rng.choice(victims)
        signum = signal.SIGKILL if op.kind == KILL else signal.SIGSTOP
        if not self._signal(victim.pid, signum):
            return False
        op.detail = "shard %d (pid %d)" % (victim.index, victim.pid)
        return True


class _ServiceInjector(_Injector):
    """Disturbs a :class:`ServiceBackend`'s shared pool workers."""

    def __init__(self, backend, schedule: ChaosSchedule, seed: int):
        super().__init__(schedule, seed)
        self.backend = backend

    def _pool_pids(self) -> List[int]:
        with self.backend._pool_lock:
            pool = self.backend._pool
        if pool is None:
            return []
        processes = getattr(pool, "_processes", None) or {}
        return [process.pid for process in list(processes.values())
                if process.is_alive() and process.pid]

    def _busy(self) -> bool:
        return any(runner.inflight
                   for runner in self.backend.active_runners())

    def _apply(self, op: ChaosOp) -> bool:
        if op.kind == TORN:
            # Service chaos keeps to process faults: job stores are
            # appended from this very process, so a torn injection can
            # interleave with a live append and eat a record — a fault
            # *outside* the torn-tail model (a real writer tears only
            # its own final line).  FlakyStore unit tests cover the
            # store-level torn/refused paths instead.
            op.detail = "skipped for service target"
            return True
        if not self._busy():
            return False
        pids = self._pool_pids()
        if not pids:
            return False
        pid = self.rng.choice(pids)
        signum = signal.SIGKILL if op.kind == KILL else signal.SIGSTOP
        if not self._signal(pid, signum):
            return False
        op.detail = "pool worker pid %d" % pid
        return True


# -- invariants --------------------------------------------------------------

def _records_blob(records) -> str:
    """Canonical byte form of a record set (order-free)."""
    return json.dumps(sorted(records, key=lambda r: r["key"]),
                      sort_keys=True)


def _clean_records(spec) -> List[dict]:
    """The undisturbed truth: one in-process serial session run."""
    from ..campaign import CampaignSession
    return CampaignSession(spec).run().records


# -- targets -----------------------------------------------------------------

def run_orchestrate_chaos(store_dir: str, seed: int = 0,
                          shards: int = 2, kills: int = 1,
                          stalls: int = 1, torn: int = 1,
                          heartbeat_lease: float = 1.5,
                          spec: Optional[dict] = None,
                          max_restarts: int = 8,
                          schedule: Optional[ChaosSchedule] = None
                          ) -> dict:
    """A chaos-disturbed orchestrate run checked against a clean one.

    Invariants asserted in the report (``ok`` is their conjunction):
    every scheduled op applied, merged records byte-identical to the
    undisturbed run, and — when the schedule stalls a worker — at
    least one hang detected and recovered via heartbeat lease expiry.
    """
    from ..campaign import CampaignOrchestrator, CampaignSpec
    spec = CampaignSpec.from_dict(dict(spec or DEFAULT_CHAOS_SPEC))
    clean = _clean_records(spec)
    orchestrator = CampaignOrchestrator(
        spec, shards=shards, store_dir=store_dir,
        poll_interval=0.05, max_restarts=max_restarts,
        restart_backoff=RetryPolicy(attempts=1, base_delay=0.1,
                                    max_delay=1.0, jitter=0.0),
        min_uptime=0.5,
        heartbeat_lease=heartbeat_lease,
        heartbeat_interval=0.2)
    if schedule is None:
        schedule = ChaosSchedule.generate(seed, kills=kills,
                                          stalls=stalls, torn=torn)
    stalls = schedule.counts()[STALL]
    injector = _OrchestrateInjector(orchestrator, schedule, seed)
    injector.start()
    error = ""
    try:
        result = orchestrator.run()
        records = result.records
    except Exception as exc:          # noqa: BLE001 — the report is
        # the harness output; a crashed run is a failed invariant,
        # not a crashed harness.
        error = "%s: %s" % (type(exc).__name__, exc)
        records = []
    finally:
        injector.finish()
    identical = _records_blob(records) == _records_blob(clean)
    hang_recovered = stalls == 0 or orchestrator.total_hung >= 1
    ok = (not error and schedule.all_applied() and identical
          and hang_recovered)
    return {
        "target": "orchestrate",
        "seed": seed,
        "shards": shards,
        "ops": [op.as_dict() for op in schedule.ops],
        "ops_applied": schedule.applied_counts(),
        "records": len(records),
        "records_expected": len(clean),
        "identical_to_clean": identical,
        "hung_detected": orchestrator.total_hung,
        "hang_recovered": hang_recovered,
        "restarts": orchestrator.total_restarts,
        "error": error,
        "ok": ok,
    }


def run_service_chaos(data_dir: str, seed: int = 0, kills: int = 1,
                      stalls: int = 1, jobs: int = 2, slots: int = 2,
                      trial_timeout: float = 3.0,
                      runner_lease: float = 3.0,
                      spec: Optional[dict] = None,
                      deadline: float = 300.0,
                      schedule: Optional[ChaosSchedule] = None
                      ) -> dict:
    """Chaos against the service's shared pool.

    Submits ``jobs`` pooled jobs across two tenants, SIGKILLs and
    SIGSTOPs pool workers per the schedule, and asserts: no job lost
    (all reach ``done``), every job's stored records byte-identical to
    a plain in-process run of its spec, fairness ledger consistent.
    """
    from ..campaign import CampaignSession, CampaignSpec
    from ..service.backend import ServiceBackend
    from ..service.jobs import DONE
    spec_dict = dict(spec or DEFAULT_CHAOS_SPEC)
    clean_blob = _records_blob(
        _clean_records(CampaignSpec.from_dict(dict(spec_dict))))
    backend = ServiceBackend(
        data_dir, slots=slots,
        trial_timeout=trial_timeout,
        trial_retries=6,
        runner_lease=runner_lease,
        poll_interval=0.05)
    if schedule is None:
        schedule = ChaosSchedule.generate(seed, kills=kills,
                                          stalls=stalls, torn=0)
    injector = _ServiceInjector(backend, schedule, seed)
    error = ""
    submitted = []
    try:
        for index in range(jobs):
            submitted.append(backend.submit(
                "tenant-%d" % (index % 2), dict(spec_dict)))
        injector.start()
        limit = time.monotonic() + deadline
        while time.monotonic() < limit:
            if all(backend.job(job.id).terminal for job in submitted):
                break
            time.sleep(0.1)
    except Exception as exc:          # noqa: BLE001 — see above
        error = "%s: %s" % (type(exc).__name__, exc)
    finally:
        injector.finish()
        backend.close(drain_timeout=10.0)
    states = {job.id: backend.job(job.id).state for job in submitted}
    all_done = bool(submitted) \
        and all(state == DONE for state in states.values())
    mismatched = []
    for job in submitted:
        stored = job.store(backend.data_dir).load()
        deduped = {record["key"]: record for record in stored}
        if _records_blob(list(deduped.values())) != clean_blob:
            mismatched.append(job.id)
    fairness = backend.scheduler.report()
    ledger_ok = all(
        entry["busy_seconds"] >= 0.0
        and entry["trials_executed"] > 0
        for entry in fairness["tenants"].values()) \
        if fairness["tenants"] else False
    ok = (not error and all_done and not mismatched
          and schedule.all_applied() and ledger_ok)
    return {
        "target": "service",
        "seed": seed,
        "jobs": states,
        "ops": [op.as_dict() for op in schedule.ops],
        "ops_applied": schedule.applied_counts(),
        "all_done": all_done,
        "records_mismatched": mismatched,
        "hung_runners": backend.hung_runners,
        "fairness": fairness,
        "ledger_ok": ledger_ok,
        "error": error,
        "ok": ok,
    }


# -- CLI entry ---------------------------------------------------------------

def format_chaos_report(report: dict) -> str:
    lines = ["chaos %s: %s" % (report["target"],
                               "OK" if report["ok"] else "FAILED")]
    for op in report["ops"]:
        lines.append("  t+%.2fs %-5s %s  %s"
                     % (op["at"], op["kind"],
                        "applied" if op["applied"] else "NOT APPLIED",
                        op["detail"]))
    if report["target"] == "orchestrate":
        lines.append("  records %d/%d, identical to clean run: %s"
                     % (report["records"], report["records_expected"],
                        report["identical_to_clean"]))
        lines.append("  hung workers detected: %d, shard restarts: %d"
                     % (report["hung_detected"], report["restarts"]))
    else:
        lines.append("  jobs: %s" % ", ".join(
            "%s=%s" % (job_id, state)
            for job_id, state in sorted(report["jobs"].items())))
        lines.append("  records identical for every job: %s"
                     % (not report["records_mismatched"]))
        lines.append("  hung-runner recoveries: %d"
                     % report["hung_runners"])
    if report.get("error"):
        lines.append("  error: %s" % report["error"])
    return "\n".join(lines)


def run_chaos(args) -> int:
    """``repro-ft chaos`` entry point."""
    import sys
    spec = None
    if args.spec:
        with open(args.spec) as handle:
            spec = json.load(handle)
    targets = ("orchestrate", "service") if args.target == "both" \
        else (args.target,)
    reports = []
    for target in targets:
        directory = os.path.join(args.dir, target) \
            if len(targets) > 1 else args.dir
        if target == "orchestrate":
            reports.append(run_orchestrate_chaos(
                directory, seed=args.seed, shards=args.shards,
                kills=args.kills, stalls=args.stalls, torn=args.torn,
                heartbeat_lease=args.heartbeat_lease, spec=spec))
        else:
            reports.append(run_service_chaos(
                directory, seed=args.seed, kills=args.kills,
                stalls=args.stalls, jobs=args.jobs, slots=args.slots,
                trial_timeout=args.trial_timeout,
                runner_lease=args.runner_lease, spec=spec))
    if args.json:
        payload = reports[0] if len(reports) == 1 \
            else dict(zip(targets, reports))
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(format_chaos_report(report))
    failed = not all(report["ok"] for report in reports)
    if failed and not args.json:
        print("chaos: invariants violated", file=sys.stderr)
    return 1 if failed else 0
