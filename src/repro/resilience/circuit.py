"""A small circuit breaker (CLOSED / OPEN / HALF_OPEN, thread-safe).

The service uses one breaker per job runner to decide when to stop
paying for *optional* work: consecutive infrastructure failures trip
the breaker, and an OPEN breaker tells the runner to shed adaptive
extra replicates (finish the seed replicates, skip the statistical
gravy) instead of burning its whole retry budget and failing the job.
After ``recovery_time`` the breaker admits one probe (HALF_OPEN); a
success closes it, another failure re-opens the clock.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..errors import ConfigError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures.

    * CLOSED — everything allowed; failures count up, a success
      resets the count.
    * OPEN — :meth:`allow` refuses until ``recovery_time`` elapses.
    * HALF_OPEN — one probe is allowed through; its outcome decides
      (success -> CLOSED, failure -> OPEN with a fresh clock).
    """

    def __init__(self, failure_threshold: int = 3,
                 recovery_time: float = 10.0,
                 clock: Callable[[], float] = time.monotonic):
        if not isinstance(failure_threshold, int) \
                or isinstance(failure_threshold, bool) \
                or failure_threshold < 1:
            raise ConfigError(
                "failure_threshold must be an integer >= 1")
        if not isinstance(recovery_time, (int, float)) \
                or isinstance(recovery_time, bool) or recovery_time < 0:
            raise ConfigError("recovery_time must be >= 0")
        self.failure_threshold = failure_threshold
        self.recovery_time = float(recovery_time)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: Total trips to OPEN over the breaker's lifetime.
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._advance_locked()

    def _advance_locked(self) -> str:
        """Lock held: apply the recovery-time transition."""
        if self._state == OPEN and not self._probing \
                and self._clock() - self._opened_at \
                >= self.recovery_time:
            self._state = HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May optional work proceed right now?

        In HALF_OPEN exactly one caller gets ``True`` (the probe)
        until its outcome is recorded.
        """
        with self._lock:
            state = self._advance_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self):
        with self._lock:
            self._failures = 0
            self._probing = False
            self._state = CLOSED

    def record_failure(self):
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._state == HALF_OPEN \
                    or self._failures >= self.failure_threshold:
                if self._state != OPEN:
                    self.trips += 1
                self._state = OPEN
                self._opened_at = self._clock()
