"""Single-bit even parity, the cheapest information-redundancy scheme.

Parity detects (but cannot correct) any odd number of bit flips.  It is
included for the coverage-comparison experiments: structures such as the
fetch queue could be parity- instead of ECC-protected at lower cost if a
detected error can simply trigger a refetch.
"""

from __future__ import annotations


def parity_bit(value):
    """Even-parity bit over the 64-bit value."""
    return bin(value & ((1 << 64) - 1)).count("1") & 1


def encode(value):
    """Return ``(value, parity)`` for storage."""
    value &= (1 << 64) - 1
    return value, parity_bit(value)


def check(value, parity):
    """True if the stored parity still matches the value."""
    return parity_bit(value) == parity
