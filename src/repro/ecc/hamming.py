"""Hamming SECDED codec for 64-bit words (a (72,64) code).

The paper assumes "all committed program states (including register
files, caches, main memory and TLBs) are ECC protected" and that the
rename map table "must be protected by ECC" (Section 3.2).  This module
implements the actual code so that assumption is a demonstrated
capability, not hand-waving: single-bit errors are corrected, double-bit
errors are detected.

Layout: the classic Hamming construction over codeword bit positions
1..71 where power-of-two positions hold check bits and the remaining 64
positions hold data bits, plus an overall even-parity bit at position 0
to extend SEC into SECDED.
"""

from __future__ import annotations

import enum

from ..errors import SimulationError

DATA_BITS = 64
#: Hamming check bits (positions 1, 2, 4, 8, 16, 32, 64).
CHECK_BITS = 7
#: Total codeword length including the overall parity bit at position 0.
CODEWORD_BITS = 72

_CHECK_POSITIONS = tuple(1 << i for i in range(CHECK_BITS))
_DATA_POSITIONS = tuple(
    pos for pos in range(1, CODEWORD_BITS)
    if pos not in frozenset(_CHECK_POSITIONS))

assert len(_DATA_POSITIONS) == DATA_BITS


class DecodeStatus(enum.Enum):
    """Outcome of decoding one codeword."""

    CLEAN = "clean"                  # no error
    CORRECTED = "corrected"          # single-bit error, repaired
    UNCORRECTABLE = "uncorrectable"  # double-bit error, detected only


class UncorrectableError(SimulationError):
    """Raised when a protected structure hits a double-bit error."""


def encode(data):
    """Encode a 64-bit unsigned value into a 72-bit SECDED codeword."""
    data &= (1 << DATA_BITS) - 1
    codeword = 0
    for index, position in enumerate(_DATA_POSITIONS):
        if (data >> index) & 1:
            codeword |= 1 << position
    syndrome = 0
    scan = codeword
    while scan:
        low = scan & -scan
        syndrome ^= low.bit_length() - 1
        scan ^= low
    for i in range(CHECK_BITS):
        if (syndrome >> i) & 1:
            codeword |= 1 << _CHECK_POSITIONS[i]
    # Overall even parity over positions 1..71, stored at position 0.
    if _popcount(codeword) & 1:
        codeword |= 1
    return codeword


def _popcount(value):
    return bin(value).count("1")


def _syndrome(codeword):
    syndrome = 0
    scan = codeword >> 1
    position = 1
    while scan:
        if scan & 1:
            syndrome ^= position
        scan >>= 1
        position += 1
    return syndrome


def decode(codeword):
    """Decode a codeword.

    Returns ``(data, status)``; corrects single-bit errors (including
    errors in the check bits and the parity bit itself) and flags
    double-bit errors as :data:`DecodeStatus.UNCORRECTABLE`.
    """
    if not 0 <= codeword < (1 << CODEWORD_BITS):
        raise ValueError("codeword out of 72-bit range")
    syndrome = _syndrome(codeword)
    parity_ok = (_popcount(codeword) & 1) == 0
    if syndrome == 0 and parity_ok:
        return _extract(codeword), DecodeStatus.CLEAN
    if not parity_ok:
        # Odd number of flipped bits: assume exactly one and correct it.
        if syndrome == 0:
            corrected = codeword ^ 1  # the parity bit itself flipped
        else:
            corrected = codeword ^ (1 << syndrome)
        return _extract(corrected), DecodeStatus.CORRECTED
    # Even number of bit flips (>= 2) with non-zero syndrome.
    return _extract(codeword), DecodeStatus.UNCORRECTABLE


def _extract(codeword):
    data = 0
    for index, position in enumerate(_DATA_POSITIONS):
        if (codeword >> position) & 1:
            data |= 1 << index
    return data
