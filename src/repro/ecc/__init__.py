"""Information redundancy: Hamming SECDED, parity, protected storage."""

from .hamming import (CODEWORD_BITS, DATA_BITS, DecodeStatus,
                      UncorrectableError, decode, encode)
from .parity import check as parity_check
from .parity import encode as parity_encode
from .parity import parity_bit
from .protected import ProtectedArray, ProtectedRegister

__all__ = [
    "CODEWORD_BITS", "DATA_BITS", "DecodeStatus", "UncorrectableError",
    "decode", "encode", "parity_check", "parity_encode", "parity_bit",
    "ProtectedArray", "ProtectedRegister",
]
