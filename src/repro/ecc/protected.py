"""ECC-protected storage wrappers.

:class:`ProtectedArray` stores 64-bit words as Hamming SECDED codewords.
Reads transparently correct single-bit upsets (counting them) and raise
:class:`~repro.ecc.hamming.UncorrectableError` on double-bit upsets.
Used to demonstrate the paper's assumption that committed state (register
file, rename map, caches) can be protected by information redundancy.
"""

from __future__ import annotations

import random

from .hamming import (CODEWORD_BITS, DecodeStatus, UncorrectableError,
                      decode, encode)


class ProtectedArray:
    """Fixed-size array of 64-bit words with SECDED protection."""

    def __init__(self, size, fill=0):
        if size <= 0:
            raise ValueError("size must be positive")
        self._codewords = [encode(fill)] * size
        self.corrected_errors = 0
        self.detected_uncorrectable = 0

    def __len__(self):
        return len(self._codewords)

    def read(self, index):
        """Read (and scrub) the word at ``index``."""
        data, status = decode(self._codewords[index])
        if status is DecodeStatus.CORRECTED:
            self.corrected_errors += 1
            self._codewords[index] = encode(data)  # scrub on read
        elif status is DecodeStatus.UNCORRECTABLE:
            self.detected_uncorrectable += 1
            raise UncorrectableError(
                "uncorrectable (double-bit) error at index %d" % index)
        return data

    def write(self, index, value):
        """Write a 64-bit word at ``index``."""
        self._codewords[index] = encode(value)

    def inject_bit_flip(self, index, bit):
        """Flip one raw codeword bit (models a particle strike)."""
        if not 0 <= bit < CODEWORD_BITS:
            raise ValueError("bit must be in [0, %d)" % CODEWORD_BITS)
        self._codewords[index] ^= 1 << bit

    def inject_random_flips(self, index, count, rng=None):
        """Flip ``count`` distinct random bits of one codeword.

        Without an explicit ``rng`` the draw is seeded from the index
        so repeated campaigns stay replayable.
        """
        rng = rng or random.Random(index)
        bits = rng.sample(range(CODEWORD_BITS), count)
        for bit in bits:
            self.inject_bit_flip(index, bit)
        return bits


class ProtectedRegister:
    """A single SECDED-protected 64-bit register.

    Models the ECC-protected *committed next-PC* register of Section 3.2,
    which anchors PC-continuity checking and rewind-based recovery.
    """

    def __init__(self, value=0):
        self._codeword = encode(value)
        self.corrected_errors = 0

    def read(self):
        data, status = decode(self._codeword)
        if status is DecodeStatus.CORRECTED:
            self.corrected_errors += 1
            self._codeword = encode(data)
        elif status is DecodeStatus.UNCORRECTABLE:
            raise UncorrectableError("uncorrectable error in register")
        return data

    def write(self, value):
        self._codeword = encode(value)

    def inject_bit_flip(self, bit):
        self._codeword ^= 1 << (bit % CODEWORD_BITS)
