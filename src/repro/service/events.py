"""Per-job progress event log: the durable source of the SSE stream.

Runners append one JSON line per event — the
:meth:`~repro.campaign.api.CampaignEvent.to_dict` wire form plus a
``seq`` (1-based, monotonic per job) and a wall-clock ``ts`` — and the
HTTP server tails the file to serve ``text/event-stream`` clients.
Writing a file instead of an in-memory bus buys three properties at
once: SSE replay for late subscribers, a progress stream that survives
service restarts, and zero cross-thread plumbing between the executor
threads and the asyncio loop.

The log is advisory (the result store is the durable truth), so
appends flush but do not fsync; a SIGKILL can tear the final line,
which :meth:`EventLog.read` skips exactly like the JSONL result store
skips its torn tails.  A fresh appender starts after the last intact
``seq``, so sequence numbers stay monotonic across restarts.

Job lifecycle markers (``job_queued`` / ``job_started`` /
``job_resumed`` / ``job_finished`` / ``job_failed`` /
``job_cancelled`` / ``job_interrupted``) share the stream with the
campaign's own ``trial_*`` / ``cell_*`` / ``shard_*`` /
``campaign_finished`` events; they carry ``job``, ``tenant`` and
``state`` fields instead of trial progress.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import List, Optional, Tuple

from ..campaign import CampaignEvent

#: Lifecycle event kinds the service adds to the campaign protocol.
JOB_QUEUED = "job_queued"
JOB_STARTED = "job_started"
JOB_RESUMED = "job_resumed"
JOB_FINISHED = "job_finished"
JOB_FAILED = "job_failed"
JOB_CANCELLED = "job_cancelled"
JOB_INTERRUPTED = "job_interrupted"
#: The runner's circuit breaker shed optional work (adaptive extra
#: replicates) to finish the job on its seed replicates instead of
#: failing it — an explicit degradation, not a convergence decision.
JOB_DEGRADED = "job_degraded"

JOB_EVENT_KINDS = (JOB_QUEUED, JOB_STARTED, JOB_RESUMED, JOB_FINISHED,
                   JOB_FAILED, JOB_CANCELLED, JOB_INTERRUPTED,
                   JOB_DEGRADED)


def job_event(kind: str, job, detail: Optional[str] = None) -> dict:
    """A lifecycle event payload for ``job`` (a :class:`~repro.
    service.jobs.Job`)."""
    data = {"kind": kind, "job": job.id, "tenant": job.tenant,
            "state": job.state, "done": job.done, "total": job.total}
    if job.error:
        data["error"] = job.error
    if detail:
        data["detail"] = detail
    return data


class EventLog:
    """Append/tail access to one job's ``events.jsonl``."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._seq: Optional[int] = None

    # -- writing -----------------------------------------------------------

    def _next_seq_locked(self) -> int:
        if self._seq is None:
            last = 0
            for seq, _event in self._read(0):
                last = seq
            self._seq = last
        self._seq += 1
        return self._seq

    def append(self, event) -> int:
        """Append one event (a :class:`CampaignEvent` or a plain event
        dict); returns its sequence number."""
        payload = event.to_dict() if isinstance(event, CampaignEvent) \
            else dict(event)
        with self._lock:
            seq = self._next_seq_locked()
            payload["seq"] = seq
            payload["ts"] = round(time.time(), 3)
            os.makedirs(os.path.dirname(os.path.abspath(self.path)),
                        exist_ok=True)
            line = json.dumps(payload, sort_keys=True)
            if self._tail_is_torn():
                line = "\n" + line
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
        return seq

    def _tail_is_torn(self) -> bool:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return False
        if size == 0:
            return False
        with open(self.path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"

    # -- reading -----------------------------------------------------------

    def _read(self, after_seq: int):
        try:
            handle = open(self.path)
        except OSError:
            return
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue        # torn tail of a killed writer
                if not isinstance(event, dict):
                    continue
                seq = event.get("seq")
                if not isinstance(seq, int) or seq <= after_seq:
                    continue
                yield seq, event

    def read(self, after_seq: int = 0) -> List[Tuple[int, dict]]:
        """Every intact event with ``seq > after_seq``, in order."""
        return list(self._read(after_seq))
