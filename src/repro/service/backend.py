"""Execution backend of the campaign service.

One :class:`ServiceBackend` owns everything between the HTTP front-end
and the simulator:

* the :class:`~repro.service.jobs.JobQueue` (priorities, quotas) and
  an admission thread that claims runnable jobs;
* a shared :class:`concurrent.futures.ProcessPoolExecutor` of
  ``slots`` workers, gated by the
  :class:`~repro.service.scheduler.SlotPool` so concurrent tenants
  split the slots by weighted max-min over live demand;
* one :class:`JobRunner` thread per running job.  ``shards=0`` jobs
  execute trial-by-trial through a :class:`_GatedSession` — a
  :class:`~repro.campaign.api.CampaignSession` whose execution core
  asks the slot pool before every submission, so fairness is enforced
  at trial granularity; ``shards>=1`` jobs acquire that many slots and
  drive a :class:`~repro.campaign.orchestrator.CampaignOrchestrator`
  (its ``stop_requested`` hook wired to the runner's stop flag);
* per-job cancellation (:meth:`ServiceBackend.cancel`), graceful
  drain (:meth:`ServiceBackend.drain` — stop admitting, let in-flight
  trials land, mark running jobs ``interrupted``) and restart
  recovery (:meth:`ServiceBackend.recover` — any non-terminal job
  re-queues and resumes from its result store, which the per-record
  fsync of :class:`~repro.campaign.store.JSONLStore` makes exact even
  after SIGKILL).

Every record lands in the job's own ``store.jsonl`` through the
ordinary session bookkeeping, so a job's merged results are
byte-identical to running its spec through a plain
:class:`CampaignSession` — the service adds scheduling, never
semantics.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional

from ..campaign import (CampaignOrchestrator, CampaignSession,
                        CampaignSpec, ExecutionOptions, RetryingStore,
                        aggregate, aggregate_structures,
                        execute_trial_payload, merged_adaptive_summary)
from ..campaign.adaptive import CAPPED, CONVERGED
from ..campaign.aggregate import trial_cell
from ..campaign.api import (CELL_CONVERGED, TRIAL_FINISHED,
                            TRIAL_STARTED)
from ..errors import (OrchestratorStopped, ReproError, ServiceError)
from ..resilience.circuit import CircuitBreaker
from ..resilience.retry import RetryPolicy
from ..resilience.watchdog import PoolSupervisor, kill_pool_workers
from .events import (EventLog, JOB_CANCELLED, JOB_DEGRADED, JOB_FAILED,
                     JOB_FINISHED, JOB_INTERRUPTED, JOB_QUEUED,
                     JOB_RESUMED, JOB_STARTED, job_event)
from .jobs import (CANCELLED, DONE, FAILED, INTERRUPTED, Job, JobQueue,
                   QUEUED, RUNNING, new_job_id)
from .scheduler import (FairScheduler, ReplicateBudget, SlotPool,
                        TenantConfig)

#: The service watches stores and futures at this cadence — much
#: tighter than the orchestrator's standalone 0.2 s default, because
#: SSE subscribers are watching live.
SERVICE_POLL_INTERVAL = 0.05


class _JobStopped(Exception):
    """Internal: a runner honoured its stop flag mid-execution."""


class _GatedSession(CampaignSession):
    """A session whose execution core is the backend's shared,
    fairness-gated slot pool instead of a private process pool.

    Everything else — resume semantics, store appends, the event
    protocol, adaptive bookkeeping, record assembly — is the parent's,
    which is precisely what makes service results byte-identical to a
    plain session run.
    """

    def __init__(self, *args, runner: "JobRunner", **kwargs):
        super().__init__(*args, **kwargs)
        self._runner = runner

    def _execute(self, todo, cell_remaining, done_offset, total):
        return self._runner.pump(self, list(todo), cell_remaining,
                                 done_offset, total, adaptive=None)

    def _execute_adaptive(self, scheduler, cell_remaining, done_offset,
                          total):
        return self._runner.pump(self, None, cell_remaining,
                                 done_offset, total, adaptive=scheduler)


class JobRunner(threading.Thread):
    """Drives one job from RUNNING to a terminal (or interrupted)
    state; one thread per active job."""

    def __init__(self, backend: "ServiceBackend", job: Job):
        super().__init__(name="job-%s" % job.id, daemon=True)
        self.backend = backend
        self.job = job
        self.log = backend.event_log(job.id)
        self._stop_event = threading.Event()
        #: CANCELLED or INTERRUPTED once a stop was requested.
        self.stop_reason: Optional[str] = None
        #: Per-runner circuit breaker over infrastructure failures
        #: (pool breakage, hung trials).  OPEN => shed adaptive extra
        #: replicates instead of risking the whole job.
        self.breaker = CircuitBreaker(
            failure_threshold=backend.breaker_threshold,
            recovery_time=backend.breaker_recovery)
        #: Guards the liveness fields below — they are written from
        #: the runner thread and read by the backend liveness thread.
        self._progress_lock = threading.Lock()
        #: monotonic() stamp of the last observed progress (submission
        #: or landed record) — the backend liveness thread's lease.
        self.progress_stamp = time.monotonic()
        #: Trials currently in flight on the shared pool (liveness
        #: only kills pool workers for runners that actually wait).
        self.inflight = 0

    def mark_progress(self, inflight: int):
        """Stamp forward progress and publish the in-flight count
        (runner thread)."""
        with self._progress_lock:
            self.progress_stamp = time.monotonic()
            self.inflight = inflight

    def set_inflight(self, inflight: int):
        with self._progress_lock:
            self.inflight = inflight

    def lease_expired(self, now: float, lease: float) -> bool:
        """Liveness probe (backend thread): True when in-flight work
        has not progressed within ``lease`` seconds.  Renews the
        stamp on expiry so one wedged runner triggers at most one
        pool kill per lease interval."""
        with self._progress_lock:
            if self.inflight and now - self.progress_stamp > lease:
                self.progress_stamp = now
                return True
            return False

    def request_stop(self, reason: str):
        """Ask the runner to stop; cancellation wins over drain."""
        if self.stop_reason != CANCELLED:
            self.stop_reason = reason
        self._stop_event.set()

    @property
    def stopping(self) -> bool:
        return self._stop_event.is_set()

    # -- lifecycle ---------------------------------------------------------

    def run(self):
        job = self.job
        backend = self.backend
        store = job.store(backend.data_dir)
        if backend.store_retry is not None:
            # Job stores are the durable truth of the service; retry
            # transient write errors instead of failing the job.
            store = RetryingStore(store, policy=backend.store_retry)
        resumed = store.exists and bool(store.completed_keys())
        job.started_at = time.time()
        job.save(backend.data_dir)
        self.log.append(job_event(JOB_RESUMED if resumed
                                  else JOB_STARTED, job))
        try:
            if job.shards:
                self._run_orchestrated(store)
            else:
                self._run_pooled(store, resume=resumed)
        except _JobStopped:
            job.state = self.stop_reason or INTERRUPTED
            self.log.append(job_event(
                JOB_CANCELLED if job.state == CANCELLED
                else JOB_INTERRUPTED, job))
        except ReproError as exc:
            job.state = FAILED
            job.error = str(exc)
            self.log.append(job_event(JOB_FAILED, job))
        except Exception as exc:     # noqa: BLE001 — a runner must
            # never take the service down with it; the job carries
            # the diagnosis instead.
            job.state = FAILED
            job.error = "%s: %s" % (type(exc).__name__, exc)
            self.log.append(job_event(JOB_FAILED, job))
        else:
            job.state = DONE
            self.log.append(job_event(JOB_FINISHED, job))
        finally:
            if job.state != INTERRUPTED:
                job.finished_at = time.time()
            job.save(backend.data_dir)
            backend._runner_finished(self)

    def _listener(self):
        job = self.job
        log = self.log

        def listener(event):
            log.append(event)
            job.done = event.done
            job.total = event.total
        return listener

    # -- trial-level execution (shards == 0) -------------------------------

    def _run_pooled(self, store, resume: bool):
        session = _GatedSession(self.job.spec, options=self.job.options,
                                store=store, runner=self,
                                listeners=(self._listener(),))
        if resume:
            result = session.resume()
        else:
            result = session.run()
        self.job.done = len(result.records)

    def pump(self, session, todo: Optional[List], cell_remaining,
             done_offset, total, adaptive):
        """The gated execution core both session paths funnel into.

        Fixed plans hand in their ``todo`` list; adaptive plans hand
        in their :class:`AdaptiveScheduler`.  Every submission first
        wins a slot from the fair pool (and, for adaptive extras
        beyond the seed replicates, a replicate-budget token), so the
        scheduler's allocation is enforced one trial at a time.
        """
        backend = self.backend
        tenant = self.job.tenant
        consumer = self.job.id
        plan = session.options.sampling
        records: Dict[str, dict] = {}
        on_record = None
        if adaptive is not None:
            def on_record(record, done):
                converged = adaptive.record_finished(record)
                if converged is not None:
                    session._emit(CELL_CONVERGED, done=done,
                                  total=total, cell=converged.cell)
                trial = record.get("trial")
                if not isinstance(trial, dict):
                    return False
                tracker = adaptive.trackers.get(trial_cell(trial))
                return tracker is not None \
                    and tracker.closed == CONVERGED
        collect, state = session._make_collector(
            records, cell_remaining, done_offset, total,
            on_record=on_record)
        if adaptive is not None:
            for tracker in adaptive.pre_converged():
                session._emit(CELL_CONVERGED, done=state["done"],
                              total=total, cell=tracker.cell)
        deferred = None                 # adaptive trial awaiting token
        held = 0                        # slots this runner holds
        options = session.options
        timeout = options.trial_timeout \
            if options.trial_timeout is not None \
            else backend.trial_timeout

        def on_resubmit(trial, attempt):
            # A recovered trial re-enters the pool: listeners see the
            # retry as a fresh trial_started; the record that lands
            # is byte-identical (seeds derive from keys).
            session._emit(TRIAL_STARTED, done=state["done"],
                          total=total, trial=trial.to_dict())

        supervisor = PoolSupervisor(
            get_pool=lambda: backend.pool,
            reset_pool=backend.reset_pool,
            trial_timeout=timeout,
            trial_retries=options.trial_retries,
            on_resubmit=on_resubmit,
            on_failure=self.breaker.record_failure,
            on_success=self.breaker.record_success)

        def open_pending() -> int:
            """Trials still schedulable (not yet in flight)."""
            if adaptive is None:
                return len(todo)
            cap = float("inf") if plan.max_replicates is None \
                else plan.max_replicates
            count = 1 if deferred is not None else 0
            for tracker in adaptive.trackers.values():
                if tracker.closed is None and tracker.pending \
                        and tracker.scheduled < cap:
                    count += len(tracker.pending)
            return count

        def is_extra(trial) -> bool:
            """Whether this adaptive trial exceeds its cell's seed."""
            tracker = adaptive.trackers.get(trial_cell(trial))
            return tracker is not None \
                and tracker.scheduled > plan.min_replicates

        def shed_extras() -> int:
            """Close every cell already at its seed replicates.

            The breaker tripping means the infrastructure keeps
            failing under this job; adaptive *extra* replicates are
            optional statistical tightening, so they are shed (the
            cells close as CAPPED — an explicit budget cut, not a
            convergence decision) and the job finishes on what the
            seed replicates support.
            """
            shed = 0
            for tracker in adaptive.trackers.values():
                if tracker.closed is None \
                        and tracker.scheduled >= plan.min_replicates:
                    tracker.closed = CAPPED
                    shed += len(tracker.pending)
            if shed:
                self.log.append(job_event(
                    JOB_DEGRADED, self.job,
                    detail="circuit breaker open: shed %d adaptive "
                           "extra replicate%s"
                           % (shed, "" if shed == 1 else "s")))
            return shed

        def select() -> Optional[object]:
            """The next trial to submit, or None (nothing available
            or the replicate budget paced us this epoch)."""
            nonlocal deferred
            if adaptive is None:
                return todo.pop(0) if todo else None
            trial = deferred if deferred is not None \
                else adaptive.next_trial()
            deferred = None
            if trial is None:
                return None
            if is_extra(trial) \
                    and not backend.replicate_budget.try_take(tenant):
                deferred = trial
                return None
            return trial

        def submit_some():
            nonlocal held
            while not self.stopping:
                demand = open_pending() + supervisor.inflight
                backend.slot_pool.set_demand(tenant, consumer, demand)
                if adaptive is not None:
                    backend.replicate_budget.set_demand(
                        tenant, open_pending())
                if open_pending() == 0:
                    return
                if not backend.slot_pool.acquire(tenant, timeout=0):
                    return
                trial = select()
                if trial is None:
                    backend.slot_pool.release(tenant)
                    return
                held += 1
                supervisor.submit(trial.key, execute_trial_payload,
                                  session.options.trial_payload(trial),
                                  context=trial)
                self.mark_progress(supervisor.inflight)
                session._emit(TRIAL_STARTED, done=state["done"],
                              total=total, trial=trial.to_dict())

        def land(results, collect_records=True):
            nonlocal held
            for _trial, record in results:
                held -= 1
                if collect_records:
                    collect(record)
                backend.slot_pool.release(tenant, executed_trials=1)
            if results:
                self.mark_progress(supervisor.inflight)
            else:
                self.set_inflight(supervisor.inflight)

        try:
            while True:
                if adaptive is not None and not self.breaker.allow():
                    shed_extras()
                submit_some()
                if self.stopping:
                    # Graceful: every submitted trial still lands in
                    # the store, so resume re-runs nothing.
                    while supervisor.inflight:
                        land(supervisor.wait(timeout=1.0))
                    raise _JobStopped()
                if not supervisor.inflight:
                    if open_pending() == 0:
                        break
                    # Blocked on a slot or a replicate token.
                    time.sleep(backend.poll_interval)
                    continue
                land(supervisor.wait(backend.poll_interval))
        finally:
            try:
                # Land stragglers without collecting (failure paths;
                # the stop path above already collected everything) —
                # their slots and the tenant's executed-trial credit
                # must be returned either way.
                while supervisor.inflight:
                    land(supervisor.wait(timeout=1.0),
                         collect_records=False)
            # Straggler landing is best-effort cleanup: the exception
            # already unwinding this frame is the diagnosis and must
            # not be masked by one from a broken pool here.
            # repro-lint: disable=except-policy -- cleanup, see above
            except Exception:
                pass
            finally:
                self.set_inflight(0)
                # Slots for trials that errored out (popped without a
                # release above).
                while held > 0:
                    held -= 1
                    backend.slot_pool.release(tenant)
                backend.slot_pool.set_demand(tenant, consumer, 0)
                if adaptive is not None:
                    backend.replicate_budget.set_demand(tenant, 0)
        return records

    # -- orchestrated execution (shards >= 1) ------------------------------

    def _run_orchestrated(self, store):
        backend = self.backend
        job = self.job
        tenant = job.tenant
        consumer = job.id
        backend.slot_pool.set_demand(tenant, consumer, job.shards)
        acquired = 0
        try:
            while acquired < job.shards:
                if self.stopping:
                    raise _JobStopped()
                if backend.slot_pool.acquire(
                        tenant, timeout=backend.poll_interval):
                    acquired += 1
            executed = {"n": 0}

            def listener(event):
                self._listener()(event)
                if event.kind == TRIAL_FINISHED:
                    executed["n"] += 1

            orchestrator = CampaignOrchestrator(
                job.spec, shards=job.shards,
                store_dir=job.shards_dir(backend.data_dir),
                options=job.options, merged_store=store,
                listeners=(listener,),
                stop_requested=self._stop_event.is_set,
                heartbeat_lease=backend.heartbeat_lease)
            try:
                orchestrator.run()
            except OrchestratorStopped:
                raise _JobStopped()
            # Credit the tenant's executed-trial counter on release.
            backend.slot_pool.release(tenant,
                                      executed_trials=executed["n"])
            acquired -= 1
        finally:
            for _ in range(acquired):
                backend.slot_pool.release(tenant)
            backend.slot_pool.set_demand(tenant, consumer, 0)


class ServiceBackend:
    """The multi-tenant campaign execution service (no HTTP here —
    :mod:`repro.service.server` adds the wire)."""

    #: Default retry policy for job-store writes: a transient write
    #: error must not discard a finished simulation.
    DEFAULT_STORE_RETRY = RetryPolicy(attempts=3, base_delay=0.05,
                                      max_delay=1.0)

    def __init__(self, data_dir: str, slots: int = 2,
                 tenants=(), replicate_budget: Optional[int] = None,
                 replicate_epoch: float = 1.0,
                 poll_interval: float = SERVICE_POLL_INTERVAL,
                 trial_timeout: Optional[float] = None,
                 trial_retries: int = 2,
                 runner_lease: Optional[float] = None,
                 heartbeat_lease: Optional[float] = None,
                 breaker_threshold: int = 3,
                 breaker_recovery: float = 10.0,
                 store_retry: Optional[RetryPolicy] = None):
        if poll_interval <= 0:
            raise ServiceError("poll_interval must be > 0")
        if trial_timeout is not None and trial_timeout <= 0:
            raise ServiceError("trial_timeout must be > 0 (or None)")
        if runner_lease is not None and runner_lease <= 0:
            raise ServiceError("runner_lease must be > 0 (or None)")
        self.data_dir = data_dir
        os.makedirs(os.path.join(data_dir, "jobs"), exist_ok=True)
        self.slots = slots
        self.poll_interval = poll_interval
        #: Backend-wide default per-trial wall-clock deadline for
        #: pooled jobs; a job's own ``options.trial_timeout`` wins.
        self.trial_timeout = trial_timeout
        self.trial_retries = trial_retries
        #: When set, a background thread SIGKILLs the shared pool's
        #: workers whenever a runner with in-flight trials makes no
        #: progress for this long — the runners' supervisors then
        #: rebuild and resubmit (hung-runner recovery).
        self.runner_lease = runner_lease
        #: Forwarded to orchestrated jobs' CampaignOrchestrator as its
        #: shard heartbeat lease.
        self.heartbeat_lease = heartbeat_lease
        self.breaker_threshold = breaker_threshold
        self.breaker_recovery = breaker_recovery
        self.store_retry = store_retry if store_retry is not None \
            else self.DEFAULT_STORE_RETRY
        #: Shared-pool worker kills performed by the liveness thread.
        self.hung_runners = 0
        self.scheduler = FairScheduler(
            slots, [config if isinstance(config, TenantConfig)
                    else TenantConfig.from_dict(config)
                    for config in tenants])
        self.slot_pool = SlotPool(self.scheduler)
        self.replicate_budget = ReplicateBudget(
            self.scheduler, budget=replicate_budget,
            epoch=replicate_epoch)
        self.queue = JobQueue(self.scheduler)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._runners: Dict[str, JobRunner] = {}
        self._runners_lock = threading.Lock()
        self._logs: Dict[str, EventLog] = {}
        self._draining = threading.Event()
        self._closed = threading.Event()
        self._wake = threading.Event()
        self._admission = threading.Thread(
            target=self._admission_loop, name="service-admission",
            daemon=True)
        self._admission.start()
        self._liveness = None
        if self.runner_lease is not None:
            self._liveness = threading.Thread(
                target=self._liveness_loop, name="service-liveness",
                daemon=True)
            self._liveness.start()

    # -- shared resources --------------------------------------------------

    @property
    def pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.slots)
            return self._pool

    def reset_pool(self, broken=None):
        """Retire the shared pool so the next :attr:`pool` access
        rebuilds it.

        Compare-and-swap on the executor identity: several runners'
        supervisors may detect the same breakage concurrently, and
        only the first one may retire the pool — a later reset aimed
        at an already-replaced executor must not kill the fresh pool
        (and the resubmitted trials on it).
        """
        with self._pool_lock:
            pool = self._pool
            if pool is None \
                    or (broken is not None and pool is not broken):
                return
            self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    def kill_pool_workers(self):
        """SIGKILL the shared pool's workers (hung-runner recovery;
        the supervisors of affected runners rebuild and resubmit)."""
        with self._pool_lock:
            pool = self._pool
        if pool is not None:
            kill_pool_workers(pool)

    def event_log(self, job_id: str) -> EventLog:
        with self._runners_lock:
            log = self._logs.get(job_id)
            if log is None:
                log = EventLog(os.path.join(
                    self.data_dir, "jobs", job_id, "events.jsonl"))
                self._logs[job_id] = log
            return log

    # -- recovery ----------------------------------------------------------

    def recover(self) -> List[Job]:
        """Adopt every persisted job; non-terminal ones re-queue and
        will resume from their stores.  Returns the re-queued jobs."""
        jobs_dir = os.path.join(self.data_dir, "jobs")
        try:
            names = sorted(os.listdir(jobs_dir))
        except OSError:
            return []
        recovered = []
        jobs = []
        for name in names:
            if not os.path.isfile(os.path.join(jobs_dir, name,
                                               "job.json")):
                continue
            try:
                jobs.append(Job.load(self.data_dir, name))
            except ServiceError:
                continue             # torn job.json: skip, keep files
        jobs.sort(key=lambda job: (job.submitted_at, job.id))
        for job in jobs:
            if not job.terminal:
                # RUNNING/INTERRUPTED means a previous process died or
                # drained mid-job; the store remembers what finished.
                job.state = QUEUED
                job.error = ""
                job.save(self.data_dir)
                self.event_log(job.id).append(
                    job_event(JOB_QUEUED, job))
                recovered.append(job)
            self.queue.adopt(job)
        if recovered:
            self._wake.set()
        return recovered

    # -- the front-end surface ---------------------------------------------

    def submit(self, tenant: str, spec, options=None, priority: int = 0,
               shards: int = 0, job_id: Optional[str] = None) -> Job:
        """Admit one campaign; raises
        :class:`~repro.errors.QuotaError` over the tenant's queue
        quota and :class:`~repro.errors.ServiceError` while draining."""
        if self._draining.is_set() or self._closed.is_set():
            raise ServiceError("service is draining; not accepting "
                               "new jobs")
        if not tenant or not isinstance(tenant, str):
            raise ServiceError("tenant must be a non-empty string")
        if isinstance(spec, dict):
            spec = CampaignSpec.from_dict(spec)
        if not isinstance(spec, CampaignSpec):
            raise ServiceError("spec must be a CampaignSpec or its "
                               "dict form, got %r" % type(spec).__name__)
        if options is None:
            options = ExecutionOptions()
        elif isinstance(options, dict):
            options = ExecutionOptions.from_dict(options)
        if options.poll_interval is None:
            # Live SSE progress wants tight store polls (satellite of
            # the configurable-interval change).
            options = replace(options,
                              poll_interval=self.poll_interval)
        if shards and shards > self.slots:
            raise ServiceError(
                "shards=%d exceeds the service's %d worker slots"
                % (shards, self.slots))
        job = Job(id=job_id or new_job_id(), tenant=tenant, spec=spec,
                  options=options, priority=priority, shards=shards,
                  total=spec.grid_size)
        job.submitted_at = time.time()
        self.queue.submit(job)
        job.save(self.data_dir)
        self.event_log(job.id).append(job_event(JOB_QUEUED, job))
        self._wake.set()
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job (terminal jobs are no-ops);
        completed trial records are kept."""
        job = self.queue.get(job_id)
        if job.terminal:
            return job
        if job.state == RUNNING:
            with self._runners_lock:
                runner = self._runners.get(job_id)
            if runner is not None:
                runner.request_stop(CANCELLED)
                return job
        job.state = CANCELLED
        job.finished_at = time.time()
        job.save(self.data_dir)
        self.event_log(job.id).append(job_event(JOB_CANCELLED, job))
        return job

    def job(self, job_id: str) -> Job:
        return self.queue.get(job_id)

    def jobs(self, tenant: Optional[str] = None) -> List[Job]:
        return self.queue.jobs(tenant)

    def job_result(self, job_id: str, with_records: bool = False
                   ) -> dict:
        """Merged results of a job, straight from its store: per-cell
        aggregate (plus structures / adaptive blocks when the spec
        asks for them), optionally the raw records."""
        job = self.queue.get(job_id)
        session = CampaignSession(job.spec,
                                  store=job.store(self.data_dir))
        records = session.records()
        payload = {
            "job": job.summary(),
            "records_stored": len(records),
            "cells": [cell.as_dict() for cell in aggregate(records)],
        }
        if getattr(job.spec, "fault_sites", None):
            payload["structures"] = [
                row.as_dict()
                for row in aggregate_structures(records)]
        if job.options.adaptive and job.state == DONE:
            payload["adaptive"] = merged_adaptive_summary(
                job.options.sampling, list(job.spec.trials()),
                {record["key"]: record for record in records}).as_dict()
        if with_records:
            payload["records"] = records
        return payload

    def read_events(self, job_id: str, after_seq: int = 0):
        """Intact events of a job past ``after_seq`` (SSE tailing)."""
        self.queue.get(job_id)          # raises on unknown jobs
        return self.event_log(job_id).read(after_seq)

    def fairness_report(self) -> dict:
        """The scheduler's allocation/busy-time report plus per-tenant
        job state counts and the replicate-budget setting."""
        report = self.scheduler.report()
        for name, entry in report["tenants"].items():
            entry["jobs"] = {
                state: count
                for state, count in self.queue.counts(name).items()
                if count}
        report["replicate_budget"] = self.replicate_budget.budget
        report["draining"] = self._draining.is_set()
        return report

    # -- admission + shutdown ----------------------------------------------

    def _admission_loop(self):
        while not self._closed.is_set():
            self._wake.wait(timeout=0.2)
            self._wake.clear()
            if self._draining.is_set():
                continue
            while True:
                job = self.queue.next_runnable()
                if job is None:
                    break
                job.save(self.data_dir)
                runner = JobRunner(self, job)
                with self._runners_lock:
                    self._runners[job.id] = runner
                runner.start()

    def _liveness_loop(self):
        """Hung-runner detection over the shared pool.

        A runner with in-flight trials whose progress stamp (last
        submission or landed record) is older than ``runner_lease``
        is presumed stuck on a wedged worker: SIGKILL the pool's
        workers, which surfaces as ``BrokenProcessPool`` in every
        waiting supervisor — they rebuild the pool and resubmit by
        key, and replay determinism makes the reruns byte-identical.
        """
        interval = min(self.runner_lease / 4.0, 1.0)
        while not self._closed.is_set():
            if self._closed.wait(timeout=interval):
                return
            now = time.monotonic()
            for runner in self.active_runners():
                if runner.lease_expired(now, self.runner_lease):
                    self.hung_runners += 1
                    self.kill_pool_workers()
                    break

    def _runner_finished(self, runner: JobRunner):
        with self._runners_lock:
            self._runners.pop(runner.job.id, None)
        self._wake.set()

    def active_runners(self) -> List[JobRunner]:
        with self._runners_lock:
            return list(self._runners.values())

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse new work, let in-flight trials
        land (running jobs become ``interrupted``), keep queued jobs
        queued.  Returns True when every runner exited in time."""
        self._draining.set()
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        # Admission races drain: a job claimed by the admission loop
        # just before _draining was set may not have its runner
        # registered yet.  Re-sweep until the set of running jobs is
        # covered by stopped runners (or the deadline passes).
        stopped = set()
        while True:
            new = [runner for runner in self.active_runners()
                   if runner.job.id not in stopped]
            for runner in new:
                runner.request_stop(INTERRUPTED)
                stopped.add(runner.job.id)
            if new:
                continue
            with self._runners_lock:
                registered = set(self._runners)
            pending = [job for job in self.queue.jobs()
                       if job.state == RUNNING
                       and job.id not in registered
                       and job.id not in stopped]
            if not pending:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.01)
        clean = True
        for runner in self.active_runners():
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            runner.join(remaining)
            clean = clean and not runner.is_alive()
        return clean

    def close(self, drain_timeout: Optional[float] = 30.0):
        """Drain, then stop the admission thread and worker pool."""
        self.drain(timeout=drain_timeout)
        self._closed.set()
        self._wake.set()
        self._admission.join(timeout=5.0)
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
