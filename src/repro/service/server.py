"""The asyncio HTTP front-end of the campaign service.

A deliberately small, dependency-free HTTP/1.1 server
(:func:`asyncio.start_server` plus a hand-rolled request parser — the
stdlib's synchronous ``http.server`` cannot stream SSE to many clients
from one thread, and the paper-repro ethos of this repo is explicit
mechanisms over frameworks).  The API surface:

=======  ==============================  =================================
Method   Path                            Meaning
=======  ==============================  =================================
GET      ``/healthz``                    liveness + drain flag
POST     ``/api/jobs``                   submit ``{tenant, spec,
                                         options?, priority?, shards?}``
GET      ``/api/jobs``                   list jobs (``?tenant=`` filter)
GET      ``/api/jobs/<id>``              one job's status summary
POST     ``/api/jobs/<id>/cancel``       cancel queued/running job
GET      ``/api/jobs/<id>/events``       SSE progress stream
                                         (``?after=<seq>&follow=0|1``)
GET      ``/api/jobs/<id>/result``       merged aggregates
                                         (``?records=1`` adds records)
GET      ``/api/tenants``                fairness report
=======  ==============================  =================================

The SSE stream serializes the campaign's typed event protocol: each
frame is ``id: <seq>`` / ``event: <kind>`` / ``data: <event json>``,
where ``kind`` is ``trial_started`` / ``trial_finished`` /
``cell_finished`` / ``cell_converged`` / ``shard_*`` /
``campaign_finished`` or one of the service's ``job_*`` lifecycle
markers, and the data payload is the
:meth:`~repro.campaign.api.CampaignEvent.to_dict` wire form.  Frames
replay from ``?after=<seq>`` (the log survives restarts), then tail
live until the job reaches a terminal state; a final ``stream_end``
event closes the stream.

Error mapping: bad input 400, unknown job 404, quota exceeded 429,
draining 503.

On start the server writes ``service.json`` (URL, pid) into the data
dir so drivers — ``repro-ft load`` and the CI smoke test — can
discover a ``--port 0`` ephemeral binding.  SIGTERM/SIGINT trigger a
graceful drain: stop accepting, interrupt running jobs after their
in-flight trials land, leave queued jobs queued; a later ``serve`` on
the same data dir resumes all of them from their stores.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import ConfigError, QuotaError, ReproError, ServiceError
from .backend import SERVICE_POLL_INTERVAL, ServiceBackend
from .scheduler import TenantConfig

SERVICE_FILE = "service.json"
_MAX_BODY = 16 * 1024 * 1024
_MAX_HEADER = 64 * 1024


def parse_tenant_arg(text: str) -> TenantConfig:
    """``name[:weight[:max_running[:max_queued]]]`` → TenantConfig."""
    parts = text.split(":")
    if not parts[0]:
        raise ConfigError("tenant spec %r has an empty name" % text)
    try:
        weight = float(parts[1]) if len(parts) > 1 and parts[1] else 1.0
        max_running = int(parts[2]) if len(parts) > 2 and parts[2] \
            else None
        max_queued = int(parts[3]) if len(parts) > 3 and parts[3] \
            else None
    except ValueError:
        raise ConfigError("malformed tenant spec %r (want "
                          "name[:weight[:max_running[:max_queued]]])"
                          % text)
    if len(parts) > 4:
        raise ConfigError("malformed tenant spec %r (too many fields)"
                          % text)
    return TenantConfig(name=parts[0], weight=weight,
                        max_running=max_running, max_queued=max_queued)


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {200: "OK", 201: "Created", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                413: "Payload Too Large", 429: "Too Many Requests",
                500: "Internal Server Error",
                503: "Service Unavailable"}


class CampaignServer:
    """One listening socket over one :class:`ServiceBackend`."""

    def __init__(self, backend: ServiceBackend,
                 host: str = "127.0.0.1", port: int = 0,
                 poll_interval: Optional[float] = None):
        self.backend = backend
        self.host = host
        self.port = port
        self.poll_interval = poll_interval \
            if poll_interval is not None else backend.poll_interval
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._write_service_file()

    def _write_service_file(self):
        path = os.path.join(self.backend.data_dir, SERVICE_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump({"host": self.host, "port": self.port,
                       "url": "http://%s:%d" % (self.host, self.port),
                       "pid": os.getpid(),
                       "started_at": time.time()},
                      handle, indent=2, sort_keys=True)
        os.replace(tmp, path)

    async def close(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "").lower() \
                    != "close"
                try:
                    done = await self._dispatch(
                        method, target, body, writer)
                except _HttpError as exc:
                    self._send_json(writer, exc.status,
                                    {"error": str(exc)},
                                    keep_alive=keep_alive)
                except (ConnectionResetError, BrokenPipeError):
                    return
                except Exception as exc:    # noqa: BLE001 — one bad
                    # request must not take the listener down.
                    self._send_json(writer, 500,
                                    {"error": "%s: %s"
                                     % (type(exc).__name__, exc)},
                                    keep_alive=keep_alive)
                else:
                    if done == "stream":
                        return      # SSE streams close the connection
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader) -> Optional[Tuple]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request header too large")
        if len(head) > _MAX_HEADER:
            raise _HttpError(413, "request header too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line %r"
                             % lines[0][:80])
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    # -- responses ---------------------------------------------------------

    def _send_json(self, writer, status: int, payload,
                   keep_alive: bool = True):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: %d\r\n"
                "Connection: %s\r\n\r\n"
                % (status, _STATUS_TEXT.get(status, "Unknown"),
                   len(body),
                   "keep-alive" if keep_alive else "close"))
        writer.write(head.encode() + body)

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, method, target, body, writer):
        url = urlsplit(target)
        query = {name: values[-1]
                 for name, values in parse_qs(url.query).items()}
        parts = [part for part in url.path.split("/") if part]
        if parts == ["healthz"] and method == "GET":
            report = self.backend.fairness_report()
            self._send_json(writer, 200, {
                "status": "draining" if report["draining"] else "ok",
                "slots": report["slots"]})
            return None
        if not parts or parts[0] != "api":
            raise _HttpError(404, "unknown path %r" % url.path)
        route = parts[1:]
        try:
            if route == ["jobs"]:
                if method == "POST":
                    return self._submit(writer, body)
                if method == "GET":
                    jobs = self.backend.jobs(query.get("tenant"))
                    self._send_json(writer, 200, {
                        "jobs": [job.summary() for job in jobs]})
                    return None
            elif route == ["tenants"] and method == "GET":
                self._send_json(writer, 200,
                                self.backend.fairness_report())
                return None
            elif len(route) == 2 and route[0] == "jobs" \
                    and method == "GET":
                job = self.backend.job(route[1])
                self._send_json(writer, 200, job.summary())
                return None
            elif len(route) == 3 and route[0] == "jobs":
                job_id = route[1]
                if route[2] == "cancel" and method == "POST":
                    job = self.backend.cancel(job_id)
                    self._send_json(writer, 200, job.summary())
                    return None
                if route[2] == "result" and method == "GET":
                    payload = self.backend.job_result(
                        job_id,
                        with_records=query.get("records") == "1")
                    self._send_json(writer, 200, payload)
                    return None
                if route[2] == "events" and method == "GET":
                    await self._stream_events(
                        writer, job_id,
                        after=int(query.get("after", 0) or 0),
                        follow=query.get("follow", "1") != "0")
                    return "stream"
        except QuotaError as exc:
            raise _HttpError(429, str(exc))
        except ServiceError as exc:
            message = str(exc)
            if message.startswith("unknown job"):
                raise _HttpError(404, message)
            if "draining" in message:
                raise _HttpError(503, message)
            raise _HttpError(400, message)
        except ConfigError as exc:
            raise _HttpError(400, str(exc))
        raise _HttpError(405 if route[:1] in (["jobs"], ["tenants"])
                         else 404,
                         "no route for %s %s" % (method, url.path))

    def _submit(self, writer, body):
        try:
            payload = json.loads(body.decode() or "{}")
        except ValueError as exc:
            raise _HttpError(400, "request body is not JSON: %s" % exc)
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        unknown = set(payload) - {"tenant", "spec", "options",
                                  "priority", "shards", "job_id"}
        if unknown:
            raise _HttpError(400, "unknown submission fields: %s"
                             % sorted(unknown))
        if "tenant" not in payload or "spec" not in payload:
            raise _HttpError(400, "submission needs 'tenant' and "
                             "'spec'")
        job = self.backend.submit(
            payload["tenant"], payload["spec"],
            options=payload.get("options"),
            priority=payload.get("priority", 0),
            shards=payload.get("shards", 0),
            job_id=payload.get("job_id"))
        self._send_json(writer, 201, job.summary())
        return None

    # -- SSE ---------------------------------------------------------------

    async def _stream_events(self, writer, job_id: str, after: int,
                             follow: bool):
        self.backend.job(job_id)        # 404 before headers go out
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        last = after
        while True:
            # State first, then the log: the runner writes state before
            # the final event, so observing terminal + an empty read
            # means one trailing poll below catches the tail.
            terminal = self.backend.job(job_id).terminal
            events = self.backend.read_events(job_id, last)
            for seq, event in events:
                last = seq
                self._write_frame(writer, seq, event)
            if events:
                await writer.drain()
            if not follow:
                break
            if terminal and not events:
                break
            await asyncio.sleep(self.poll_interval)
        for seq, event in self.backend.read_events(job_id, last):
            self._write_frame(writer, seq, event)
        writer.write(b"event: stream_end\ndata: {}\n\n")
        await writer.drain()

    @staticmethod
    def _write_frame(writer, seq: int, event: dict):
        writer.write(("id: %d\nevent: %s\ndata: %s\n\n"
                      % (seq, event.get("kind", "message"),
                         json.dumps(event, sort_keys=True))).encode())


# -- CLI entry --------------------------------------------------------------

async def _serve(args) -> int:
    tenants = [parse_tenant_arg(text) for text in args.tenant or ()]
    backend = ServiceBackend(
        args.data_dir, slots=args.slots, tenants=tenants,
        replicate_budget=args.replicate_budget,
        poll_interval=args.poll_interval
        if args.poll_interval is not None else SERVICE_POLL_INTERVAL,
        trial_timeout=getattr(args, "trial_timeout", None),
        runner_lease=getattr(args, "runner_lease", None),
        heartbeat_lease=getattr(args, "heartbeat_lease", None))
    recovered = backend.recover()
    if recovered:
        print("recovered %d interrupted/queued job%s: %s"
              % (len(recovered), "" if len(recovered) == 1 else "s",
                 ", ".join(job.id for job in recovered)))
    server = CampaignServer(backend, host=args.host, port=args.port)
    await server.start()
    print("campaign service listening on http://%s:%d (data dir %s, "
          "%d slots)" % (server.host, server.port, args.data_dir,
                         args.slots))
    sys.stdout.flush()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass
    await stop.wait()
    print("drain requested; interrupting running jobs after their "
          "in-flight trials land")
    sys.stdout.flush()
    await server.close()
    clean = await loop.run_in_executor(
        None, lambda: backend.drain(timeout=args.drain_timeout))
    backend.close(drain_timeout=0)
    print("drained %s" % ("cleanly" if clean else "with stragglers"))
    return 0


def run_serve(args) -> int:
    """``repro-ft serve`` entry point."""
    try:
        return asyncio.run(_serve(args))
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
