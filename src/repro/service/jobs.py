"""Jobs and the multi-tenant priority queue of the campaign service.

A :class:`Job` is one tenant's submitted campaign: a full
:class:`~repro.campaign.spec.CampaignSpec`, an
:class:`~repro.campaign.api.ExecutionOptions` bundle, a priority and
an execution shape (``shards=0`` runs trial-by-trial on the backend's
shared slot pool; ``shards>=1`` drives a
:class:`~repro.campaign.orchestrator.CampaignOrchestrator`).  Every
job owns a directory under the service data dir::

    jobs/<job_id>/job.json      # identity + state (atomic rewrites)
    jobs/<job_id>/store.jsonl   # the durable result store
    jobs/<job_id>/events.jsonl  # serialized progress event log
    jobs/<job_id>/shards/       # orchestrator shard stores (shards>=1)

``store.jsonl`` is the source of truth: state transitions in
``job.json`` are advisory (a SIGKILL can outrun them), and recovery
treats any non-terminal state as "resume from the store".

:class:`JobQueue` orders admission: higher ``priority`` first, then
submission order, skipping tenants already at their ``max_running``
quota; ``max_queued`` bounds the backlog a tenant may pile up
(:class:`~repro.errors.QuotaError` on violation).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..campaign import CampaignSpec, ExecutionOptions, JSONLStore
from ..errors import ConfigError, QuotaError, ServiceError
from .scheduler import FairScheduler

# -- job states ------------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
#: Gracefully drained mid-run; re-queued (resuming from the store) the
#: next time the service starts.
INTERRUPTED = "interrupted"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, INTERRUPTED)
#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

JOB_FILE = "job.json"
STORE_FILE = "store.jsonl"
EVENTS_FILE = "events.jsonl"
SHARDS_DIR = "shards"


def new_job_id() -> str:
    """Unique, path-safe job identifier."""
    return "job-%s" % uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One tenant's campaign submission and its lifecycle state."""

    id: str
    tenant: str
    spec: CampaignSpec
    options: ExecutionOptions = field(default_factory=ExecutionOptions)
    priority: int = 0
    #: 0 = trial-level execution on the shared slot pool; >= 1 = run
    #: through a CampaignOrchestrator with this many shard workers.
    shards: int = 0
    state: str = QUEUED
    error: str = ""
    #: Monotonic admission order within one service process.
    seq: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Trial progress mirrors (updated by the runner's event stream).
    done: int = 0
    total: int = 0

    def __post_init__(self):
        if not isinstance(self.priority, int) \
                or isinstance(self.priority, bool):
            raise ConfigError("priority must be an integer, got %r"
                              % (self.priority,))
        if not isinstance(self.shards, int) \
                or isinstance(self.shards, bool) or self.shards < 0:
            raise ConfigError("shards must be an integer >= 0, got %r"
                              % (self.shards,))
        if self.state not in JOB_STATES:
            raise ConfigError("unknown job state %r" % (self.state,))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # -- persistence -------------------------------------------------------

    def job_dir(self, data_dir: str) -> str:
        return os.path.join(data_dir, "jobs", self.id)

    def store_path(self, data_dir: str) -> str:
        return os.path.join(self.job_dir(data_dir), STORE_FILE)

    def events_path(self, data_dir: str) -> str:
        return os.path.join(self.job_dir(data_dir), EVENTS_FILE)

    def shards_dir(self, data_dir: str) -> str:
        return os.path.join(self.job_dir(data_dir), SHARDS_DIR)

    def store(self, data_dir: str) -> JSONLStore:
        return JSONLStore(self.store_path(data_dir))

    def to_dict(self) -> dict:
        data = {
            "id": self.id,
            "tenant": self.tenant,
            "spec": self.spec.to_dict(),
            "options": self.options.to_dict(),
            "priority": self.priority,
            "shards": self.shards,
            "state": self.state,
            "seq": self.seq,
            "submitted_at": self.submitted_at,
            "done": self.done,
            "total": self.total,
        }
        if self.error:
            data["error"] = self.error
        if self.started_at is not None:
            data["started_at"] = self.started_at
        if self.finished_at is not None:
            data["finished_at"] = self.finished_at
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigError("unknown job fields: %s" % sorted(unknown))
        data = dict(data)
        data["spec"] = CampaignSpec.from_dict(data["spec"])
        data["options"] = ExecutionOptions.from_dict(
            data.get("options", {}))
        return cls(**data)

    def save(self, data_dir: str):
        """Atomically persist ``job.json`` (tmp file + rename).

        The tmp name is unique per writer: submit, admission and the
        runner may save concurrently, and a shared tmp path would let
        one writer's rename steal (and crash) another's.
        """
        directory = self.job_dir(data_dir)
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, JOB_FILE)
        tmp = "%s.tmp.%s" % (path, uuid.uuid4().hex[:8])
        with open(tmp, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, data_dir: str, job_id: str) -> "Job":
        path = os.path.join(data_dir, "jobs", job_id, JOB_FILE)
        try:
            with open(path) as handle:
                return cls.from_dict(json.load(handle))
        except OSError as exc:
            raise ServiceError("unknown job %r (%s)" % (job_id, exc))
        except ValueError as exc:
            raise ServiceError("corrupt job file %s: %s" % (path, exc))

    # -- summaries ---------------------------------------------------------

    def summary(self) -> dict:
        """The status payload the HTTP API serves."""
        data = {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "priority": self.priority,
            "shards": self.shards,
            "campaign": self.spec.name,
            "grid_size": self.spec.grid_size,
            "done": self.done,
            "total": self.total,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error:
            data["error"] = self.error
        return data


class JobQueue:
    """Priority admission queue with per-tenant quotas.

    Jobs wait here between :meth:`submit` and the backend's admission
    loop claiming them via :meth:`next_runnable`.  Ordering: highest
    ``priority`` first, FIFO (submission ``seq``) within a priority.
    Tenants at their ``max_running`` quota are skipped — a lower
    priority job of an under-quota tenant runs ahead of a blocked
    higher-priority one, which is what keeps one tenant's burst from
    convoying the whole service.
    """

    def __init__(self, scheduler: FairScheduler):
        self.scheduler = scheduler
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._seq = 0

    # -- introspection -----------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError("unknown job %r" % job_id)
        return job

    def jobs(self, tenant: Optional[str] = None) -> List[Job]:
        with self._lock:
            jobs = [job for job in self._jobs.values()
                    if tenant is None or job.tenant == tenant]
        return sorted(jobs, key=lambda job: job.seq)

    def counts(self, tenant: str) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs(tenant):
            counts[job.state] += 1
        return counts

    # -- admission ---------------------------------------------------------

    def submit(self, job: Job) -> Job:
        """Enqueue a job, enforcing the tenant's ``max_queued`` quota."""
        config = self.scheduler.tenant(job.tenant)
        with self._lock:
            if job.id in self._jobs:
                raise ServiceError("duplicate job id %r" % job.id)
            if config.max_queued is not None:
                queued = sum(1 for other in self._jobs.values()
                             if other.tenant == job.tenant
                             and other.state == QUEUED)
                if queued >= config.max_queued:
                    raise QuotaError(
                        "tenant %r already has %d queued job%s (quota "
                        "%d); retry after some complete"
                        % (job.tenant, queued,
                           "" if queued == 1 else "s",
                           config.max_queued))
            self._seq += 1
            job.seq = self._seq
            if not job.submitted_at:
                job.submitted_at = time.time()
            self._jobs[job.id] = job
        return job

    def adopt(self, job: Job):
        """Re-register a recovered job without quota checks (it was
        admitted by a previous service process)."""
        with self._lock:
            self._seq += 1
            job.seq = self._seq
            self._jobs[job.id] = job

    def next_runnable(self) -> Optional[Job]:
        """Claim the next admissible queued job (marks it RUNNING).

        Tenants at ``max_running`` are skipped; returns ``None`` when
        nothing is admissible right now.
        """
        with self._lock:
            running: Dict[str, int] = {}
            for job in self._jobs.values():
                if job.state == RUNNING:
                    running[job.tenant] = running.get(job.tenant, 0) + 1
            candidates = sorted(
                (job for job in self._jobs.values()
                 if job.state == QUEUED),
                key=lambda job: (-job.priority, job.seq))
            for job in candidates:
                config = self.scheduler.tenant(job.tenant)
                if config.max_running is not None \
                        and running.get(job.tenant, 0) \
                        >= config.max_running:
                    continue
                job.state = RUNNING
                return job
        return None
