"""Load generator for the campaign service (``repro-ft load``).

Split the way storage-system load generators are (driver / client /
workload):

* **workloads** describe *when* jobs arrive and *what* they submit —
  :class:`StaticWorkload` (a burst of N identical jobs at t=0),
  :class:`DynamicWorkload` (seeded-Poisson arrivals at a target rate)
  and :class:`TraceReplayWorkload` (a recorded JSONL arrival trace,
  optionally time-scaled);
* the **client** (:class:`ServiceClient`) speaks the HTTP API —
  submit / status / cancel / result / SSE / fairness report — over
  stdlib ``http.client``;
* the **driver** (:class:`LoadDriver`) runs one thread per tenant,
  replays that tenant's arrival schedule, waits for every job to reach
  a terminal state, samples the SSE stream of each tenant's first job,
  and reduces it all into a per-tenant report: jobs completed/failed,
  trials executed, submit latency, trial throughput, SSE event count.

The driver then fetches ``/api/tenants`` and checks the service's own
no-starvation invariant: for every tenant that spent meaningful time
demanding slots, the average slots it held while demanding
(``busy_seconds / demand_seconds``) must reach its weighted max-min
share of the pool within ``--tolerance`` (the share is computed
against concurrently-demanding tenants only, so a tenant running alone
is simply expected to hold the pool).  ``--verify`` re-runs every
submitted spec through a plain in-process
:class:`~repro.campaign.api.CampaignSession` and asserts the service's
merged records are byte-identical — the acceptance check that the
service adds scheduling, never semantics.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlencode, urlsplit

from ..campaign import CampaignSession, CampaignSpec, ExecutionOptions
from ..errors import ConfigError, ServiceError
from ..resilience.retry import RetryPolicy
from .jobs import new_job_id

#: The built-in tiny spec the generated workloads submit when the
#: caller does not provide one (kept small: the point of a load run is
#: scheduling pressure, not simulation depth).
DEFAULT_SPEC = {
    "name": "load",
    "workloads": ["gcc"],
    "models": ["SS-1"],
    "rates_per_million": [0.0, 3000.0],
    "replicates": 2,
    "instructions": 300,
}


# -- client -----------------------------------------------------------------

class ServiceClient:
    """Thin blocking HTTP client for one campaign service.

    With ``retry`` set, connection-level failures (refused, reset,
    timed out) back off and retry per the policy.  Submissions stay
    exactly-once across retries: the client mints the job id itself,
    so a retried POST whose first attempt actually landed trips the
    server's duplicate-id guard and resolves to the existing job.
    """

    #: Connection-level retry used by ``retry=True``.
    DEFAULT_RETRY = RetryPolicy(attempts=3, base_delay=0.1,
                                max_delay=2.0)

    def __init__(self, url: str, timeout: float = 30.0,
                 retry: Optional[RetryPolicy] = None):
        parts = urlsplit(url if "//" in url else "//" + url)
        if not parts.hostname:
            raise ConfigError("bad service URL %r" % url)
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        if retry is True:
            retry = self.DEFAULT_RETRY
        self.retry = retry

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> Tuple[int, dict]:
        if self.retry is None:
            return self._request_once(method, path, body)
        return self.retry.call(
            lambda: self._request_once(method, path, body),
            retry_on=(OSError, http.client.HTTPException),
            token="%s %s" % (method, path))

    def _request_once(self, method: str, path: str,
                      body: Optional[dict] = None) -> Tuple[int, dict]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None \
                else json.dumps(body).encode()
            headers = {"Connection": "close"}
            if payload is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload,
                               headers=headers)
            response = connection.getresponse()
            data = response.read()
        finally:
            connection.close()
        try:
            decoded = json.loads(data.decode() or "{}")
        except ValueError:
            decoded = {"error": data.decode(errors="replace")[:200]}
        return response.status, decoded

    def _checked(self, method, path, body=None) -> dict:
        status, payload = self._request(method, path, body)
        if status >= 400:
            raise ServiceError("%s %s -> %d: %s"
                               % (method, path, status,
                                  payload.get("error", payload)))
        return payload

    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def submit(self, tenant: str, spec: dict, options=None,
               priority: int = 0, shards: int = 0,
               job_id: Optional[str] = None) -> dict:
        body = {"tenant": tenant, "spec": spec}
        if options:
            body["options"] = options
        if priority:
            body["priority"] = priority
        if shards:
            body["shards"] = shards
        if job_id is None and self.retry is not None:
            job_id = new_job_id()
        if job_id:
            body["job_id"] = job_id
        try:
            return self._checked("POST", "/api/jobs", body)
        except ServiceError as exc:
            if job_id and "duplicate job id" in str(exc):
                # A retried POST whose first attempt landed: the job
                # exists under our id — idempotent success.
                return self.job(job_id)
            raise

    def job(self, job_id: str) -> dict:
        return self._checked("GET", "/api/jobs/%s" % job_id)

    def jobs(self, tenant: Optional[str] = None) -> List[dict]:
        path = "/api/jobs"
        if tenant:
            path += "?" + urlencode({"tenant": tenant})
        return self._checked("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._checked("POST", "/api/jobs/%s/cancel" % job_id)

    def result(self, job_id: str, records: bool = False) -> dict:
        path = "/api/jobs/%s/result" % job_id
        if records:
            path += "?records=1"
        return self._checked("GET", path)

    def tenants(self) -> dict:
        return self._checked("GET", "/api/tenants")

    def stream_events(self, job_id: str, after: int = 0,
                      follow: bool = True,
                      max_events: Optional[int] = None,
                      timeout: Optional[float] = None) -> List[dict]:
        """Consume the job's SSE stream; returns the decoded events
        (ends at ``stream_end``, ``max_events`` or ``timeout``)."""
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout)
        events: List[dict] = []
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        try:
            connection.request(
                "GET", "/api/jobs/%s/events?after=%d&follow=%d"
                % (job_id, after, 1 if follow else 0),
                headers={"Accept": "text/event-stream"})
            response = connection.getresponse()
            if response.status != 200:
                raise ServiceError(
                    "SSE request for %s -> %d"
                    % (job_id, response.status))
            kind, data = None, []
            while True:
                if deadline is not None \
                        and time.monotonic() > deadline:
                    break
                line = response.readline()
                if not line:
                    break
                line = line.decode().rstrip("\n")
                if line.startswith("event:"):
                    kind = line.split(":", 1)[1].strip()
                elif line.startswith("data:"):
                    data.append(line.split(":", 1)[1].strip())
                elif not line:
                    if kind == "stream_end":
                        break
                    if data:
                        try:
                            events.append(json.loads("\n".join(data)))
                        except ValueError:
                            pass
                    kind, data = None, []
                    if max_events is not None \
                            and len(events) >= max_events:
                        break
        finally:
            connection.close()
        return events


# -- workloads --------------------------------------------------------------

class Workload:
    """An arrival schedule: :meth:`arrivals` yields
    ``(at_seconds, submission)`` pairs, where ``submission`` is the
    POST /api/jobs body minus the tenant."""

    def arrivals(self) -> List[Tuple[float, dict]]:
        raise NotImplementedError

    def _submission(self, spec, options, priority, shards) -> dict:
        body = {"spec": dict(spec)}
        if options:
            body["options"] = dict(options)
        if priority:
            body["priority"] = priority
        if shards:
            body["shards"] = shards
        return body


class StaticWorkload(Workload):
    """``jobs`` identical submissions, all at t=0 (a burst)."""

    def __init__(self, jobs: int, spec: Optional[dict] = None,
                 options: Optional[dict] = None, priority: int = 0,
                 shards: int = 0):
        if jobs < 1:
            raise ConfigError("StaticWorkload needs jobs >= 1")
        self.jobs = jobs
        self.spec = dict(spec or DEFAULT_SPEC)
        self.options = options
        self.priority = priority
        self.shards = shards

    def arrivals(self):
        return [(0.0, self._submission(self.spec, self.options,
                                       self.priority, self.shards))
                for _ in range(self.jobs)]


class DynamicWorkload(Workload):
    """``jobs`` submissions with seeded-Poisson interarrival gaps at
    ``rate`` jobs/second — open-loop arrival pressure rather than a
    burst, deterministic per seed."""

    def __init__(self, jobs: int, rate: float,
                 spec: Optional[dict] = None,
                 options: Optional[dict] = None, priority: int = 0,
                 shards: int = 0, seed: int = 0):
        if jobs < 1:
            raise ConfigError("DynamicWorkload needs jobs >= 1")
        if rate <= 0:
            raise ConfigError("DynamicWorkload needs rate > 0")
        self.jobs = jobs
        self.rate = rate
        self.spec = dict(spec or DEFAULT_SPEC)
        self.options = options
        self.priority = priority
        self.shards = shards
        self.seed = seed

    def arrivals(self):
        rng = random.Random(self.seed)
        at = 0.0
        schedule = []
        for _ in range(self.jobs):
            at += rng.expovariate(self.rate)
            schedule.append((at, self._submission(
                self.spec, self.options, self.priority, self.shards)))
        return schedule


class TraceReplayWorkload(Workload):
    """Replay a recorded arrival trace.

    The trace is JSONL, one arrival per line::

        {"at": 0.8, "spec": {...}, "options": {...},
         "priority": 0, "shards": 0}

    ``at`` is seconds from trace start; missing ``spec`` falls back to
    the workload's default.  ``time_scale`` stretches (>1) or
    compresses (<1) the replay clock.
    """

    def __init__(self, path: str, time_scale: float = 1.0,
                 spec: Optional[dict] = None):
        if time_scale <= 0:
            raise ConfigError("time_scale must be > 0")
        self.path = path
        self.time_scale = time_scale
        self.spec = dict(spec or DEFAULT_SPEC)

    def arrivals(self):
        schedule = []
        try:
            handle = open(self.path)
        except OSError as exc:
            raise ConfigError("cannot read trace %s: %s"
                              % (self.path, exc))
        with handle:
            for number, line in enumerate(handle, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    entry = json.loads(line)
                except ValueError as exc:
                    raise ConfigError("trace %s line %d is not JSON: "
                                      "%s" % (self.path, number, exc))
                at = float(entry.get("at", 0.0)) * self.time_scale
                schedule.append((at, self._submission(
                    entry.get("spec", self.spec),
                    entry.get("options"),
                    int(entry.get("priority", 0)),
                    int(entry.get("shards", 0)))))
        if not schedule:
            raise ConfigError("trace %s holds no arrivals" % self.path)
        schedule.sort(key=lambda pair: pair[0])
        return schedule


def parse_workload_arg(text: str) -> Tuple[str, Workload]:
    """``tenant:kind:jobs[:rate]`` → (tenant, workload).

    Kinds: ``static:<jobs>``, ``dynamic:<jobs>:<rate>`` and
    ``trace:<path>[:<time_scale>]``.
    """
    parts = text.split(":")
    if len(parts) < 2 or not parts[0]:
        raise ConfigError("malformed workload spec %r (want "
                          "tenant:kind:...)" % text)
    tenant, kind = parts[0], parts[1]
    try:
        if kind == "static" and len(parts) == 3:
            return tenant, StaticWorkload(jobs=int(parts[2]))
        if kind == "dynamic" and len(parts) == 4:
            return tenant, DynamicWorkload(jobs=int(parts[2]),
                                           rate=float(parts[3]))
        if kind == "trace" and len(parts) in (3, 4):
            scale = float(parts[3]) if len(parts) == 4 else 1.0
            return tenant, TraceReplayWorkload(parts[2],
                                               time_scale=scale)
    except ValueError:
        raise ConfigError("malformed workload spec %r" % text)
    raise ConfigError(
        "malformed workload spec %r (want tenant:static:<jobs>, "
        "tenant:dynamic:<jobs>:<rate> or "
        "tenant:trace:<path>[:<scale>])" % text)


# -- driver -----------------------------------------------------------------

class LoadDriver:
    """Replays one workload per tenant against a service and reduces
    the outcome into per-tenant and fairness reports."""

    def __init__(self, client: ServiceClient,
                 workloads: Dict[str, Workload],
                 poll_interval: float = 0.1,
                 spec_override: Optional[dict] = None):
        if not workloads:
            raise ConfigError("LoadDriver needs at least one tenant "
                              "workload")
        self.client = client
        self.workloads = workloads
        self.poll_interval = poll_interval
        self.spec_override = spec_override
        self._lock = threading.Lock()
        #: tenant -> list of {job_id, submission, submit_latency, ...}
        self.submissions: Dict[str, List[dict]] = {}
        self.errors: List[str] = []

    # -- per-tenant thread -------------------------------------------------

    def _run_tenant(self, tenant: str, workload: Workload,
                    start: float):
        entries = []
        for at, submission in workload.arrivals():
            delay = start + at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            if self.spec_override is not None:
                submission = dict(submission,
                                  spec=dict(self.spec_override))
            t0 = time.monotonic()
            try:
                summary = self.client.submit(
                    tenant, submission["spec"],
                    options=submission.get("options"),
                    priority=submission.get("priority", 0),
                    shards=submission.get("shards", 0))
            except ServiceError as exc:
                with self._lock:
                    self.errors.append("%s: %s" % (tenant, exc))
                continue
            entries.append({
                "job_id": summary["id"],
                "submission": submission,
                "submit_latency": time.monotonic() - t0,
                "submitted_at": time.monotonic() - start,
            })
        # Wait for this tenant's jobs to reach terminal states.
        outstanding = {entry["job_id"] for entry in entries}
        summaries = {}
        while outstanding:
            for job_id in sorted(outstanding):
                summary = self.client.job(job_id)
                if summary["state"] in ("done", "failed", "cancelled"):
                    summaries[job_id] = summary
                    outstanding.discard(job_id)
            if outstanding:
                time.sleep(self.poll_interval)
        for entry in entries:
            summary = summaries[entry["job_id"]]
            entry["state"] = summary["state"]
            entry["trials"] = summary["done"]
            entry["error"] = summary.get("error", "")
            entry["finished_at"] = time.monotonic() - start
        with self._lock:
            self.submissions[tenant] = entries

    # -- the run -----------------------------------------------------------

    def run(self, sse_sample: bool = True) -> dict:
        """Replay every workload; returns the load report."""
        start = time.monotonic()
        threads = [threading.Thread(
            target=self._run_tenant, args=(tenant, workload, start),
            name="load-%s" % tenant, daemon=True)
            for tenant, workload in sorted(self.workloads.items())]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.monotonic() - start
        # All tenant threads were join()ed above, so these reads are
        # ordered after every worker write without taking the lock.
        report = {"wall_seconds": round(wall, 3), "tenants": {},
                  # repro-lint: disable=lock-discipline -- join() above
                  "errors": list(self.errors)}
        for tenant in sorted(self.workloads):
            # repro-lint: disable=lock-discipline -- join() happens-before
            entries = self.submissions.get(tenant, [])
            latencies = [entry["submit_latency"] for entry in entries]
            trials = sum(entry["trials"] for entry in entries)
            active = max((entry["finished_at"] for entry in entries),
                         default=0.0) - \
                min((entry["submitted_at"] for entry in entries),
                    default=0.0)
            tenant_report = {
                "jobs_submitted": len(entries),
                "jobs_done": sum(1 for entry in entries
                                 if entry["state"] == "done"),
                "jobs_failed": sum(1 for entry in entries
                                   if entry["state"] != "done"),
                "trials_executed": trials,
                "submit_latency_mean": round(
                    sum(latencies) / len(latencies), 4)
                if latencies else 0.0,
                "submit_latency_max": round(max(latencies), 4)
                if latencies else 0.0,
                "active_seconds": round(active, 3),
                "trials_per_second": round(trials / active, 3)
                if active > 0 else 0.0,
            }
            if sse_sample and entries:
                events = self.client.stream_events(
                    entries[0]["job_id"], follow=False)
                tenant_report["sse_events_first_job"] = len(events)
                tenant_report["sse_kinds"] = sorted(
                    {event.get("kind", "?") for event in events})
            report["tenants"][tenant] = tenant_report
        report["fairness"] = self.client.tenants()
        return report

    # -- checks ------------------------------------------------------------

    @staticmethod
    def check_fairness(report: dict, tolerance: float = 0.35,
                       min_demand_seconds: float = 0.2) -> List[str]:
        """No-starvation check over the service's fairness report.

        For each tenant with at least ``min_demand_seconds`` of time
        wanting slots, the average slots held while demanding must
        reach ``(1 - tolerance)`` of its weighted max-min share of the
        pool (share computed against the other demanding tenants).
        Returns human-readable violations (empty = fair).
        """
        fairness = report["fairness"]["tenants"]
        slots = report["fairness"]["slots"]
        demanding = {name: entry for name, entry in fairness.items()
                     if entry["demand_seconds"] >= min_demand_seconds}
        violations = []
        total_weight = sum(entry["weight"]
                           for entry in demanding.values())
        for name, entry in sorted(demanding.items()):
            share = slots * entry["weight"] / total_weight
            observed = entry["busy_seconds"] / entry["demand_seconds"]
            if observed < share * (1.0 - tolerance):
                violations.append(
                    "tenant %r averaged %.2f slots while demanding, "
                    "below %.0f%% of its weighted max-min share %.2f"
                    % (name, observed, (1.0 - tolerance) * 100, share))
            if entry["trials_executed"] == 0:
                violations.append("tenant %r executed no trials"
                                  % name)
        return violations

    def verify_results(self) -> List[str]:
        """Re-run every submission in-process and compare records
        byte-for-byte with the service's merged results.  Returns
        mismatch descriptions (empty = identical)."""
        mismatches = []
        # Runs after run() returned, i.e. after every worker joined.
        # repro-lint: disable=lock-discipline -- post-join, single thread
        for tenant in sorted(self.submissions):
            for entry in self.submissions[tenant]:
                if entry["state"] != "done":
                    continue
                served = self.client.result(entry["job_id"],
                                            records=True)["records"]
                submission = entry["submission"]
                spec = CampaignSpec.from_dict(submission["spec"])
                options = ExecutionOptions.from_dict(
                    submission.get("options") or {})
                local = CampaignSession(spec, options=options).run()
                if json.dumps(served, sort_keys=True) \
                        != json.dumps(local.records, sort_keys=True):
                    mismatches.append(
                        "job %s (tenant %s): served records differ "
                        "from an in-process run of the same spec"
                        % (entry["job_id"], tenant))
        return mismatches


# -- CLI entry --------------------------------------------------------------

def _discover_url(args) -> str:
    if args.url:
        return args.url
    if args.data_dir:
        path = "%s/service.json" % args.data_dir
        try:
            with open(path) as handle:
                return json.load(handle)["url"]
        except (OSError, ValueError, KeyError) as exc:
            raise ConfigError("cannot discover service from %s: %s"
                              % (path, exc))
    raise ConfigError("need --url or --data-dir to find the service")


def format_load_report(report: dict) -> str:
    lines = ["load run: %.1fs wall" % report["wall_seconds"]]
    header = ("tenant", "jobs", "done", "trials", "trials/s",
              "submit ms", "sse")
    rows = [header]
    for name, entry in sorted(report["tenants"].items()):
        rows.append((name, str(entry["jobs_submitted"]),
                     str(entry["jobs_done"]),
                     str(entry["trials_executed"]),
                     "%.2f" % entry["trials_per_second"],
                     "%.1f" % (entry["submit_latency_mean"] * 1e3),
                     str(entry.get("sse_events_first_job", "-"))))
    widths = [max(len(row[i]) for row in rows)
              for i in range(len(header))]
    for row in rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths))
                     .rstrip())
    lines.append("")
    lines.append("fairness (avg slots held while demanding):")
    fairness = report["fairness"]["tenants"]
    for name, entry in sorted(fairness.items()):
        held = entry["busy_seconds"] / entry["demand_seconds"] \
            if entry["demand_seconds"] > 0 else 0.0
        lines.append("  %-12s weight %-4.3g held %.2f of %d slots "
                     "(%d trials)"
                     % (name, entry["weight"], held,
                        report["fairness"]["slots"],
                        entry["trials_executed"]))
    if report["errors"]:
        lines.append("errors:")
        lines.extend("  " + error for error in report["errors"])
    return "\n".join(lines)


def run_load(args) -> int:
    """``repro-ft load`` entry point."""
    import sys
    try:
        url = _discover_url(args)
        workloads = dict(parse_workload_arg(text)
                         for text in args.workload)
        spec_override = None
        if args.spec_file:
            with open(args.spec_file) as handle:
                spec_override = json.load(handle)
        client = ServiceClient(url, timeout=args.timeout)
        client.health()
        driver = LoadDriver(client, workloads,
                            spec_override=spec_override)
        report = driver.run(sse_sample=not args.no_sse)
        violations = driver.check_fairness(
            report, tolerance=args.tolerance)
        report["fairness_violations"] = violations
        mismatches = []
        if args.verify:
            mismatches = driver.verify_results()
            report["verify_mismatches"] = mismatches
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(format_load_report(report))
            if violations:
                print("fairness violations:")
                for violation in violations:
                    print("  " + violation)
            if args.verify:
                print("verify: %s" % ("records byte-identical to "
                                      "in-process runs" if not
                                      mismatches else "MISMATCH"))
        failed = bool(violations) or bool(mismatches) \
            or bool(report["errors"]) \
            or any(entry["jobs_failed"]
                   for entry in report["tenants"].values())
        return 1 if failed else 0
    except (ConfigError, ServiceError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
