"""Campaign-as-a-service: a multi-tenant async front-end over the
campaign stack.

Layers, bottom up:

* :mod:`~repro.service.scheduler` — weighted max-min (water-filling)
  allocation of worker slots and adaptive replicate budget across
  tenants: :func:`weighted_max_min` / :func:`integral_allocation`,
  :class:`FairScheduler`, the blocking :class:`SlotPool` and the
  epoch-paced :class:`ReplicateBudget`;
* :mod:`~repro.service.jobs` — the :class:`Job` model (one submitted
  campaign, persisted under ``jobs/<id>/``) and the priority+quota
  :class:`JobQueue`;
* :mod:`~repro.service.events` — the per-job :class:`EventLog`: the
  campaign's typed event stream serialized to JSONL, tailed by the
  HTTP server's SSE endpoint;
* :mod:`~repro.service.backend` — :class:`ServiceBackend`: admission,
  the shared fairness-gated worker pool, per-job runners, cancel /
  drain / restart-recovery;
* :mod:`~repro.service.server` — the stdlib asyncio HTTP front-end
  (``repro-ft serve``): submit specs as JSON, poll status, stream SSE
  progress, fetch merged results;
* :mod:`~repro.service.loadgen` — the load generator
  (``repro-ft load``): static / dynamic / trace-replay workloads with
  per-tenant throughput, latency and fairness reporting.

Quickstart::

    repro-ft serve --data-dir /tmp/svc --slots 4 \
        --tenant alice:2 --tenant bob:1 &
    repro-ft load --url http://127.0.0.1:8123 \
        --tenant alice:static:3 --tenant bob:dynamic:2 --verify
"""

from .backend import SERVICE_POLL_INTERVAL, JobRunner, ServiceBackend
from .events import (EventLog, JOB_EVENT_KINDS, job_event)
from .jobs import (CANCELLED, DONE, FAILED, INTERRUPTED, JOB_STATES,
                   QUEUED, RUNNING, TERMINAL_STATES, Job, JobQueue,
                   new_job_id)
from .scheduler import (FairScheduler, ReplicateBudget, SlotPool,
                        TenantConfig, integral_allocation,
                        weighted_max_min)

__all__ = [
    "SERVICE_POLL_INTERVAL", "JobRunner", "ServiceBackend",
    "EventLog", "JOB_EVENT_KINDS", "job_event",
    "CANCELLED", "DONE", "FAILED", "INTERRUPTED", "JOB_STATES",
    "QUEUED", "RUNNING", "TERMINAL_STATES", "Job", "JobQueue",
    "new_job_id",
    "FairScheduler", "ReplicateBudget", "SlotPool", "TenantConfig",
    "integral_allocation", "weighted_max_min",
]
