"""HARE-style fair allocation of the service's shared resources.

The campaign service has two resources every tenant competes for:

* **worker slots** — the backend's execution slots (process-pool
  workers for trial-level jobs, shard-worker processes for
  orchestrated jobs); and
* **adaptive replicate budget** — the per-epoch number of *extra*
  replicates (beyond a plan's ``min_replicates`` seed) that adaptive
  jobs may spend refining their confidence intervals.

Both are apportioned by the same rule, **weighted max-min over
declared demand** (:func:`weighted_max_min`), the classic water-
filling allocation.  The guarantee, precisely:

    every tenant ``i`` receives ``a_i = min(d_i, w_i * theta)`` for a
    single water level ``theta``, where ``d_i`` is the tenant's
    declared demand and ``w_i`` its configured weight.  Consequences:
    (1) *demand cap* — nobody gets more than they asked for;
    (2) *work conservation* — the full capacity is handed out
    whenever total demand covers it;
    (3) *fair share floor* — a backlogged tenant (``a_i < d_i``)
    never receives a smaller weight-normalised allocation than any
    other tenant: increasing its share is impossible without taking
    from someone at or below the same normalised level.

:func:`integral_allocation` rounds the water-filling result to whole
slots by largest remainder (weight, then tenant order break ties), so
the slot pool can grant indivisible workers while staying within one
slot of the fractional ideal.

:class:`FairScheduler` wraps the allocator with live tenant state —
weights, quotas, per-(tenant, consumer) demands, in-flight grants and
the busy-time integrals the fairness report is built from — and is
the single decision point the :class:`SlotPool` consults whenever a
slot frees up.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError

#: Numerical slack for the water-filling comparisons; demands and
#: capacities are small integers in practice, so this is generous.
_EPSILON = 1e-9


def weighted_max_min(capacity: float, demands: Sequence[float],
                     weights: Optional[Sequence[float]] = None
                     ) -> List[float]:
    """Weighted max-min (water-filling) allocation of one resource.

    Returns one allocation per demand, in order.  ``weights`` defaults
    to all-1 (plain max-min).  Demands must be >= 0 and weights > 0;
    a non-positive capacity allocates nothing.
    """
    n = len(demands)
    if weights is None:
        weights = [1.0] * n
    if len(weights) != n:
        raise ConfigError("weights and demands must align (%d vs %d)"
                          % (len(weights), n))
    for demand in demands:
        if demand < 0:
            raise ConfigError("demands must be >= 0, got %r" % (demand,))
    for weight in weights:
        if weight <= 0:
            raise ConfigError("weights must be > 0, got %r" % (weight,))
    allocation = [0.0] * n
    if n == 0 or capacity <= 0:
        return allocation
    # Raise the water level theta; tenant i saturates at d_i / w_i.
    order = sorted(range(n), key=lambda i: demands[i] / weights[i])
    remaining = float(capacity)
    active_weight = float(sum(weights))
    level = 0.0
    for position, index in enumerate(order):
        saturation = demands[index] / weights[index]
        cost = (saturation - level) * active_weight
        if cost <= remaining + _EPSILON:
            remaining -= cost
            level = saturation
            allocation[index] = float(demands[index])
            active_weight -= weights[index]
        else:
            level += remaining / active_weight
            for rest in order[position:]:
                allocation[rest] = weights[rest] * level
            break
    return allocation


def integral_allocation(capacity: int, demands: Sequence[int],
                        weights: Optional[Sequence[float]] = None
                        ) -> List[int]:
    """Whole-unit weighted max-min: floor the water-filling result,
    then hand the leftover units out by largest fractional remainder
    (ties: heavier weight, then earlier index), never past a demand.

    Every allocation is within one unit of the fractional ideal, the
    demand cap and work conservation hold exactly.
    """
    fractional = weighted_max_min(capacity, demands, weights)
    if weights is None:
        weights = [1.0] * len(demands)
    base = [min(int(value + _EPSILON), demand)
            for value, demand in zip(fractional, demands)]
    target = min(int(capacity), sum(demands))
    leftover = target - sum(base)
    if leftover > 0:
        by_remainder = sorted(
            range(len(demands)),
            key=lambda i: (-(fractional[i] - base[i]), -weights[i], i))
        for index in by_remainder:
            if leftover == 0:
                break
            if base[index] < demands[index]:
                base[index] += 1
                leftover -= 1
    return base


@dataclass
class TenantConfig:
    """Declared scheduling identity of one tenant.

    ``weight`` scales the tenant's fair share; ``max_queued`` and
    ``max_running`` are admission quotas on whole jobs (``None`` =
    unlimited).
    """

    name: str
    weight: float = 1.0
    max_queued: Optional[int] = None
    max_running: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if not isinstance(self.weight, (int, float)) \
                or isinstance(self.weight, bool) or self.weight <= 0:
            raise ConfigError("tenant %r weight must be > 0, got %r"
                              % (self.name, self.weight))
        for label in ("max_queued", "max_running"):
            value = getattr(self, label)
            if value is not None and (
                    not isinstance(value, int)
                    or isinstance(value, bool) or value < 1):
                raise ConfigError("tenant %r %s must be an integer >= 1 "
                                  "or None, got %r"
                                  % (self.name, label, value))

    def to_dict(self) -> dict:
        data = {"name": self.name, "weight": self.weight}
        if self.max_queued is not None:
            data["max_queued"] = self.max_queued
        if self.max_running is not None:
            data["max_running"] = self.max_running
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TenantConfig":
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigError("unknown tenant config fields: %s"
                              % sorted(unknown))
        return cls(**data)


class _TenantState:
    """Live accounting for one tenant (scheduler-internal)."""

    __slots__ = ("config", "in_flight", "trials_executed",
                 "busy_seconds", "demand_seconds", "_last_stamp")

    def __init__(self, config: TenantConfig, now: float):
        self.config = config
        self.in_flight = 0              # slots currently granted
        self.trials_executed = 0        # lifetime completed trials
        self.busy_seconds = 0.0         # integral of in_flight over time
        self.demand_seconds = 0.0       # integral of min(demand, 1)>0
        self._last_stamp = now

    def integrate(self, now: float, demand: int):
        elapsed = now - self._last_stamp
        if elapsed > 0:
            self.busy_seconds += elapsed * self.in_flight
            if demand > 0 or self.in_flight > 0:
                self.demand_seconds += elapsed
        self._last_stamp = now


class FairScheduler:
    """Decides, at every grant point, which tenant a slot belongs to.

    Consumers (job runners) declare demand with :meth:`set_demand`
    under a ``(tenant, consumer)`` key; the scheduler sums demands per
    tenant, computes the integral weighted max-min allocation over the
    slot capacity, and :meth:`grant` hands a slot to the caller's
    tenant only while the tenant is under its allocation.  All methods
    are thread-safe; :class:`SlotPool` adds the blocking layer.
    """

    def __init__(self, slots: int,
                 tenants: Sequence[TenantConfig] = (),
                 clock=time.monotonic):
        if not isinstance(slots, int) or isinstance(slots, bool) \
                or slots < 1:
            raise ConfigError("slots must be an integer >= 1, got %r"
                              % (slots,))
        self.slots = slots
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}
        self._demands: Dict[Tuple[str, str], int] = {}
        for config in tenants:
            self.register(config)

    # -- tenant registry ---------------------------------------------------

    def register(self, config: TenantConfig) -> TenantConfig:
        """Declare (or re-declare) a tenant; returns its config."""
        with self._lock:
            state = self._tenants.get(config.name)
            if state is None:
                self._tenants[config.name] = _TenantState(
                    config, self._clock())
            else:
                state.config = config
        return config

    def tenant(self, name: str) -> TenantConfig:
        """The tenant's config, auto-registering defaults on first use."""
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = _TenantState(TenantConfig(name=name),
                                     self._clock())
                self._tenants[name] = state
            return state.config

    def tenant_names(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    # -- demand + allocation ----------------------------------------------

    def set_demand(self, tenant: str, consumer: str, demand: int):
        """Declare how many slots one consumer of ``tenant`` could use
        right now (0 removes the entry)."""
        self.tenant(tenant)
        with self._lock:
            # Integrate the elapsed window under the OLD demands
            # first, or the idle gap before a declaration would be
            # booked as time spent demanding.
            self._tick_locked()
            key = (tenant, consumer)
            if demand <= 0:
                self._demands.pop(key, None)
            else:
                self._demands[key] = demand

    def _demand_by_tenant_locked(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for (tenant, _consumer), demand in self._demands.items():
            totals[tenant] = totals.get(tenant, 0) + demand
        return totals

    def _allocation_locked(self) -> Dict[str, int]:
        demands = self._demand_by_tenant_locked()
        # In-flight grants count as demand even if the consumer has
        # already lowered its declaration — a granted slot must stay
        # covered by the allocation until released.
        names = sorted(set(demands)
                       | {name for name, state in self._tenants.items()
                          if state.in_flight > 0})
        if not names:
            return {}
        vector = [max(demands.get(name, 0),
                      self._tenants[name].in_flight) for name in names]
        weights = [self._tenants[name].config.weight for name in names]
        allocation = integral_allocation(self.slots, vector, weights)
        return dict(zip(names, allocation))

    def allocation(self) -> Dict[str, int]:
        """Current integral slot allocation per demanding tenant."""
        with self._lock:
            return self._allocation_locked()

    def _tick_locked(self):
        now = self._clock()
        demands = self._demand_by_tenant_locked()
        for name, state in self._tenants.items():
            state.integrate(now, demands.get(name, 0))

    # -- grants ------------------------------------------------------------

    def grant(self, tenant: str) -> bool:
        """Try to hand one slot to ``tenant``; True on success.

        A grant succeeds while (a) a physical slot is free and (b) the
        tenant is under its current weighted max-min allocation.  The
        allocation is recomputed from live demand on every call, so
        slots freed by a departing tenant flow to the backlogged ones
        immediately.
        """
        self.tenant(tenant)
        with self._lock:
            self._tick_locked()
            state = self._tenants[tenant]
            total_in_flight = sum(s.in_flight
                                  for s in self._tenants.values())
            if total_in_flight >= self.slots:
                return False
            allocation = self._allocation_locked()
            if state.in_flight >= allocation.get(tenant, 0):
                return False
            state.in_flight += 1
            return True

    def release(self, tenant: str, executed_trials: int = 0):
        """Return one slot; ``executed_trials`` feeds the report."""
        with self._lock:
            self._tick_locked()
            state = self._tenants.get(tenant)
            if state is None or state.in_flight <= 0:
                raise ConfigError(
                    "release without a matching grant for tenant %r"
                    % tenant)
            state.in_flight -= 1
            state.trials_executed += executed_trials

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict:
        """The fairness report: per-tenant weights, live demand and
        allocation, and the busy-time integrals.

        ``busy_seconds`` is the integral of granted slots over time;
        ``demand_seconds`` the time the tenant had work wanting slots.
        ``busy_seconds / demand_seconds`` is therefore the average
        number of slots the tenant actually held while it wanted any —
        the number the no-starvation acceptance check compares against
        the weighted max-min share.
        """
        with self._lock:
            self._tick_locked()
            demands = self._demand_by_tenant_locked()
            allocation = self._allocation_locked()
            tenants = {}
            for name in sorted(self._tenants):
                state = self._tenants[name]
                tenants[name] = {
                    "weight": state.config.weight,
                    "demand": demands.get(name, 0),
                    "allocation": allocation.get(name, 0),
                    "in_flight": state.in_flight,
                    "trials_executed": state.trials_executed,
                    "busy_seconds": round(state.busy_seconds, 6),
                    "demand_seconds": round(state.demand_seconds, 6),
                }
            return {"slots": self.slots, "tenants": tenants}


class SlotPool:
    """Blocking facade over :class:`FairScheduler` grants.

    Runners acquire slots (optionally waiting), execute one unit of
    work per slot and release.  Condition-variable wakeups happen on
    every release and demand change, so a freed slot is re-granted to
    whichever waiting tenant the scheduler now favours.
    """

    def __init__(self, scheduler: FairScheduler):
        self.scheduler = scheduler
        self._condition = threading.Condition()

    def set_demand(self, tenant: str, consumer: str, demand: int):
        self.scheduler.set_demand(tenant, consumer, demand)
        with self._condition:
            self._condition.notify_all()

    def acquire(self, tenant: str, timeout: Optional[float] = None
                ) -> bool:
        """Take one slot for ``tenant``; False on timeout (a timeout
        of 0 is a non-blocking attempt)."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._condition:
            while True:
                if self.scheduler.grant(tenant):
                    return True
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._condition.wait(remaining)
                else:
                    self._condition.wait()

    def release(self, tenant: str, executed_trials: int = 0):
        self.scheduler.release(tenant,
                               executed_trials=executed_trials)
        with self._condition:
            self._condition.notify_all()


class ReplicateBudget:
    """Per-epoch pacing of adaptive *extra* replicates across tenants.

    MEEK's framing: error-detection capacity is a shared resource.
    Here the capacity is ``budget`` extra replicates per ``epoch``
    seconds; tenants running adaptive jobs declare how many extras
    they could spend (:meth:`set_demand`) and :meth:`try_take` lets a
    trial proceed only while the tenant is within its weighted
    max-min share of the epoch's budget.  A refusal is pacing, not a
    cap — the trial waits for the next epoch, so the final record set
    is unchanged.  ``budget=None`` disables pacing entirely.
    """

    def __init__(self, scheduler: FairScheduler,
                 budget: Optional[int] = None, epoch: float = 1.0,
                 clock=time.monotonic):
        if budget is not None and (
                not isinstance(budget, int) or isinstance(budget, bool)
                or budget < 1):
            raise ConfigError("replicate budget must be an integer "
                              ">= 1 or None, got %r" % (budget,))
        if epoch <= 0:
            raise ConfigError("epoch must be > 0")
        self.scheduler = scheduler
        self.budget = budget
        self.epoch = epoch
        self._clock = clock
        self._lock = threading.Lock()
        self._epoch_start = clock()
        self._taken: Dict[str, int] = {}
        self._demands: Dict[str, int] = {}

    def set_demand(self, tenant: str, demand: int):
        with self._lock:
            if demand <= 0:
                self._demands.pop(tenant, None)
            else:
                self._demands[tenant] = demand

    def _roll_epoch_locked(self, now: float):
        if now - self._epoch_start >= self.epoch:
            self._epoch_start = now
            self._taken.clear()

    def try_take(self, tenant: str) -> bool:
        """Spend one extra-replicate token; always True when unpaced."""
        if self.budget is None:
            return True
        with self._lock:
            self._roll_epoch_locked(self._clock())
            names = sorted(set(self._demands) | {tenant})
            demands = [max(self._demands.get(name, 0),
                           self._taken.get(name, 0)
                           + (1 if name == tenant else 0))
                       for name in names]
            weights = [self.scheduler.tenant(name).weight
                       for name in names]
            allocation = dict(zip(names, integral_allocation(
                self.budget, demands, weights)))
            if self._taken.get(tenant, 0) >= allocation.get(tenant, 0):
                return False
            self._taken[tenant] = self._taken.get(tenant, 0) + 1
            return True
