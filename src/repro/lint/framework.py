"""Rule framework of ``repro.lint``: findings, rules, suppressions.

The analyzer is a plain :mod:`ast` walk — no third-party dependency —
organised as a registry of :class:`Rule` subclasses.  Each rule sees
every parsed source file once (:meth:`Rule.check_file`) and gets one
project-wide pass at the end (:meth:`Rule.finalize`) for checks that
need cross-file state (import graphs, protocol registries).

Findings carry a stable identity ``(rule, path, message)`` —
deliberately *without* the line number, so a committed baseline keeps
matching a grandfathered finding while unrelated edits shift it around
the file.

Suppressions are inline comments::

    x = time.time()          # repro-lint: disable=determinism
    # repro-lint: disable=lock-discipline -- monotonic stamp, benign race
    self._seen = now

A comment suppresses the named rule(s) on its own line; a standalone
comment (nothing but whitespace before the ``#``) also covers the
following line.  ``disable=all`` silences every rule.  Everything
after ``--`` is the human justification and is ignored by the parser
but expected by reviewers.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

#: Severities: an ``error`` fails the lint run; a ``warning`` is
#: reported but (like a baselined finding) does not fail it.
ERROR = "error"
WARNING = "warning"

SUPPRESS_ALL = "all"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str           # posix path relative to the lint root
    line: int
    message: str
    severity: str = ERROR

    @property
    def identity(self):
        """Baseline-matching key (line numbers excluded on purpose)."""
        return (self.rule, self.path, self.message)

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "severity": self.severity}

    def render(self) -> str:
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule names disabled there (see module doc)."""
    disabled: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return disabled
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if not match:
            continue
        rules = {name.strip() for name in match.group(1).split(",")}
        line = token.start[0]
        disabled.setdefault(line, set()).update(rules)
        standalone = not token.line[:token.start[1]].strip()
        if standalone:
            disabled.setdefault(line + 1, set()).update(rules)
    return disabled


@dataclass
class SourceFile:
    """One parsed source file plus its lint metadata."""

    path: str           # posix path relative to the lint root
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]]

    @property
    def module(self) -> str:
        """Dotted module name, e.g. ``repro.uarch.rob``."""
        name = self.path[:-3] if self.path.endswith(".py") else self.path
        parts = name.split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return bool(rules) and (rule in rules or SUPPRESS_ALL in rules)


class LintContext:
    """Everything a rule may look at: the full parsed file set."""

    def __init__(self, root: str, files: List[SourceFile]):
        self.root = root
        self.files = files
        self._by_path = {file.path: file for file in files}

    def file(self, path: str) -> Optional[SourceFile]:
        return self._by_path.get(path)


class Rule:
    """Base class: subclass, set the class attributes, register."""

    #: Stable rule id used by --rule filters, suppressions, baselines.
    name = ""
    description = ""
    severity = ERROR

    def check_file(self, context: LintContext,
                   file: SourceFile) -> Iterable[Finding]:
        return ()

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        return ()

    def finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(rule=self.name, path=path, line=line,
                       message=message, severity=self.severity)


#: name -> Rule subclass, in registration order.
RULE_REGISTRY: Dict[str, type] = {}


def register_rule(cls):
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.name:
        raise ValueError("rule %r has no name" % cls)
    if cls.name in RULE_REGISTRY:
        raise ValueError("duplicate rule name %r" % cls.name)
    RULE_REGISTRY[cls.name] = cls
    return cls


# -- shared AST utilities --------------------------------------------------

def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> absolute dotted name for plain (level-0) imports.

    ``import time`` -> {"time": "time"}; ``from datetime import
    datetime as dt`` -> {"dt": "datetime.datetime"}.  Relative imports
    are skipped here (see :func:`resolved_imports` for those).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = "%s.%s" % (node.module, alias.name)
    return aliases


def resolved_imports(file: SourceFile) -> Set[str]:
    """Every absolute dotted name this module imports, with relative
    imports resolved against the module's own package."""
    parts = file.module.split(".")
    package = parts[:-1]
    resolved: Set[str] = set()
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                resolved.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = package[:len(package) - (node.level - 1)] \
                    if node.level <= len(package) + 1 else []
                base = ".".join(anchor)
                if node.module:
                    base = "%s.%s" % (base, node.module) if base \
                        else node.module
            for alias in node.names:
                if alias.name == "*":
                    resolved.add(base)
                else:
                    resolved.add("%s.%s" % (base, alias.name)
                                 if base else alias.name)
    return resolved


def call_name(node: ast.Call,
              aliases: Dict[str, str]) -> Optional[str]:
    """The dotted name a call resolves to through the import table,
    or None for dynamic receivers (``self.x()``, ``obj.m()``...)."""
    chain: List[str] = []
    func = node.func
    while isinstance(func, ast.Attribute):
        chain.append(func.attr)
        func = func.value
    if not isinstance(func, ast.Name):
        return None
    chain.append(func.id)
    chain.reverse()
    chain[0] = aliases.get(chain[0], chain[0])
    return ".".join(chain)


def const_str(node) -> Optional[str]:
    """The value of a string-constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
