"""Determinism rule: no wall-clock, entropy, or unordered iteration
inside the deterministic core.

Byte-identical replay (the chaos harness), key-for-key resume, and
adaptive/fixed-plan equivalence all assume that a trial's record is a
pure function of its key.  Anything that reads the host — wall clock,
OS entropy, the global (unseeded) RNG, object identities, set
iteration order under hash randomisation — silently breaks that
contract, usually in a way only an expensive differential run trips.

Scope: the simulator core and the spec -> trial -> record path.  The
service and resilience layers legitimately read the clock (leases,
backoff, SSE timestamps) and are deliberately out of scope; the frozen
``uarch/reference.py`` is owned by the ``frozen-oracle`` rule instead.
"""

from __future__ import annotations

import ast

from .framework import (ERROR, Rule, call_name, import_aliases,
                        register_rule)

#: Path prefixes (relative to the lint root) forming the deterministic
#: core.  Everything under them must be replay-pure.
DETERMINISTIC_PREFIXES = (
    "repro/uarch/",
    "repro/faults/",
    "repro/core/",
    "repro/isa/",
    "repro/branch/",
    "repro/program/",
    "repro/functional/",
    "repro/workloads/",
    "repro/ecc/",
)

#: Individual campaign-layer modules on the spec -> trial -> record
#: path.  The rest of ``campaign/`` (session loop, orchestrator,
#: stores) legitimately polls clocks and is excluded.
DETERMINISTIC_MODULES = (
    "repro/campaign/spec.py",
    "repro/campaign/outcome.py",
    "repro/campaign/golden.py",
    "repro/campaign/aggregate.py",
    "repro/campaign/adaptive.py",
    "repro/campaign/engine.py",
    "repro/campaign/checkpoint.py",
)

#: The frozen differential oracle — guarded by ``frozen-oracle``.
EXCLUDED = ("repro/uarch/reference.py",)

#: Calls that read the host clock or entropy pool.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic",
    "time.monotonic_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
})

#: Module-level :mod:`random` functions — they draw from the global,
#: process-lifetime RNG, so results depend on everything drawn before.
GLOBAL_RANDOM_CALLS = frozenset(
    "random." + name for name in (
        "random", "randint", "randrange", "randbytes", "choice",
        "choices", "shuffle", "sample", "uniform", "getrandbits",
        "gauss", "normalvariate", "betavariate", "expovariate",
        "triangular", "vonmisesvariate", "paretovariate", "seed"))

#: Consumers for which set iteration order cannot leak into output.
_ORDER_SAFE_CALLS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set",
    "frozenset"})


def in_scope(path: str) -> bool:
    if path in EXCLUDED:
        return False
    return path in DETERMINISTIC_MODULES \
        or any(path.startswith(prefix)
               for prefix in DETERMINISTIC_PREFIXES)


def _is_set_expr(node, aliases) -> bool:
    """Whether ``node`` evaluates to a set/frozenset (order-unstable)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node, aliases)
        if name in ("set", "frozenset"):
            return True
        if name in ("sorted",):
            return False
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # Set algebra (a | b, a - b) over set operands; only flag when
        # an operand is itself recognisably a set expression.
        return _is_set_expr(node.left, aliases) \
            or _is_set_expr(node.right, aliases)
    return False


@register_rule
class DeterminismRule(Rule):
    """Wall-clock, entropy, and iteration-order hazards in the core."""

    name = "determinism"
    description = ("no wall-clock / OS entropy / global RNG / "
                   "id()-keys / unordered set iteration in the "
                   "deterministic core")
    severity = ERROR

    def check_file(self, context, file):
        if not in_scope(file.path):
            return
        aliases = import_aliases(file.tree)
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(file, node, aliases)
            elif isinstance(node, ast.Dict):
                yield from self._check_id_keys(
                    file, (key for key in node.keys
                           if key is not None), aliases,
                    "dict key")
            elif isinstance(node, ast.DictComp):
                yield from self._check_id_keys(
                    file, (node.key,), aliases, "dict key")
            elif isinstance(node, ast.Set):
                yield from self._check_id_keys(
                    file, node.elts, aliases, "set element")
            elif isinstance(node, ast.Subscript):
                yield from self._check_id_keys(
                    file, (node.slice,), aliases, "subscript key")
            elif isinstance(node, (ast.For, ast.comprehension)):
                iter_node = node.iter
                if _is_set_expr(iter_node, aliases):
                    line = getattr(node, "lineno", iter_node.lineno)
                    yield self.finding(
                        file.path, line,
                        "iteration over a set has no stable order "
                        "under hash randomisation; wrap it in "
                        "sorted(...) before it can feed persisted "
                        "output")

    def _check_call(self, file, node, aliases):
        name = call_name(node, aliases)
        if name is None:
            return
        if name in WALL_CLOCK_CALLS:
            yield self.finding(
                file.path, node.lineno,
                "%s() reads the host clock/entropy inside the "
                "deterministic core; derive values from trial keys "
                "or pass them in from the service layer" % name)
        elif name in GLOBAL_RANDOM_CALLS:
            yield self.finding(
                file.path, node.lineno,
                "%s() draws from the global unseeded RNG; use a "
                "random.Random(seed) derived from the trial key"
                % name)
        elif name in ("random.Random", "random.SystemRandom") \
                and not node.args and not node.keywords:
            yield self.finding(
                file.path, node.lineno,
                "%s() without a seed is entropy-seeded; pass an "
                "explicit seed derived from the trial key" % name)
        elif name in ("json.dumps", "json.dump"):
            sort_keys = next(
                (kw for kw in node.keywords
                 if kw.arg == "sort_keys"), None)
            stable = sort_keys is not None and isinstance(
                sort_keys.value, ast.Constant) \
                and sort_keys.value.value is True
            if not stable:
                yield self.finding(
                    file.path, node.lineno,
                    "%s() without sort_keys=True in the deterministic "
                    "core: key order leaks into persisted bytes"
                    % name)

    def _check_id_keys(self, file, nodes, aliases, where):
        for node in nodes:
            if isinstance(node, ast.Call) \
                    and call_name(node, aliases) == "id":
                yield self.finding(
                    file.path, node.lineno,
                    "id(...) used as a %s: object identities vary "
                    "per process and cannot key anything replayable"
                    % where)
