"""Lint driver: collect sources, run the registry, diff the baseline.

The default lint root is the ``src`` directory that contains the
``repro`` package, so finding paths look like
``repro/service/backend.py`` regardless of the process working
directory.  Tests point ``root`` at fixture trees instead.

The **baseline** is a committed JSON list of finding identities
``(rule, path, message)``.  Findings present in the baseline are
reported but do not fail the run — that is how a pre-existing,
justified violation is grandfathered without an inline suppression.
Identities exclude line numbers on purpose, so unrelated edits that
shift a grandfathered finding around a file do not un-baseline it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigError
from .framework import (ERROR, Finding, LintContext, SourceFile,
                        RULE_REGISTRY, parse_suppressions)

import ast

#: Directory that contains the ``repro`` package.
DEFAULT_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

#: The committed baseline shipped with the analyzer.
DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "data",
                                "baseline.json")

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache"})


def collect_files(root: str) -> List[SourceFile]:
    """Parse every ``*.py`` under ``root`` (sorted, posix-relative)."""
    files: List[SourceFile] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d not in _SKIP_DIRS)
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            full = os.path.join(dirpath, filename)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, encoding="utf-8") as handle:
                source = handle.read()
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                raise ConfigError(
                    "cannot lint %s: %s" % (rel, exc)) from exc
            files.append(SourceFile(
                path=rel, source=source, tree=tree,
                suppressions=parse_suppressions(source)))
    if not files:
        raise ConfigError("no python sources under %r" % root)
    return files


def build_context(root: str,
                  files: Optional[List[SourceFile]] = None
                  ) -> LintContext:
    return LintContext(root, files if files is not None
                       else collect_files(root))


def load_baseline(path: Optional[str] = None
                  ) -> Set[Tuple[str, str, str]]:
    """Finding identities grandfathered by the baseline file."""
    path = path or DEFAULT_BASELINE
    if not os.path.exists(path):
        return set()
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except ValueError as exc:
        raise ConfigError("bad baseline %s: %s" % (path, exc)) from exc
    entries = data.get("findings", data) if isinstance(data, dict) \
        else data
    baseline: Set[Tuple[str, str, str]] = set()
    for entry in entries:
        try:
            baseline.add((entry["rule"], entry["path"],
                          entry["message"]))
        except (TypeError, KeyError) as exc:
            raise ConfigError(
                "bad baseline entry in %s: %r" % (path, entry)
            ) from exc
    return baseline


def write_baseline(findings: Iterable[Finding], path: str) -> int:
    """Grandfather ``findings``; returns the number written."""
    entries = sorted(
        {(f.rule, f.path, f.message) for f in findings
         if f.severity == ERROR})
    payload = {"findings": [
        {"rule": rule, "path": fpath, "message": message}
        for rule, fpath, message in entries]}
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    root: str
    findings: List[Finding]
    baseline: Set[Tuple[str, str, str]] = field(default_factory=set)

    @property
    def failures(self) -> List[Finding]:
        """Error-severity findings not covered by the baseline."""
        return [f for f in self.findings
                if f.severity == ERROR
                and f.identity not in self.baseline]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings
                if f.identity in self.baseline]

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "root": self.root,
            "ok": self.ok,
            "counts": {
                "findings": len(self.findings),
                "failures": len(self.failures),
                "baselined": len(self.baselined),
            },
            "findings": [
                dict(f.as_dict(),
                     baselined=f.identity in self.baseline)
                for f in self.findings],
        }


def select_rules(rule_names: Optional[Sequence[str]] = None):
    """Instantiate the requested rules (all when names is falsy)."""
    if not rule_names:
        return [cls() for cls in RULE_REGISTRY.values()]
    unknown = [name for name in rule_names
               if name not in RULE_REGISTRY]
    if unknown:
        raise ConfigError(
            "unknown lint rule(s) %s; known: %s"
            % (", ".join(sorted(unknown)),
               ", ".join(RULE_REGISTRY)))
    return [RULE_REGISTRY[name]() for name in rule_names]


def run_lint(root: Optional[str] = None,
             rule_names: Optional[Sequence[str]] = None,
             baseline_path: Optional[str] = None,
             files: Optional[List[SourceFile]] = None) -> LintReport:
    """Run the selected rules over ``root`` and diff the baseline."""
    root = root or DEFAULT_ROOT
    context = build_context(root, files)
    findings: List[Finding] = []

    def admit(finding: Finding):
        source = context.file(finding.path)
        if source is not None and source.suppressed(
                finding.rule, finding.line):
            return
        findings.append(finding)

    for rule in select_rules(rule_names):
        for source in context.files:
            for finding in rule.check_file(context, source):
                admit(finding)
        for finding in rule.finalize(context):
            admit(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return LintReport(root=root, findings=findings,
                      baseline=load_baseline(baseline_path))
