"""Wire-protocol parity rule: serializers round-trip, kinds register.

Two classes of drift this catches at review time instead of in a
cross-version replay:

* **to_dict / from_dict parity** — every class that defines
  ``to_dict`` must define ``from_dict``, and every key the serializer
  can emit must be consumed by the parser (explicit ``data["k"]`` /
  ``.get`` / ``.pop`` / ``"k" in data`` access, a ``known = {...}``
  key set, or the ``cls(**data)`` + ``__dataclass_fields__`` idiom,
  which covers every dataclass field).  A key emitted but never
  parsed is a field that silently drops on the next restart-resume.
* **event-kind registry** — every kind fed to ``CampaignEvent``,
  ``_emit`` or ``job_event`` (and every ``.kind == "..."`` check)
  must be a member of one of the kind registries
  (``EVENT_KINDS`` / ``SHARD_EVENT_KINDS`` / ``JOB_EVENT_KINDS``),
  and every registered kind must actually be emitted somewhere.

Key extraction is deliberately conservative: a serializer that builds
keys dynamically marks the class unanalyzable and the parity check is
skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .framework import Rule, const_str, register_rule

#: (file, registry tuple name) triples the kind check reads.  A file
#: absent from the linted tree skips its registry (fixture trees).
KIND_REGISTRIES = (
    ("repro/campaign/api.py", "EVENT_KINDS"),
    ("repro/campaign/orchestrator.py", "SHARD_EVENT_KINDS"),
    ("repro/service/events.py", "JOB_EVENT_KINDS"),
)

#: Call shapes whose first positional argument is an event kind.
_KIND_CALL_NAMES = ("_emit", "job_event")


def _dataclass_fields(node: ast.ClassDef) -> Optional[Set[str]]:
    """Annotated field names when ``node`` is a dataclass, else None."""
    def is_dataclass_decorator(dec) -> bool:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) \
            else getattr(target, "id", "")
        return name == "dataclass"
    if not any(is_dataclass_decorator(dec)
               for dec in node.decorator_list):
        return None
    fields = set()
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            fields.add(stmt.target.id)
    return fields


def _emitted_keys(func: ast.FunctionDef) -> Tuple[Set[str], bool]:
    """Keys ``to_dict`` can emit; second value True when extraction is
    incomplete (dynamic keys) and the parity check must be skipped."""
    returned: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Return) \
                and isinstance(node.value, ast.Name):
            returned.add(node.value.id)
    keys: Set[str] = set()
    dynamic = False

    def take_dict(dict_node: ast.Dict):
        nonlocal dynamic
        for key in dict_node.keys:
            value = const_str(key)
            if value is None:
                dynamic = True
            else:
                keys.add(value)

    for node in ast.walk(func):
        if isinstance(node, ast.Return) \
                and isinstance(node.value, ast.Dict):
            take_dict(node.value)
        elif isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Dict) \
                and any(isinstance(t, ast.Name) and t.id in returned
                        for t in node.targets):
            take_dict(node.value)
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, ast.Store) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in returned:
            value = const_str(node.slice)
            if value is None:
                dynamic = True
            else:
                keys.add(value)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in returned:
            if node.func.attr == "setdefault" and node.args:
                value = const_str(node.args[0])
                keys.add(value) if value is not None else None
            elif node.func.attr == "update":
                if node.args and isinstance(node.args[0], ast.Dict):
                    take_dict(node.args[0])
                elif node.args:
                    dynamic = True
                for kw in node.keywords:
                    if kw.arg is None:
                        dynamic = True
                    else:
                        keys.add(kw.arg)
    return keys, dynamic


def _parsed_keys(func: ast.FunctionDef,
                 fields: Optional[Set[str]]) -> Tuple[Set[str], bool]:
    """Keys ``from_dict`` consumes; second value True when the parser
    accepts arbitrary keys (``cls(**data)`` over dataclass fields)."""
    keys: Set[str] = set()
    covers_fields = False
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) \
                and node.attr == "__dataclass_fields__":
            covers_fields = True
        elif isinstance(node, ast.Call):
            if any(kw.arg is None for kw in node.keywords):
                covers_fields = True        # cls(**data)
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("get", "pop") \
                    and node.args:
                value = const_str(node.args[0])
                if value is not None:
                    keys.add(value)
        elif isinstance(node, ast.Subscript) \
                and not isinstance(node.ctx, ast.Store):
            value = const_str(node.slice)
            if value is not None:
                keys.add(value)
        elif isinstance(node, ast.Compare) \
                and any(isinstance(op, (ast.In, ast.NotIn))
                        for op in node.ops):
            value = const_str(node.left)
            if value is not None:
                keys.add(value)
        elif isinstance(node, ast.Set):
            for elt in node.elts:
                value = const_str(elt)
                if value is not None:
                    keys.add(value)
    if covers_fields:
        if fields:
            keys |= fields
        else:
            return keys, True       # **data into a non-dataclass
    return keys, False


def _module_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` string constants."""
    constants: Dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            value = const_str(stmt.value)
            if value is not None:
                constants[stmt.targets[0].id] = value
    return constants


def _terminal_name(func) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    return getattr(func, "id", "")


@register_rule
class WireParityRule(Rule):
    """Serializer round-trip and event-kind registry parity."""

    name = "wire-parity"
    description = ("every to_dict has a from_dict covering its keys; "
                   "every emitted event kind is registered and every "
                   "registered kind emitted")

    def check_file(self, context, file):
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {stmt.name: stmt for stmt in node.body
                       if isinstance(stmt, ast.FunctionDef)}
            to_dict = methods.get("to_dict")
            if to_dict is None:
                continue
            from_dict = methods.get("from_dict")
            if from_dict is None:
                yield self.finding(
                    file.path, to_dict.lineno,
                    "class %s defines to_dict but no from_dict: the "
                    "wire form cannot round-trip" % node.name)
                continue
            emitted, dynamic = _emitted_keys(to_dict)
            if dynamic:
                continue
            parsed, parses_all = _parsed_keys(
                from_dict, _dataclass_fields(node))
            if parses_all:
                continue
            missing = sorted(emitted - parsed)
            if missing:
                yield self.finding(
                    file.path, from_dict.lineno,
                    "%s.from_dict never reads key%s %s emitted by "
                    "to_dict — the field silently drops on parse"
                    % (node.name, "" if len(missing) == 1 else "s",
                       ", ".join(repr(key) for key in missing)))

    # -- event-kind registry ----------------------------------------------

    def finalize(self, context):
        registries: Dict[str, Tuple[str, int]] = {}
        present = False
        for path, name in KIND_REGISTRIES:
            file = context.file(path)
            if file is None:
                continue
            present = True
            constants = _module_constants(file.tree)
            tuple_node = None
            for stmt in file.tree.body:
                if isinstance(stmt, ast.Assign) \
                        and len(stmt.targets) == 1 \
                        and isinstance(stmt.targets[0], ast.Name) \
                        and stmt.targets[0].id == name \
                        and isinstance(stmt.value,
                                       (ast.Tuple, ast.List, ast.Set)):
                    tuple_node = stmt
                    break
            if tuple_node is None:
                yield self.finding(
                    path, 1,
                    "expected the %s kind registry tuple in this "
                    "module" % name)
                continue
            for elt in tuple_node.value.elts:
                kind = const_str(elt)
                if kind is None and isinstance(elt, ast.Name):
                    kind = constants.get(elt.id)
                if kind is not None:
                    registries[kind] = (path, tuple_node.lineno)
        if not present:
            return

        # Global name -> kind-string map (ambiguous names dropped).
        global_constants: Dict[str, Optional[str]] = {}
        for file in context.files:
            for key, value in _module_constants(file.tree).items():
                if key in global_constants \
                        and global_constants[key] != value:
                    global_constants[key] = None
                else:
                    global_constants[key] = value

        def resolve(node) -> List[str]:
            if isinstance(node, ast.IfExp):
                return resolve(node.body) + resolve(node.orelse)
            value = const_str(node)
            if value is not None:
                return [value]
            name = _terminal_name(node) if isinstance(
                node, (ast.Name, ast.Attribute)) else ""
            value = global_constants.get(name)
            return [value] if value else []

        emitted: Set[str] = set()
        used: List[Tuple[str, str, int]] = []   # (kind, path, line)
        for file in context.files:
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Call):
                    terminal = _terminal_name(node.func)
                    kind_node = None
                    if terminal in _KIND_CALL_NAMES and node.args:
                        kind_node = node.args[0]
                    elif terminal == "CampaignEvent":
                        kind_node = next(
                            (kw.value for kw in node.keywords
                             if kw.arg == "kind"), None)
                    if kind_node is None:
                        continue
                    for kind in resolve(kind_node):
                        emitted.add(kind)
                        used.append((kind, file.path,
                                     kind_node.lineno))
                elif isinstance(node, ast.Compare) \
                        and isinstance(node.left, ast.Attribute) \
                        and node.left.attr == "kind":
                    for comparator in node.comparators:
                        items = comparator.elts if isinstance(
                            comparator, (ast.Tuple, ast.List,
                                         ast.Set)) else [comparator]
                        for item in items:
                            kind = const_str(item)
                            if kind is not None:
                                used.append((kind, file.path,
                                             item.lineno))
        for kind, path, line in used:
            if kind not in registries:
                yield self.finding(
                    path, line,
                    "event kind %r is not a member of any kind "
                    "registry (EVENT_KINDS / SHARD_EVENT_KINDS / "
                    "JOB_EVENT_KINDS)" % kind)
        for kind, (path, line) in sorted(registries.items()):
            if kind not in emitted:
                yield self.finding(
                    path, line,
                    "registered event kind %r is never emitted by "
                    "any CampaignEvent/_emit/job_event call" % kind)
