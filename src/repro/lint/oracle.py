"""Frozen-oracle rule: ``uarch/reference.py`` must not drift.

The frozen :class:`~repro.uarch.reference.ReferenceProcessor` is the
differential oracle every optimisation of the fast engine is verified
against (PR 2 onwards): its value is precisely that it never changes.
This rule pins it two ways:

* the module's **AST fingerprint** (sha256 of :func:`ast.dump`, so
  comments and formatting are free but any code change fires) must
  match the committed ``data/reference_fingerprint.json``;
* only the sanctioned modules may **import** it — the simulator
  selector (``campaign/outcome.py``), the uarch package re-export, and
  the bench harness.  Production code quietly growing a dependency on
  the reference engine is how "frozen" stops being true.

A deliberate re-freeze (which should essentially never happen — the
point of the oracle is that it predates the code it checks) goes
through :func:`freeze` so the fingerprint change shows up in review
next to the code change that caused it.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os

from .framework import Rule, register_rule, resolved_imports

#: Lint-root-relative path of the frozen module.
REFERENCE_PATH = "repro/uarch/reference.py"

#: The committed fingerprint, packaged with the analyzer.
FINGERPRINT_FILE = os.path.join(os.path.dirname(__file__), "data",
                                "reference_fingerprint.json")

#: Modules allowed to import the reference engine (plus tests and
#: benchmarks, which live outside the linted tree).
ALLOWED_IMPORTERS = frozenset({
    "repro/uarch/__init__.py",      # public re-export
    "repro/campaign/outcome.py",    # the simulator="reference" path
    "repro/harness/bench.py",       # A/B bench + divergence check
})


def fingerprint(source: str) -> str:
    """sha256 over the AST dump: whitespace/comment-insensitive,
    code-change-sensitive."""
    tree = ast.parse(source)
    return hashlib.sha256(
        ast.dump(tree, include_attributes=False).encode()).hexdigest()


def load_fingerprint(path: str = FINGERPRINT_FILE) -> dict:
    with open(path) as handle:
        return json.load(handle)


def freeze(source: str, path: str = FINGERPRINT_FILE) -> dict:
    """(Re-)commit the fingerprint of ``source``; returns the record."""
    record = {"path": REFERENCE_PATH, "sha256": fingerprint(source)}
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return record


@register_rule
class FrozenOracleRule(Rule):
    """The differential oracle stays frozen and privately held."""

    name = "frozen-oracle"
    description = ("uarch/reference.py matches its committed AST "
                   "fingerprint and is imported only from sanctioned "
                   "modules")

    def check_file(self, context, file):
        if file.path != REFERENCE_PATH:
            return
        try:
            committed = load_fingerprint()
        except (OSError, ValueError):
            yield self.finding(
                file.path, 1,
                "no committed fingerprint for the frozen oracle "
                "(expected %s); run repro-ft lint --refreeze-oracle "
                "once and commit the result" % FINGERPRINT_FILE)
            return
        actual = fingerprint(file.source)
        if actual != committed.get("sha256"):
            yield self.finding(
                file.path, 1,
                "uarch/reference.py no longer matches its committed "
                "AST fingerprint — the frozen differential oracle "
                "has been edited.  Revert the change; if a re-freeze "
                "is genuinely intended, run repro-ft lint "
                "--refreeze-oracle and justify it in the PR")

    def finalize(self, context):
        target = REFERENCE_PATH[:-3].replace("/", ".")
        for file in context.files:
            if file.path in ALLOWED_IMPORTERS \
                    or file.path == REFERENCE_PATH:
                continue
            for name in resolved_imports(file):
                if name == target or name.startswith(target + "."):
                    yield self.finding(
                        file.path, 1,
                        "imports the frozen oracle (%s); only the "
                        "simulator selector, the uarch re-export, "
                        "bench, and tests may depend on it" % name)
                    break
