"""Exception-policy rule: no silent swallowing, no generic raises.

Three checks:

* ``except:`` (bare) is always an error — it catches
  ``KeyboardInterrupt`` and ``SystemExit`` and has masked real worker
  hangs in earlier fault-injection harnesses;
* ``except Exception:`` whose handler body neither re-raises nor calls
  anything (no logging, no callback, no cleanup call — just ``pass``
  or an assignment) swallows the failure with no trace.  Handlers that
  log, record the error on a job, invoke a failure callback, or
  re-raise are fine;
* ``raise Exception(...)`` / ``RuntimeError`` / ``BaseException`` —
  boundary errors should be :mod:`repro.errors` types so callers can
  catch :class:`~repro.errors.ReproError` at the service boundary
  without guessing.
"""

from __future__ import annotations

import ast

from .framework import Rule, register_rule

_GENERIC_RAISES = frozenset({
    "Exception", "BaseException", "RuntimeError"})

_BROAD_CATCHES = frozenset({"Exception", "BaseException"})


def _exc_name(node) -> str:
    """``Exception`` / ``builtins.Exception`` -> ``"Exception"``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    return getattr(node, "id", "")


def _is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler neither re-raises nor calls anything."""
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Call)):
            return False
    return True


@register_rule
class ExceptionPolicyRule(Rule):
    """No bare excepts, no silent broad catches, no generic raises."""

    name = "except-policy"
    description = ("no bare `except:`, no `except Exception:` that "
                   "swallows silently, boundary raises use "
                   "repro.errors types")

    def check_file(self, context, file):
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield self.finding(
                        file.path, node.lineno,
                        "bare `except:` also catches "
                        "KeyboardInterrupt/SystemExit; name the "
                        "exception types (at minimum `except "
                        "Exception:`)")
                    continue
                types = node.type.elts if isinstance(
                    node.type, ast.Tuple) else [node.type]
                if any(_exc_name(t) in _BROAD_CATCHES
                       for t in types) and _is_silent(node):
                    yield self.finding(
                        file.path, node.lineno,
                        "`except %s:` swallows the failure without "
                        "re-raising, logging or recording it; narrow "
                        "the type or surface the error"
                        % _exc_name(next(
                            t for t in types
                            if _exc_name(t) in _BROAD_CATCHES)))
            elif isinstance(node, ast.Raise) and node.exc is not None:
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                name = _exc_name(target)
                if name in _GENERIC_RAISES:
                    yield self.finding(
                        file.path, node.lineno,
                        "raises bare %s; use a repro.errors type so "
                        "callers can catch ReproError at the "
                        "boundary" % name)
