"""``repro.lint`` — an AST-based invariant analyzer for this repo.

Stdlib-only static analysis enforcing the project's cross-cutting
invariants: determinism of the simulator core, the frozen differential
oracle, wire-protocol parity, lock discipline, and exception policy.
Run it as ``repro-ft lint``; it also runs inside the tier-1 suite.
"""

from .framework import (ERROR, WARNING, Finding, LintContext, Rule,
                        RULE_REGISTRY, SourceFile, parse_suppressions,
                        register_rule)

# Importing the rule modules populates RULE_REGISTRY.
from . import determinism as _determinism      # noqa: F401
from . import oracle as _oracle                # noqa: F401
from . import wire as _wire                    # noqa: F401
from . import locks as _locks                  # noqa: F401
from . import policy as _policy                # noqa: F401

from .runner import (DEFAULT_BASELINE, DEFAULT_ROOT, LintReport,
                     build_context, collect_files, load_baseline,
                     run_lint, select_rules, write_baseline)

__all__ = [
    "ERROR", "WARNING", "Finding", "LintContext", "LintReport",
    "Rule", "RULE_REGISTRY", "SourceFile", "DEFAULT_BASELINE",
    "DEFAULT_ROOT", "build_context", "collect_files",
    "load_baseline", "parse_suppressions", "register_rule",
    "run_lint", "select_rules", "write_baseline",
]
