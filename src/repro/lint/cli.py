"""Command-line surface of the analyzer (``repro-ft lint``)."""

from __future__ import annotations

import json
import os
import sys

from ..errors import ConfigError
from .framework import RULE_REGISTRY
from .oracle import REFERENCE_PATH, freeze
from .runner import (DEFAULT_BASELINE, DEFAULT_ROOT, run_lint,
                     write_baseline)


def add_lint_args(parser):
    parser.add_argument(
        "--rule", action="append", metavar="NAME",
        help="run only this rule (repeatable; default: all)")
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="lint root containing the repro package "
             "(default: the installed src tree)")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline JSON of grandfathered findings "
             "(default: the committed %s)"
             % os.path.basename(DEFAULT_BASELINE))
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full report as JSON")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="grandfather every current finding into the baseline "
             "file instead of failing on it")
    parser.add_argument(
        "--refreeze-oracle", action="store_true",
        help="re-commit the AST fingerprint of uarch/reference.py "
             "(deliberate oracle changes only)")


def run_lint_cli(args, out=None) -> int:
    out = out if out is not None else sys.stdout

    def emit(line=""):
        print(line, file=out)

    if args.list_rules:
        width = max(len(name) for name in RULE_REGISTRY)
        for name, cls in RULE_REGISTRY.items():
            emit("%-*s  [%s] %s" % (width, name, cls.severity,
                                    cls.description))
        return 0

    root = args.root or DEFAULT_ROOT

    if args.refreeze_oracle:
        reference = os.path.join(root, REFERENCE_PATH)
        try:
            with open(reference, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise ConfigError(
                "cannot read %s: %s" % (reference, exc)) from exc
        record = freeze(source)
        emit("froze %s @ sha256:%s"
             % (record["path"], record["sha256"]))
        return 0

    report = run_lint(root=root, rule_names=args.rule,
                      baseline_path=args.baseline)

    if args.write_baseline:
        path = args.baseline or DEFAULT_BASELINE
        count = write_baseline(report.findings, path)
        emit("wrote %d finding(s) to %s" % (count, path))
        return 0

    if args.as_json:
        emit(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1

    baselined = {f.identity for f in report.baselined}
    for finding in report.findings:
        suffix = "  (baselined)" if finding.identity in baselined \
            else ""
        emit(finding.render() + suffix)
    emit("%d finding(s): %d failing, %d baselined, %d warning(s)"
         % (len(report.findings), len(report.failures),
            len(report.baselined),
            sum(1 for f in report.findings
                if f.severity != "error")))
    if report.ok:
        emit("lint: OK")
    return 0 if report.ok else 1
