"""Lock-discipline rule: shared state stays behind its lock.

For every class that builds a :class:`threading.Lock` / ``RLock`` /
``Condition`` in ``__init__`` (JobQueue, FairScheduler, SlotPool,
ServiceBackend, EventLog, CircuitBreaker, ...), the rule infers the
guarded attribute set and then flags accesses that bypass the lock:

* an attribute is **guarded** when it is accessed at least once inside
  a ``with self._lock:`` block *and* written outside ``__init__``
  somewhere — read-only configuration set up during construction is
  not guarded, however often it is read under lock;
* ``__init__`` is exempt (construction happens-before publication);
* a method named ``*_locked`` asserts by convention that its caller
  holds the lock, so its whole body counts as under-lock — the
  convention this repo already uses (``EventLog._next_seq_locked``);
* methods that call ``self._lock.acquire()`` explicitly are skipped
  entirely: hand-rolled acquire/release cannot be tracked lexically
  and guessing produces noise, not findings.

This is a lexical approximation, not a proof — it exists to catch the
easy-to-write, hard-to-reproduce kind of race where a new method reads
``self._jobs`` without taking the queue lock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .framework import Rule, register_rule

#: Constructors whose result is a mutual-exclusion object.
_LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})

_LOCKED_SUFFIX = "_locked"

#: Method calls that mutate their receiver in place — ``self.x.pop()``
#: is a write to the guarded container even though the attribute node
#: itself is a Load.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "popitem", "remove", "discard", "clear", "add", "update",
    "setdefault", "sort", "reverse"})


def _is_lock_factory(node) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) \
        else getattr(func, "id", "")
    return name in _LOCK_FACTORIES


def _self_attr(node) -> str:
    """``self.x`` -> ``"x"``, anything else -> ``""``."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return ""


@dataclass
class _Access:
    attr: str
    line: int
    under_lock: bool
    is_write: bool
    method: str


@dataclass
class _ClassInfo:
    name: str
    lock_attrs: Set[str] = field(default_factory=set)
    accesses: List[_Access] = field(default_factory=list)


class _MethodScanner(ast.NodeVisitor):
    """Collect self-attribute accesses with their lock context."""

    def __init__(self, info: _ClassInfo, method: str,
                 under_lock: bool):
        self.info = info
        self.method = method
        self.under = under_lock
        self.manual_locking = False

    def visit_With(self, node: ast.With):
        takes_lock = any(
            _self_attr(item.context_expr) in self.info.lock_attrs
            for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        was_under = self.under
        self.under = self.under or takes_lock
        for stmt in node.body:
            self.visit(stmt)
        self.under = was_under

    def _record(self, attr: str, line: int, is_write: bool):
        if attr and attr not in self.info.lock_attrs:
            self.info.accesses.append(_Access(
                attr=attr, line=line, under_lock=self.under,
                is_write=is_write, method=self.method))

    def visit_Attribute(self, node: ast.Attribute):
        self._record(_self_attr(node), node.lineno,
                     isinstance(node.ctx, (ast.Store, ast.Del)))
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript):
        # self.x[k] = v / del self.x[k]: the Attribute itself is a
        # Load, but the container is being mutated.
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self._record(_self_attr(node.value), node.lineno, True)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in ("acquire", "release") \
                    and _self_attr(func.value) in self.info.lock_attrs:
                self.manual_locking = True
            elif func.attr in _MUTATOR_METHODS:
                self._record(_self_attr(func.value),
                             node.lineno, True)
        self.generic_visit(node)


def _scan_class(node: ast.ClassDef) -> _ClassInfo:
    info = _ClassInfo(name=node.name)
    init = next((stmt for stmt in node.body
                 if isinstance(stmt, ast.FunctionDef)
                 and stmt.name == "__init__"), None)
    if init is not None:
        for sub in ast.walk(init):
            if isinstance(sub, ast.Assign) \
                    and _is_lock_factory(sub.value):
                for target in sub.targets:
                    attr = _self_attr(target)
                    if attr:
                        info.lock_attrs.add(attr)
    if not info.lock_attrs:
        return info
    for stmt in node.body:
        if not isinstance(stmt, ast.FunctionDef) \
                or stmt.name == "__init__":
            continue
        scanner = _MethodScanner(
            info, stmt.name,
            under_lock=stmt.name.endswith(_LOCKED_SUFFIX))
        marker = len(info.accesses)
        for sub in stmt.body:
            scanner.visit(sub)
        if scanner.manual_locking:
            del info.accesses[marker:]
    return info


@register_rule
class LockDisciplineRule(Rule):
    """Guarded attributes must be accessed under their lock."""

    name = "lock-discipline"
    description = ("attributes touched under `with self._lock:` and "
                   "mutated after __init__ must always be accessed "
                   "under the lock (or from a *_locked method)")

    def check_file(self, context, file):
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _scan_class(node)
            if not info.lock_attrs:
                continue
            under: Set[str] = set()
            written: Set[str] = set()
            for access in info.accesses:
                if access.under_lock:
                    under.add(access.attr)
                if access.is_write:
                    written.add(access.attr)
            guarded = under & written
            reported: Set[Tuple[str, str]] = set()
            for access in info.accesses:
                if access.under_lock or access.attr not in guarded:
                    continue
                key = (access.method, access.attr)
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding(
                    file.path, access.line,
                    "%s.%s %s self.%s outside the lock that guards "
                    "it elsewhere; take the lock, or rename the "
                    "method *%s if the caller must hold it"
                    % (info.name, access.method,
                       "writes" if access.is_write else "reads",
                       access.attr, _LOCKED_SUFFIX))
