"""Fault-tolerance configuration (the paper's design knobs).

``redundancy`` is the paper's R — the number of redundant dynamic
threads created by instruction injection.  ``R = 1`` is the unprotected
stock superscalar ("the modified datapath can still be returned to the
performance of an optimally-tuned superscalar design").  ``R = 2`` is
the rewind-recovery design evaluated as SS-2; ``R = 3`` optionally adds
majority election with a configurable *correctness acceptance
threshold* (Section 3.2, Recovery).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class FTConfig:
    """Fault-tolerance mode of the dual-use datapath."""

    #: Degree of redundancy R (1 = protection off).
    redundancy: int = 1
    #: For R >= 3: commit the majority result instead of rewinding when
    #: at least ``acceptance_threshold`` copies agree.
    majority_election: bool = False
    #: Minimum number of agreeing copies for majority election.
    acceptance_threshold: int = 2
    #: Check every retiring instruction's PC against the ECC-protected
    #: committed next-PC register (Section 3.2, Fault Detection).
    check_pc_continuity: bool = True
    #: Extra front-end restart penalty (cycles) charged on a rewind, on
    #: top of the naturally modelled pipeline refill.
    rewind_extra_penalty: int = 0

    def __post_init__(self):
        if self.redundancy < 1:
            raise ConfigError("redundancy must be >= 1")
        if self.majority_election:
            if self.redundancy < 3:
                raise ConfigError(
                    "majority election requires redundancy >= 3")
            if not 2 <= self.acceptance_threshold <= self.redundancy:
                raise ConfigError(
                    "acceptance threshold must be in [2, R]")
        if self.rewind_extra_penalty < 0:
            raise ConfigError("rewind_extra_penalty must be >= 0")

    @property
    def protected(self):
        """True when redundant checking is active."""
        return self.redundancy >= 2


#: Protection off: the optimally-tuned baseline superscalar.
UNPROTECTED = FTConfig(redundancy=1)
#: The paper's main design point: two-way redundancy, rewind recovery.
DUAL_REDUNDANT = FTConfig(redundancy=2)
#: Three-way redundancy with 2-of-3 majority election.
TRIPLE_MAJORITY = FTConfig(redundancy=3, majority_election=True,
                           acceptance_threshold=2)
#: Three-way redundancy, rewind-only (for the Figure 3 comparison).
TRIPLE_REWIND = FTConfig(redundancy=3)
