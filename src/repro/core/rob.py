"""Reorder-buffer entries and redundant instruction groups.

Terminology (Section 3.2 of the paper):

* A **group** is one architectural instruction, dynamically replicated
  into ``R`` redundant copies.  The copies live in *consecutive, aligned*
  ROB entries; the paper derives copy *k*'s rename tag by adding offset
  *k* to copy 0's tag.  This implementation expresses the same invariant
  with object references: the rename map stores the producing *group*
  and copy *k* of a consumer always reads from copy *k* of the producer,
  keeping the R dynamic threads data-independent.
* An **entry** is one ROB slot: a single redundant copy flowing through
  rename → issue → execute → writeback, with its private result fields
  that are cross-checked at commit.
"""

from __future__ import annotations

from ..isa.opcodes import Kind

# Entry states (ints for speed in the hot loop).
WAITING = 0   # some source operand outstanding
READY = 1     # all operands captured, not yet issued
ISSUED = 2    # executing in a functional unit
DONE = 3      # result fields valid

#: Shared immutable placeholder for "no producer tags captured":
#: entries allocate a private list copy-on-write, so the common
#: committed-operand case costs no allocation.
NO_TAGS = (None, None)


class RobEntry:
    """One ROB slot: a single redundant copy of an instruction."""

    __slots__ = (
        "seq",          # global age (monotonic across the whole run)
        "vidx",         # virtual ROB index (gseq * R + copy): the paper's
                        # aligned-block index, kept for invariant checking
        "group",        # owning Group
        "copy",         # 0..R-1
        "state",        # WAITING / READY / ISSUED / DONE
        "pending",      # outstanding source operands
        "src_vals",     # [a, b] operand values (captured)
        "src_tags",     # [producer vidx or None] * 2, for invariants
        "dependents",   # entries waiting on this copy's value
        "value",        # result value (None if no destination)
        "addr",         # effective address (memory ops)
        "store_val",    # store data (stores)
        "next_pc",      # this copy's computed next PC
        "issue_cycle",
        "done_cycle",
        "fu_unit",      # physical unit index this copy executed on
        "agen_done",    # memory ops: address generation finished
        "fault_kind",   # None, one of core.faults.FAULT_KINDS, or
                        # "rob_value" (post-wakeup ROB-entry strike)
        "fault_bit",    # bit position the injected fault flips
        "fault_applied",  # the planned fault actually corrupted a field
        "op_fault",     # None or (operand slot, bit): source-operand
                        # strike applied at issue (rename_tag/iq_entry)
        "site",         # addressable structure name of a planned site
                        # strike (None on the legacy rate path)
        "squashed",
    )

    def __init__(self, seq, vidx, group, copy):
        self.seq = seq
        self.vidx = vidx
        self.group = group
        self.copy = copy
        self.state = WAITING
        self.pending = 0
        self.src_vals = [0, 0]
        self.src_tags = NO_TAGS       # copy-on-write (see NO_TAGS)
        self.dependents = None        # created on first waiter
        self.value = None
        self.addr = None
        self.store_val = None
        self.next_pc = None
        self.issue_cycle = None
        self.done_cycle = None
        self.fu_unit = None
        self.agen_done = False
        self.fault_kind = None
        self.fault_bit = 0
        self.fault_applied = False
        self.op_fault = None
        self.site = None
        self.squashed = False

    def __repr__(self):
        return ("<RobEntry seq=%d copy=%d %s state=%d>"
                % (self.seq, self.copy, self.group.inst, self.state))


class Group:
    """One architectural instruction and its R redundant copies."""

    __slots__ = (
        "gseq",           # group age (program order)
        "pc",             # fetch PC (shared across copies)
        "inst",
        "meta",           # DecodedInst static metadata (may be None)
        "copies",         # list of R RobEntry
        "pred_npc",       # next PC predicted at fetch
        "pred_taken",     # direction prediction (conditional branches)
        "ras_snap",       # RAS snapshot for misprediction repair
        "resolved",       # a copy has resolved control flow
        "resolved_npc",   # the first resolver's next PC (drives fetch)
        "done_count",     # completed copies
        "load_value",     # shared single memory access result
        "value_ready",    # load value arrived
        "value_cycle",
        "mem_issued",     # the single cache access has been sent
        "fetch_cycle",
        "dispatch_cycle",
        "squashed",
        # Kind flags, resolved once at construction: the commit, issue
        # and LSQ paths read them for every in-flight group every cycle.
        "is_load",
        "is_store",
        "is_mem",
        "is_control",
        # Disambiguation memo (loads): the store group this load is
        # provably blocked on, and why (see LoadStoreQueue.load_block).
        "block_on",
        "block_mode",
    )

    def __init__(self, gseq, pc, inst, pred_npc, pred_taken=False,
                 ras_snap=None, fetch_cycle=0, meta=None):
        self.gseq = gseq
        self.pc = pc
        self.inst = inst
        self.meta = meta
        self.copies = []
        self.pred_npc = pred_npc
        self.pred_taken = pred_taken
        self.ras_snap = ras_snap
        self.resolved = False
        self.resolved_npc = None
        self.done_count = 0
        self.load_value = None
        self.value_ready = False
        self.value_cycle = None
        self.mem_issued = False
        self.fetch_cycle = fetch_cycle
        self.dispatch_cycle = None
        self.squashed = False
        self.block_on = None
        self.block_mode = 0
        if meta is not None:
            self.is_load = meta.is_load
            self.is_store = meta.is_store
            self.is_mem = meta.is_mem
            self.is_control = meta.is_control
        else:
            kind = inst.info.kind
            self.is_load = kind == Kind.LOAD
            self.is_store = kind == Kind.STORE
            self.is_mem = self.is_load or self.is_store
            self.is_control = kind == Kind.BRANCH or kind == Kind.JUMP

    @property
    def redundancy(self):
        return len(self.copies)

    @property
    def complete(self):
        return self.done_count >= len(self.copies)

    def mark_squashed(self):
        """Invalidate the group and all copies (stale events check this)."""
        self.squashed = True
        for entry in self.copies:
            entry.squashed = True
            entry.dependents = None

    def __repr__(self):
        return ("<Group gseq=%d pc=%d %s done=%d/%d>"
                % (self.gseq, self.pc, self.inst, self.done_count,
                   len(self.copies)))
