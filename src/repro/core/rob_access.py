"""Operand capture: the rename-time read path shared by all copies."""

from __future__ import annotations

from ..isa.registers import ZERO
from .rob import DONE


def capture_operand(entry, slot, areg, copy, renamer, committed_read):
    """Capture source operand ``slot`` (0 or 1) of one redundant copy.

    Resolution order mirrors the paper's datapath:

    1. ``r0`` reads constant zero.
    2. A producer group in flight: copy *k* reads copy *k* of the
       producer (the "+k offset" rule).  If that copy has completed, the
       value is captured immediately from its rename register (its ROB
       entry); otherwise the consumer waits on its completion broadcast.
    3. No in-flight producer: read the ECC-protected committed register
       file, which is identical for all copies.
    """
    if areg == ZERO:
        entry.src_vals[slot] = 0
        return
    producer_group = renamer.lookup(areg)
    if producer_group is None:
        entry.src_vals[slot] = committed_read(areg)
        return
    producer = producer_group.copies[copy]
    entry.src_tags[slot] = producer.vidx
    if producer.state == DONE:
        entry.src_vals[slot] = producer.value
    else:
        entry.pending += 1
        producer.dependents.append((entry, slot))
