"""Sphere-of-replication audit (Section 3.4 / Reinhardt & Mukherjee).

Enumerates every architectural structure of the modelled processor with
its protection mechanism, and verifies the coverage argument of the
paper: everything is either (a) inside the sphere of replication —
R-redundant in storage and computation between decode and commit — or
(b) outside the sphere and protected by information redundancy (ECC /
parity), or (c) covered by an explicit architectural check (the
committed next-PC continuity check covering the PC register and BTB).
"""

from __future__ import annotations

from dataclasses import dataclass

PROTECTION_REPLICATION = "replication"
PROTECTION_ECC = "ecc"
PROTECTION_CHECK = "architectural-check"
PROTECTION_NONE = "unprotected"


@dataclass(frozen=True)
class StructureCoverage:
    """One hardware structure and how it is protected."""

    name: str
    domain: str          # "speculative" | "committed" | "frontend" | "hint"
    protection: str
    note: str


#: The paper's coverage inventory for the fault-tolerant configuration.
FT_COVERAGE = (
    StructureCoverage("reorder buffer / rename registers", "speculative",
                      PROTECTION_REPLICATION,
                      "R copies in aligned entries; cross-checked at "
                      "commit"),
    StructureCoverage("functional units", "speculative",
                      PROTECTION_REPLICATION,
                      "each copy executes independently"),
    StructureCoverage("load/store queue", "speculative",
                      PROTECTION_REPLICATION,
                      "addresses and store data computed per copy and "
                      "cross-checked"),
    StructureCoverage("issue/wakeup logic", "speculative",
                      PROTECTION_REPLICATION,
                      "an upset manifests as a wrong value in one copy"),
    StructureCoverage("committed register file", "committed",
                      PROTECTION_ECC, "Hamming SECDED (repro.ecc)"),
    StructureCoverage("rename map table", "committed", PROTECTION_ECC,
                      "single table regardless of R; Section 3.2"),
    StructureCoverage("caches / main memory / TLB", "committed",
                      PROTECTION_ECC, "standard array ECC"),
    StructureCoverage("committed next-PC register", "committed",
                      PROTECTION_ECC,
                      "anchors PC-continuity checking and rewind"),
    StructureCoverage("fetch queue", "frontend", PROTECTION_ECC,
                      "RAM-like structure; Section 3.4"),
    StructureCoverage("PC register", "frontend", PROTECTION_CHECK,
                      "errors surface as PC-continuity violations at "
                      "retirement"),
    StructureCoverage("branch target buffer", "hint", PROTECTION_CHECK,
                      "a corrupted target is just a misprediction"),
    StructureCoverage("branch predictor tables", "hint", PROTECTION_NONE,
                      "performance hints; cannot affect correctness"),
    StructureCoverage("return address stack", "hint", PROTECTION_NONE,
                      "performance hint; cannot affect correctness"),
)

#: Structures whose corruption is fatal when protection is off (R = 1).
UNPROTECTED_COVERAGE = tuple(
    StructureCoverage(item.name, item.domain,
                      PROTECTION_NONE if item.protection
                      == PROTECTION_REPLICATION else item.protection,
                      item.note)
    for item in FT_COVERAGE)


def audit(coverage=FT_COVERAGE):
    """Return (covered, uncovered) structure lists.

    A structure counts as covered unless it is ``unprotected`` *and* can
    affect architectural correctness (i.e. not a pure hint).
    """
    covered, uncovered = [], []
    for item in coverage:
        if item.protection == PROTECTION_NONE and item.domain != "hint":
            uncovered.append(item)
        else:
            covered.append(item)
    return covered, uncovered


def coverage_table(coverage=FT_COVERAGE):
    """Human-readable audit table."""
    width = max(len(item.name) for item in coverage)
    lines = ["%-*s  %-11s  %-20s  %s" % (width, "structure", "domain",
                                         "protection", "note")]
    for item in coverage:
        lines.append("%-*s  %-11s  %-20s  %s"
                     % (width, item.name, item.domain, item.protection,
                        item.note))
    return "\n".join(lines)
