"""Commit-stage fault detection: cross-checking redundant copies.

Step (2) of the paper's mechanism: "When all copies of the same
instruction have been executed and are the oldest entries in ROB, the R
entries are cross-checked.  If all entries agree, then they are freed
from ROB, retiring a single instruction.  If any fields of the entries
disagree, then an error has occurred and recovery is required"
(Section 3.2).

The checked fields per copy are: result value, next PC, effective
address and store data.  For R >= 3 with majority election, the checker
also reports the representative copy whose signature reaches the
acceptance threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..functional.numeric import values_equal


@dataclass
class CheckResult:
    """Outcome of cross-checking one retiring group."""

    ok: bool                 # all copies agree
    representative: int      # index of the copy whose results to commit
    majority: bool           # disagreement resolved by majority election
    agree_count: int         # copies agreeing with the representative
    mismatched_fields: tuple = ()


_FIELDS = ("value", "next_pc", "addr", "store_val")


def _signature(entry):
    return (entry.value, entry.next_pc, entry.addr, entry.store_val)


def _field_equal(left, right):
    """One signature field: both unset, or set and values-equal."""
    if left is None:
        return right is None
    if right is None:
        return False
    return values_equal(left, right)


def _signatures_equal(a, b):
    for left, right in zip(a, b):
        if left is None and right is None:
            continue
        if left is None or right is None:
            return False
        if not values_equal(left, right):
            return False
    return True


def _mismatched_fields(a, b):
    fields = []
    for name, left, right in zip(_FIELDS, a, b):
        same = (left is None and right is None) or (
            left is not None and right is not None
            and values_equal(left, right))
        if not same:
            fields.append(name)
    return tuple(fields)


class CommitChecker:
    """Cross-checks the R copies of a retiring instruction."""

    def __init__(self, ft_config):
        self.ft = ft_config
        self.checks = 0
        self.mismatches = 0

    def check(self, group):
        """Cross-check ``group``; never commits anything itself."""
        copies = group.copies
        self.checks += 1
        first = copies[0]
        all_agree = True
        for entry in copies[1:]:
            # Inline signature comparison: this runs once per committed
            # group, and in the fault-free common case every field pair
            # is identical (often the very same object).
            if not (_field_equal(first.value, entry.value)
                    and _field_equal(first.next_pc, entry.next_pc)
                    and _field_equal(first.addr, entry.addr)
                    and _field_equal(first.store_val, entry.store_val)):
                all_agree = False
                break
        if all_agree:
            return CheckResult(ok=True, representative=0, majority=False,
                               agree_count=len(copies))
        signatures = [_signature(entry) for entry in copies]
        self.mismatches += 1
        if self.ft.majority_election and len(copies) >= 3:
            best_index, best_count = self._majority(signatures)
            if best_count >= self.ft.acceptance_threshold:
                return CheckResult(
                    ok=False, representative=best_index, majority=True,
                    agree_count=best_count,
                    mismatched_fields=self._collect_mismatches(signatures))
        return CheckResult(
            ok=False, representative=-1, majority=False, agree_count=1,
            mismatched_fields=self._collect_mismatches(signatures))

    @staticmethod
    def _majority(signatures):
        best_index, best_count = 0, 0
        for i, candidate in enumerate(signatures):
            count = sum(1 for sig in signatures
                        if _signatures_equal(candidate, sig))
            if count > best_count:
                best_index, best_count = i, count
        return best_index, best_count

    @staticmethod
    def _collect_mismatches(signatures):
        fields = set()
        first = signatures[0]
        for sig in signatures[1:]:
            fields.update(_mismatched_fields(first, sig))
        return tuple(sorted(fields))
