"""Transient-fault injection.

Reproduces the paper's methodology: "we also introduced a 'fault
injection' module that can randomly corrupt some instructions based on a
user-specified probability distribution function. ... our fault
injection module may decide to corrupt some part of an instruction at
any stage of the pipeline" (Section 5.1.1).

A fault strikes *one redundant copy* of an in-flight instruction (the
sphere of replication covers speculative state only; committed state is
ECC-protected and assumed immune).  Kinds model where the single-event
upset lands:

* ``value``   — the copy's result value (in an FU or its ROB slot);
* ``address`` — the copy's computed effective address (memory ops);
* ``branch``  — the copy's resolved branch outcome;
* ``pc``      — the instruction's fetched PC *shared by all copies*
  (models an upset in the unprotected PC register; only the committed
  next-PC continuity check can catch this one — Section 3.4).

Rates follow Section 4.2: the per-copy fault probability is ``lambda``
per instruction, so an R-redundant machine sees a group corrupted at
roughly ``R * lambda`` per architectural instruction.  Figure 6 expresses
``lambda`` in faults per one million instructions, which is the unit
used here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..isa.opcodes import Kind

FAULT_KINDS = ("value", "address", "branch", "pc")

#: Default mix of fault sites: mostly datapath values, some address
#: calculation, some control.
DEFAULT_KIND_WEIGHTS = {"value": 0.70, "address": 0.15, "branch": 0.10,
                        "pc": 0.05}

#: Named kind-weight mixes for injection campaigns.  Each preset skews
#: the site distribution toward one structural class so per-fault-kind
#: sensitivity can be swept as a campaign axis.
KIND_MIX_PRESETS = {
    "default": DEFAULT_KIND_WEIGHTS,
    "value-only": {"value": 1.0},
    "address-heavy": {"value": 0.30, "address": 0.60, "branch": 0.05,
                      "pc": 0.05},
    "control-heavy": {"value": 0.25, "address": 0.05, "branch": 0.55,
                      "pc": 0.15},
    "pc-heavy": {"value": 0.40, "address": 0.10, "branch": 0.10,
                 "pc": 0.40},
}


def get_kind_mix(name):
    """Look up a named kind-weight preset (a fresh copy)."""
    try:
        return dict(KIND_MIX_PRESETS[name])
    except KeyError:
        raise ConfigError(
            "unknown fault kind mix %r (choose from %s)"
            % (name, ", ".join(sorted(KIND_MIX_PRESETS)))) from None


#: Width of the field each fault kind flips a bit of: values and
#: addresses are 64-bit datapath quantities, the PC register is 16 bits
#: wide in this ISA.
KIND_FIELD_WIDTHS = {"value": 64, "address": 64, "branch": 64, "pc": 16}


@dataclass(frozen=True)
class FaultPlan:
    """A fault scheduled against one copy (or one group for ``pc``)."""

    kind: str
    bit: int

    def __post_init__(self):
        width = KIND_FIELD_WIDTHS.get(self.kind)
        if width is None:
            raise ConfigError("unknown fault kind %r (choose from %s)"
                              % (self.kind, ", ".join(FAULT_KINDS)))
        if not isinstance(self.bit, int) or isinstance(self.bit, bool) \
                or not 0 <= self.bit < width:
            raise ConfigError(
                "fault bit %r out of range for a %s fault (the struck "
                "field is %d bits wide)" % (self.bit, self.kind, width))


@dataclass
class FaultConfig:
    """Injection rate and site distribution."""

    #: Per-copy fault probability, in faults per million instructions.
    rate_per_million: float = 0.0
    seed: int = 12345
    kind_weights: dict = field(
        default_factory=lambda: dict(DEFAULT_KIND_WEIGHTS))

    def __post_init__(self):
        if self.rate_per_million < 0:
            raise ConfigError("fault rate must be >= 0")
        total = sum(self.kind_weights.values())
        if total <= 0:
            raise ConfigError("fault kind weights must sum to > 0")
        unknown = set(self.kind_weights) - set(FAULT_KINDS)
        if unknown:
            raise ConfigError("unknown fault kinds: %s" % sorted(unknown))

    @property
    def rate(self):
        """Per-copy probability per instruction."""
        return self.rate_per_million / 1e6


class FaultInjector:
    """Draws fault plans for dispatched copies, deterministically."""

    def __init__(self, config=None):
        self.config = config or FaultConfig()
        self._rng = random.Random(self.config.seed)
        self._kinds = list(self.config.kind_weights.keys())
        self._weights = list(self.config.kind_weights.values())
        self.planned = 0
        # Per-dispatch hot path: resolve the per-copy rate and the
        # group-level pc share once (they are pure functions of the
        # immutable-by-convention config).
        self._rate = self.config.rate
        weights = self.config.kind_weights
        self._pc_rate = self._rate * (weights.get("pc", 0.0)
                                      / sum(weights.values()))

    def reset(self):
        self._rng = random.Random(self.config.seed)
        self.planned = 0

    def plan_for_copy(self, inst):
        """Plan (or not) a fault against one dispatched copy of ``inst``.

        Returns a :class:`FaultPlan` with kind in {value, address,
        branch} or ``None``.  ``pc`` faults are group-level; see
        :meth:`plan_for_group`.
        """
        rate = self._rate
        if rate <= 0 or self._rng.random() >= rate:
            return None
        return self.plan_for_copy_hit(inst)

    def plan_for_copy_hit(self, inst):
        """Continuation of :meth:`plan_for_copy` after its rate draw hit.

        Exposed so the dispatch hot loop can perform the (almost always
        missing) rate draw inline and only pay a call on a hit; the RNG
        consumption is identical to calling :meth:`plan_for_copy`.
        """
        kind = self._draw_kind()
        kind = self._fit_kind_to_inst(kind, inst)
        if kind is None:
            return None
        self.planned += 1
        return FaultPlan(kind=kind, bit=self._rng.randrange(64))

    def plan_for_group(self, inst):
        """Plan (or not) a group-level ``pc`` fault for one instruction."""
        rate = self._pc_rate
        if rate <= 0 or self._rng.random() >= rate:
            return None
        return self.plan_for_group_hit()

    def plan_for_group_hit(self):
        """Continuation of :meth:`plan_for_group` after its draw hit."""
        self.planned += 1
        return FaultPlan(kind="pc", bit=self._rng.randrange(16))

    def _draw_kind(self):
        choices = self._rng.choices(self._kinds, weights=self._weights)
        return choices[0]

    def _fit_kind_to_inst(self, kind, inst):
        """Map the drawn kind onto a site that exists for ``inst``."""
        info = inst.info
        if kind == "pc":
            # The pc share of the budget is spent at group level
            # (plan_for_group); drawing it here produces no copy fault,
            # otherwise pc faults would be double-counted.
            return None
        if kind == "address" and not info.is_mem:
            kind = "value"
        if kind == "branch" and not inst.is_control:
            kind = "value"
        if kind == "value":
            if info.writes_reg or info.kind == Kind.STORE:
                return "value"
            if inst.is_control:
                return "branch"
            return None  # nop/halt: no architectural site to corrupt
        return kind


def check_mix_applicability(kind_weights, program):
    """Refuse a kind mix that can never strike ``program``.

    Mirrors :meth:`FaultInjector._fit_kind_to_inst` exactly, including
    its fallbacks (``address`` on a non-memory instruction falls to
    ``value``, ``value`` on a control instruction to ``branch``): the
    mix is rejected only when *every* nonzero-weight kind maps to no
    site in the program, which would otherwise plan nothing, silently,
    for the whole campaign.  ``pc`` faults strike the fetch PC and are
    always applicable.
    """
    nonzero = sorted(kind for kind, weight in kind_weights.items()
                     if weight > 0)
    if "pc" in nonzero:
        return
    has_value_site = has_mem = has_control = False
    for inst in program.text:
        info = inst.info
        if info.writes_reg or info.kind == Kind.STORE:
            has_value_site = True
        if info.is_mem:
            has_mem = True
        if inst.is_control:
            has_control = True
        if has_value_site and has_mem and has_control:
            break
    value_ok = has_value_site or has_control
    applicable = {"value": value_ok,
                  "address": has_mem or value_ok,
                  "branch": has_control or value_ok}
    if not any(applicable.get(kind, False) for kind in nonzero):
        raise ConfigError(
            "fault kind mix %r can never strike workload %r: the "
            "program has no %s site (and no fallback applies); the "
            "injector would silently plan nothing"
            % (dict(kind_weights), program.name,
               "/".join(nonzero)))
