"""Transient-fault recovery: rewind and majority election.

Step (3) of the paper's mechanism: "After an inconsistency is detected
between redundantly executed copies of a retiring instruction, the
default action is to completely rewind the ROB, i.e. discard the entire
ROB contents and restart execution by refetching from the committed
next-PC register" (Section 3.2).

The controller decides the action (commit-by-majority vs full rewind)
and keeps the recovery-cost bookkeeping used by the Figure 6 discussion
("typical recovery costs observed in fpppp simulations are around 30
cycles"): for every rewind we record the gap between the rewind cycle
and the next successful commit, which is the throughput the fault
actually cost.
"""

from __future__ import annotations

#: Possible recovery actions for a failed cross-check.
ACTION_MAJORITY_COMMIT = "majority_commit"
ACTION_REWIND = "rewind"


class RecoveryController:
    """Chooses and accounts for recovery actions."""

    def __init__(self, ft_config):
        self.ft = ft_config
        self.rewinds = 0
        self.majority_commits = 0
        #: Cycle of the most recent rewind with no commit yet, or None.
        self._open_rewind_cycle = None
        self.recovery_cycles = 0

    def decide(self, check_result):
        """Action for a mismatching group: majority commit or rewind."""
        if check_result.majority:
            self.majority_commits += 1
            return ACTION_MAJORITY_COMMIT
        self.rewinds += 1
        return ACTION_REWIND

    def on_rewind(self, cycle):
        """Record the start of a rewind (detection time)."""
        # Back-to-back faults before any commit merge into one outage;
        # the model in Section 4.2 notes exactly this saturation effect.
        if self._open_rewind_cycle is None:
            self._open_rewind_cycle = cycle

    def on_commit(self, cycle):
        """First successful commit after a rewind closes the outage."""
        if self._open_rewind_cycle is not None:
            self.recovery_cycles += cycle - self._open_rewind_cycle
            self._open_rewind_cycle = None

    @property
    def average_penalty(self):
        """Observed mean rewind penalty Y in cycles."""
        if not self.rewinds:
            return 0.0
        return self.recovery_cycles / self.rewinds
