"""The paper's contribution: dual-use fault tolerance for superscalars.

Instruction injection (replication), commit-stage cross-checking,
rewind/majority recovery, transient-fault injection and the
sphere-of-replication coverage audit.
"""

from .config import (DUAL_REDUNDANT, TRIPLE_MAJORITY, TRIPLE_REWIND,
                     UNPROTECTED, FTConfig)
from .detection import CheckResult, CommitChecker
from .faults import (DEFAULT_KIND_WEIGHTS, FAULT_KINDS, KIND_MIX_PRESETS,
                     FaultConfig, FaultInjector, FaultPlan, get_kind_mix)
from .recovery import (ACTION_MAJORITY_COMMIT, ACTION_REWIND,
                       RecoveryController)
from .replication import Replicator
from .rob import DONE, ISSUED, READY, WAITING, Group, RobEntry
from .sphere import (FT_COVERAGE, UNPROTECTED_COVERAGE, StructureCoverage,
                     audit, coverage_table)

__all__ = [
    "DUAL_REDUNDANT", "TRIPLE_MAJORITY", "TRIPLE_REWIND", "UNPROTECTED",
    "FTConfig", "CheckResult", "CommitChecker", "DEFAULT_KIND_WEIGHTS",
    "FAULT_KINDS", "KIND_MIX_PRESETS", "FaultConfig", "FaultInjector",
    "FaultPlan", "get_kind_mix",
    "ACTION_MAJORITY_COMMIT", "ACTION_REWIND", "RecoveryController",
    "Replicator", "FT_COVERAGE", "UNPROTECTED_COVERAGE",
    "StructureCoverage", "audit", "coverage_table",
]
