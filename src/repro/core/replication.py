"""Instruction injection: dynamic replication at dispatch.

This is step (1) of the paper's mechanism: "The instruction injection
logic in the decode stage temporarily creates multiple redundant threads
from a single instruction stream" (Section 3.2).  Each fetched
instruction becomes a :class:`~repro.uarch.rob.Group` of R consecutive
ROB entries; only copy 0 is renamed through the map table and copy *k*'s
operand is deduced as copy *k* of the same producer group — the
object-reference form of the paper's "+k tag offset" rule.

The replicator owns the data-independence invariant: copy *k* of a
consumer only ever reads values produced by copy *k* of a producer, or
the (ECC-protected, shared) committed register file.
"""

from __future__ import annotations

from ..faults.sites import arm_entry, count_strike
from ..isa.opcodes import Kind
from ..isa.registers import ZERO
from .rob import DONE, READY, WAITING, Group, RobEntry


class Replicator:
    """Builds R-redundant groups from fetched instructions."""

    def __init__(self, redundancy, renamer, committed_read,
                 fault_injector=None, stats=None, site_policy=None):
        """``committed_read(areg)`` reads the committed register file.

        ``fault_injector`` is the legacy rate injector (the hot loop
        inlines its draws; RNG stream unchanged); ``site_policy`` an
        addressable :class:`~repro.faults.policy.InjectionPolicy`
        consulted per group and per copy.  At most one is set — the
        processor resolves a :class:`~repro.faults.policy.RatePolicy`
        to its wrapped injector before construction.
        """
        self.redundancy = redundancy
        self.renamer = renamer
        self.committed_read = committed_read
        self.fault_injector = fault_injector
        self.site_policy = site_policy
        self.stats = stats
        self._gseq = 0
        self._seq = 0

    def reset_sequence(self):
        self._gseq = 0
        self._seq = 0

    def build_group(self, record, cycle):
        """Replicate one fetched instruction into an R-copy group."""
        inst = record.inst
        meta = record.meta
        group = Group(self._gseq, record.pc, inst, record.pred_npc,
                      record.pred_taken, record.ras_snap,
                      record.fetch_cycle, meta)
        self._gseq += 1
        injector = self.fault_injector
        rng_random = None
        copy_rate = 0.0
        site_policy = None
        if injector is not None:
            # Rate draws inlined (plan_for_*_hit fires on the rare hit);
            # the RNG sequence is identical to the plan_for_* methods.
            rng_random = injector._rng.random
            copy_rate = injector._rate
            pc_rate = injector._pc_rate
            if pc_rate > 0 and rng_random() < pc_rate:
                plan = injector.plan_for_group_hit()
                # Upset in the (unprotected) PC register: all copies see
                # the same wrong PC; only PC-continuity checking catches
                # it (Section 3.4).
                group.pc ^= 1 << plan.bit
                if self.stats is not None:
                    self.stats.faults_injected += 1
        else:
            site_policy = self.site_policy
            if site_policy is not None:
                strike = site_policy.plan_group(group.gseq, cycle)
                if strike is not None:
                    # Group-scope (pc) strike: applied right here — the
                    # corrupted fetch PC is what all copies carry.
                    group.pc ^= 1 << (strike.bit & 15)
                    if self.stats is not None:
                        self.stats.faults_injected += 1
                        count_strike(self.stats, strike.structure)

        info = meta.info if meta is not None else inst.info
        kind = info.kind
        inert = kind == Kind.NOP or kind == Kind.HALT
        reads_rs1 = info.reads_rs1
        reads_rs2 = info.reads_rs2
        rs1 = inst.rs1
        rs2 = inst.rs2
        # Producer lookup is per-group work: all copies of a consumer
        # read from the same producer *group* (copy k reads copy k).
        producer1 = producer2 = None
        committed1 = committed2 = 0
        if not inert:
            renamer = self.renamer
            committed_read = self.committed_read
            if reads_rs1:
                if rs1 == ZERO:
                    committed1 = 0
                else:
                    producer1 = renamer.lookup(rs1)
                    if producer1 is None:
                        committed1 = committed_read(rs1)
            if reads_rs2:
                if rs2 == ZERO:
                    committed2 = 0
                else:
                    producer2 = renamer.lookup(rs2)
                    if producer2 is None:
                        committed2 = committed_read(rs2)
        seq = self._seq
        vidx = group.gseq * self.redundancy
        copies = group.copies
        for copy in range(self.redundancy):
            entry = RobEntry(seq, vidx + copy, group, copy)
            seq += 1
            copies.append(entry)
            if injector is not None:
                if rng_random() < copy_rate:
                    plan = injector.plan_for_copy_hit(inst)
                    if plan is not None:
                        entry.fault_kind = plan.kind
                        entry.fault_bit = plan.bit
            elif site_policy is not None:
                strike = site_policy.plan_copy(group.gseq, copy, inst,
                                               cycle)
                if strike is not None:
                    arm_entry(entry, strike)
            if inert:
                # Nothing to execute: completes at dispatch.
                entry.state = DONE
                entry.next_pc = group.pc + (0 if kind == Kind.HALT else 1)
                group.done_count += 1
                continue
            if reads_rs1:
                if producer1 is None:
                    entry.src_vals[0] = committed1
                else:
                    producer = producer1.copies[copy]
                    entry.src_tags = [producer.vidx, None]
                    if producer.state == DONE:
                        entry.src_vals[0] = producer.value
                    else:
                        entry.pending += 1
                        waiters = producer.dependents
                        if waiters is None:
                            producer.dependents = [(entry, 0)]
                        else:
                            waiters.append((entry, 0))
            if reads_rs2:
                if producer2 is None:
                    entry.src_vals[1] = committed2
                else:
                    producer = producer2.copies[copy]
                    tags = entry.src_tags
                    if type(tags) is list:
                        tags[1] = producer.vidx
                    else:
                        entry.src_tags = [None, producer.vidx]
                    if producer.state == DONE:
                        entry.src_vals[1] = producer.value
                    else:
                        entry.pending += 1
                        waiters = producer.dependents
                        if waiters is None:
                            producer.dependents = [(entry, 1)]
                        else:
                            waiters.append((entry, 1))
            entry.state = READY if entry.pending == 0 else WAITING
        self._seq = seq
        # Register the destination mapping once per group (copy 0's tag;
        # the offset rule recovers the other copies).
        if info.writes_reg and inst.rd != ZERO:
            self.renamer.set_dest(inst.rd, group)
        return group
