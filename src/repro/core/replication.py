"""Instruction injection: dynamic replication at dispatch.

This is step (1) of the paper's mechanism: "The instruction injection
logic in the decode stage temporarily creates multiple redundant threads
from a single instruction stream" (Section 3.2).  Each fetched
instruction becomes a :class:`~repro.uarch.rob.Group` of R consecutive
ROB entries; only copy 0 is renamed through the map table and copy *k*'s
operand is deduced as copy *k* of the same producer group — the
object-reference form of the paper's "+k tag offset" rule.

The replicator owns the data-independence invariant: copy *k* of a
consumer only ever reads values produced by copy *k* of a producer, or
the (ECC-protected, shared) committed register file.
"""

from __future__ import annotations

from ..isa.opcodes import Kind
from ..isa.registers import ZERO
from .rob import DONE, READY, WAITING, Group, RobEntry
from .rob_access import capture_operand


class Replicator:
    """Builds R-redundant groups from fetched instructions."""

    def __init__(self, redundancy, renamer, committed_read,
                 fault_injector=None, stats=None):
        """``committed_read(areg)`` reads the committed register file."""
        self.redundancy = redundancy
        self.renamer = renamer
        self.committed_read = committed_read
        self.fault_injector = fault_injector
        self.stats = stats
        self._gseq = 0
        self._seq = 0

    def reset_sequence(self):
        self._gseq = 0
        self._seq = 0

    def build_group(self, record, cycle):
        """Replicate one fetched instruction into an R-copy group."""
        inst = record.inst
        group = Group(self._gseq, record.pc, inst, record.pred_npc,
                      record.pred_taken, record.ras_snap, record.fetch_cycle)
        self._gseq += 1
        injector = self.fault_injector
        if injector is not None:
            plan = injector.plan_for_group(inst)
            if plan is not None:
                # Upset in the (unprotected) PC register: all copies see
                # the same wrong PC; only PC-continuity checking catches
                # it (Section 3.4).
                group.pc ^= 1 << plan.bit
                if self.stats is not None:
                    self.stats.faults_injected += 1

        info = inst.info
        kind = info.kind
        for copy in range(self.redundancy):
            entry = RobEntry(self._seq, group.gseq * self.redundancy + copy,
                             group, copy)
            self._seq += 1
            group.copies.append(entry)
            if injector is not None:
                plan = injector.plan_for_copy(inst)
                if plan is not None:
                    entry.fault_kind = plan.kind
                    entry.fault_bit = plan.bit
            if kind == Kind.NOP or kind == Kind.HALT:
                # Nothing to execute: completes at dispatch.
                entry.state = DONE
                entry.next_pc = group.pc + (0 if kind == Kind.HALT else 1)
                group.done_count += 1
                continue
            self._capture_operands(entry, inst, copy)
            entry.state = READY if entry.pending == 0 else WAITING
        # Register the destination mapping once per group (copy 0's tag;
        # the offset rule recovers the other copies).
        if info.writes_reg and inst.rd != ZERO:
            self.renamer.set_dest(inst.rd, group)
        return group

    def _capture_operands(self, entry, inst, copy):
        """Wire up to two source operands for one redundant copy."""
        info = inst.info
        if info.reads_rs1:
            capture_operand(entry, 0, inst.rs1, copy, self.renamer,
                            self.committed_read)
        if info.reads_rs2:
            capture_operand(entry, 1, inst.rs2, copy, self.renamer,
                            self.committed_read)
