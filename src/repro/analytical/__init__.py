"""Section-4 analytical performance models and Figure 3/4 series."""

from .figures import (FIGURE3_PENALTY, FIGURE4_PENALTY, FigurePoint,
                      figure3_series, figure4_series, figure_series,
                      format_figure_table, lambda_grid)
from .model import (crossover_frequency, faulty_ipc, ipc_with_faults,
                    min_guarantee_window, model_valid,
                    rewind_rate_full_check, rewind_rate_majority,
                    steady_state_ipc, steady_state_penalty,
                    worst_case_instructions)

__all__ = [
    "FIGURE3_PENALTY", "FIGURE4_PENALTY", "FigurePoint", "figure3_series",
    "figure4_series", "figure_series", "format_figure_table",
    "lambda_grid", "crossover_frequency", "faulty_ipc", "ipc_with_faults",
    "model_valid", "rewind_rate_full_check", "rewind_rate_majority",
    "steady_state_ipc", "steady_state_penalty", "min_guarantee_window",
    "worst_case_instructions",
]
