"""Series generators for Figures 3 and 4.

Both figures plot idealised ``IPC_R(lam)`` with ``IPC_1 = B`` normalised
to 1 (the paper's "single-thread execution already saturates the
bottleneck" case), three curves each:

* R=2, rewind recovery;
* R=3, rewind recovery;
* R=3, majority election (2-of-3) + rewind.

Figure 3 uses a fine-grain rewind penalty Y=20 cycles; Figure 4 repeats
the exercise with Y=2000 (a coarse-grain checkpointing scheme) to show
that Y only matters at extreme fault frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import (faulty_ipc, model_valid)

#: Normalised baseline: IPC_1 = B = 1.
NORMALISED_IPC1 = 1.0
NORMALISED_BOTTLENECK = 1.0

FIGURE3_PENALTY = 20
FIGURE4_PENALTY = 2000


@dataclass(frozen=True)
class FigurePoint:
    """One x-position of a Figure 3/4 style plot."""

    lam: float              # faults per instruction (per copy)
    ipc_r2: float           # R=2, rewind
    ipc_r3_rewind: float    # R=3, rewind
    ipc_r3_majority: float  # R=3, 2-of-3 majority election
    valid: bool             # inside the model's declared validity region


def lambda_grid(start_exp=-8, stop_exp=-1, points_per_decade=4):
    """Logarithmic grid of fault frequencies (faults per instruction)."""
    grid = []
    exponent = start_exp
    while exponent <= stop_exp:
        for step in range(points_per_decade):
            lam = 10.0 ** (exponent + step / points_per_decade)
            if lam <= 10.0 ** stop_exp:
                grid.append(lam)
        exponent += 1
    return grid


def figure_series(penalty_cycles, lambdas=None, ipc1=NORMALISED_IPC1,
                  bottleneck=NORMALISED_BOTTLENECK):
    """Compute the three curves of Figure 3 (or 4) on a lambda grid."""
    lambdas = lambdas if lambdas is not None else lambda_grid()
    series = []
    for lam in lambdas:
        series.append(FigurePoint(
            lam=lam,
            ipc_r2=faulty_ipc(ipc1, 2, bottleneck, lam, penalty_cycles),
            ipc_r3_rewind=faulty_ipc(ipc1, 3, bottleneck, lam,
                                     penalty_cycles),
            ipc_r3_majority=faulty_ipc(ipc1, 3, bottleneck, lam,
                                       penalty_cycles, majority=True),
            valid=model_valid(lam, penalty_cycles)))
    return series


def figure3_series(lambdas=None):
    """Figure 3: Y = 20 cycles."""
    return figure_series(FIGURE3_PENALTY, lambdas)


def figure4_series(lambdas=None):
    """Figure 4: Y = 2000 cycles."""
    return figure_series(FIGURE4_PENALTY, lambdas)


def format_figure_table(series, title):
    """Readable table of one figure's series."""
    lines = [title,
             "%12s %10s %12s %14s %s" % ("faults/instr", "IPC(R=2)",
                                         "IPC(R=3,rw)", "IPC(R=3,maj)",
                                         "model"),
             "-" * 62]
    for point in series:
        lines.append("%12.3e %10.4f %12.4f %14.4f %s"
                     % (point.lam, point.ipc_r2, point.ipc_r3_rewind,
                        point.ipc_r3_majority,
                        "ok" if point.valid else "(out of range)"))
    return "\n".join(lines)
