"""Section 4: analytical performance model of a fault-tolerant superscalar.

Notation follows the paper:

* ``R``      — degree of redundancy;
* ``IPC_1``  — throughput of the unmodified datapath;
* ``B``      — the first resource bottleneck exercised by an application
  (e.g. the number of functional units of some type, in ops/cycle);
* ``lam``    — average transient-fault frequency, in faults per
  instruction *per redundant copy*;
* ``Y``      — average rewind penalty in cycles.

Steady state (Section 4.1)::

    IPC_R = IPC_1 - max(0, (R * IPC_1 - B)) / R      (== min(IPC_1, B/R))

i.e. replication is free until the R data-independent threads saturate
the bottleneck, after which throughput degrades toward ``B / R``.

Recovery (Section 4.2)::

    CPI_R(lam) = CPI_R_ss + Y * R * lam
    IPC_R(lam) = IPC_R_ss / (1 + Y * R * lam * IPC_R_ss)

For an R >= 3 design with majority election, a rewind only happens when
too few copies agree; for independent per-copy faults the per-instruction
rewind probability replaces ``R * lam`` with the tail of a binomial.

The model self-declares its validity region: it overestimates the
penalty once faults are so frequent that ``1 / lam`` approaches ``Y``
(rapid successions of faults merge into one rewind).
"""

from __future__ import annotations

import math

from ..errors import ConfigError


def steady_state_ipc(ipc1, redundancy, bottleneck):
    """IPC of the R-redundant datapath in the absence of faults."""
    if redundancy < 1:
        raise ConfigError("redundancy must be >= 1")
    if ipc1 < 0 or bottleneck <= 0:
        raise ConfigError("ipc1 must be >= 0 and bottleneck > 0")
    penalty = max(0.0, redundancy * ipc1 - bottleneck) / redundancy
    return ipc1 - penalty


def steady_state_penalty(ipc1, redundancy, bottleneck):
    """Fractional throughput loss of redundancy (0 = free, 0.5 = half)."""
    if ipc1 == 0:
        return 0.0
    return 1.0 - steady_state_ipc(ipc1, redundancy, bottleneck) / ipc1


def rewind_rate_full_check(redundancy, lam):
    """Per-instruction rewind probability for a rewind-only design.

    Any of the R copies being struck forces a rewind: ``~ R * lam`` for
    small ``lam`` (the paper's first-order form), computed exactly as the
    complement of "no copy struck".
    """
    lam = min(max(lam, 0.0), 1.0)
    return 1.0 - (1.0 - lam) ** redundancy


def rewind_rate_majority(redundancy, lam, threshold):
    """Per-instruction rewind probability under majority election.

    A rewind is needed only when fewer than ``threshold`` copies agree;
    with independent single-copy faults this means more than
    ``R - threshold`` copies were struck.
    """
    lam = min(max(lam, 0.0), 1.0)
    max_struck_ok = redundancy - threshold
    rate = 0.0
    for struck in range(max_struck_ok + 1, redundancy + 1):
        rate += (math.comb(redundancy, struck) * lam ** struck
                 * (1.0 - lam) ** (redundancy - struck))
    return rate


def ipc_with_faults(ipc_ss, rewind_rate, penalty_cycles):
    """IPC under a given per-instruction rewind probability.

    ``CPI = CPI_ss + Y * p_rewind``, converted back to IPC.
    """
    if ipc_ss <= 0:
        return 0.0
    return ipc_ss / (1.0 + penalty_cycles * rewind_rate * ipc_ss)


def faulty_ipc(ipc1, redundancy, bottleneck, lam, penalty_cycles,
               majority=False, threshold=2):
    """End-to-end Section-4 model: steady state + recovery penalty."""
    ipc_ss = steady_state_ipc(ipc1, redundancy, bottleneck)
    if majority:
        rate = rewind_rate_majority(redundancy, lam, threshold)
    else:
        rate = rewind_rate_full_check(redundancy, lam)
    return ipc_with_faults(ipc_ss, rate, penalty_cycles)


def model_valid(lam, penalty_cycles, margin=10.0):
    """True while the linear-penalty model is trustworthy.

    The paper: "These equations are not accurate for very high error
    frequency (i.e. 1/lam ~ Y) because at such frequencies, rapid
    successions of faults may only incur one rewind penalty."
    """
    if lam <= 0:
        return True
    return 1.0 / lam >= margin * penalty_cycles


def crossover_frequency(ipc_r2, ipc_r3, penalty_cycles, threshold=2,
                        lo=1e-12, hi=0.5):
    """Fault frequency where the R=3-majority design overtakes R=2.

    Solves ``IPC_2(lam) == IPC_3_majority(lam)`` by bisection; returns
    ``None`` if the curves do not cross in ``[lo, hi]`` (e.g. when the
    R=2 design dominates everywhere in range).
    """
    def gap(lam):
        two = ipc_with_faults(ipc_r2, rewind_rate_full_check(2, lam),
                              penalty_cycles)
        three = ipc_with_faults(ipc_r3, rewind_rate_majority(3, lam,
                                                             threshold),
                                penalty_cycles)
        return two - three

    if gap(lo) <= 0 or gap(hi) >= 0:
        return None
    for _ in range(200):
        mid = math.sqrt(lo * hi)  # bisect in log space
        if gap(mid) > 0:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)


# -- Section 4.3: real-time guarantees ---------------------------------------

def worst_case_instructions(window_cycles, ipc_ss, penalty_cycles,
                            max_faults):
    """Guaranteed instruction count within a window of cycles.

    Section 4.3: a real-time guarantee must budget for the worst case of
    ``max_faults`` rewinds inside the window, each costing ``Y`` cycles
    of lost progress.  With a large Y the budget devours small windows,
    "making fine-grain real-time guarantees impossible".
    """
    if window_cycles < 0 or penalty_cycles < 0 or max_faults < 0:
        raise ConfigError("window, penalty and fault count must be >= 0")
    useful_cycles = max(0.0, window_cycles - max_faults * penalty_cycles)
    return useful_cycles * ipc_ss


def min_guarantee_window(instructions_required, ipc_ss, penalty_cycles,
                         max_faults):
    """Smallest window (cycles) that guarantees the instruction count.

    Inverse of :func:`worst_case_instructions`: the fault-free execution
    time plus the worst-case rewind budget.
    """
    if ipc_ss <= 0:
        raise ConfigError("ipc_ss must be positive")
    if instructions_required < 0:
        raise ConfigError("instructions_required must be >= 0")
    return (instructions_required / ipc_ss
            + max_faults * penalty_cycles)
