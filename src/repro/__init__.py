"""repro: a reproduction of "Dual Use of Superscalar Datapath for
Transient-Fault Detection and Recovery" (Ray, Hoe & Falsafi, MICRO 2001).

The package implements, from scratch and in pure Python:

* a cycle-level out-of-order superscalar simulator (:mod:`repro.uarch`)
  with the paper's Table-1 machine configuration;
* the paper's dual-use fault-tolerance extensions (:mod:`repro.core`):
  dynamic instruction replication, commit-stage cross-checking, rewind
  and majority-election recovery, and fault injection;
* all supporting substrates: ISA + assembler (:mod:`repro.isa`),
  in-order golden-model simulation (:mod:`repro.functional`), cache
  hierarchy (:mod:`repro.memory`), branch prediction
  (:mod:`repro.branch`), Hamming-SECDED ECC (:mod:`repro.ecc`);
* synthetic SPEC-like workloads calibrated to the paper's Table 2
  (:mod:`repro.workloads`) and machine-model presets
  (:mod:`repro.models`);
* the Section-4 analytical model (:mod:`repro.analytical`) and an
  experiment harness regenerating every table and figure
  (:mod:`repro.harness`);
* resumable, parallel Monte Carlo fault-injection campaigns with
  outcome classification and Wilson confidence intervals
  (:mod:`repro.campaign`).

Quickstart::

    from repro import build_workload, run_on_model, ss1, ss2

    program = build_workload("gcc")
    for model in (ss1(), ss2()):
        result = run_on_model(program, model, max_instructions=10_000)
        print(model.name, result.ipc)
"""

from .campaign import (CampaignSession, CampaignSpec, ExecutionOptions,
                       run_campaign)
from .core.config import (DUAL_REDUNDANT, TRIPLE_MAJORITY, TRIPLE_REWIND,
                          UNPROTECTED, FTConfig)
from .core.faults import FaultConfig, FaultInjector
from .harness.experiment import run_on_model
from .isa.assembler import assemble
from .isa.builder import ProgramBuilder
from .models.presets import (MachineModel, baseline_config, get_model,
                             ss1, ss2, ss3, static2)
from .program.image import Program
from .uarch.config import MachineConfig
from .uarch.processor import Processor, simulate
from .workloads.generator import build_workload

__version__ = "1.1.0"

__all__ = [
    "CampaignSession", "CampaignSpec", "ExecutionOptions", "run_campaign",
    "DUAL_REDUNDANT", "TRIPLE_MAJORITY", "TRIPLE_REWIND", "UNPROTECTED",
    "FTConfig", "FaultConfig", "FaultInjector", "run_on_model",
    "assemble", "ProgramBuilder", "MachineModel", "baseline_config",
    "get_model", "ss1", "ss2", "ss3", "static2", "Program",
    "MachineConfig", "Processor", "simulate", "build_workload",
    "__version__",
]
