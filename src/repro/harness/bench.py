"""Simulator performance benchmark: optimized engine vs the frozen
pre-overhaul reference, with results persisted to ``BENCH_simulator.json``.

Two measurements, both run through :func:`run_bench` (the ``repro-ft
bench`` subcommand):

* **engine** — single simulations per (workload, model): wall time and
  cycles/second for the :class:`~repro.uarch.reference.
  ReferenceProcessor` and the optimized :class:`~repro.uarch.processor.
  Processor`, with a byte-identical :class:`PipelineStats` check per
  pair;
* **campaign** — the paper's Figure-6 fault-sweep grid (fpppp on the
  R=2 and R=3 machines across the figure's fault-rate ladder, 64
  trials) executed twice through :func:`repro.campaign.engine.
  run_campaign`: once on the unoptimized path (reference engine, naive
  per-trial golden classification) and once on the optimized path
  (cycle skipping, decoded-program cache, memoized golden traces,
  fault-free result reuse).  The two record lists must be
  byte-identical; wall times, trials/second and the speedup are
  recorded.

Divergence between the two paths raises :class:`BenchDivergence` — the
CI smoke job relies on that to fail the build.  Absolute timings are
recorded, never asserted in-process (shared runners are noisy); the
committed ``BENCH_simulator.json`` documents the measured trajectory
per host, and ``repro.perf`` (``repro-ft bench --diff/--check``) turns
that history into statistically-gated regression detection — each
entry stores *per-repeat* wall-time samples per phase (schema v3) so
comparisons have a distribution, not a point.
"""

from __future__ import annotations

import platform
import sys
import time

from ..campaign.api import CampaignSession, ExecutionOptions
from ..campaign.golden import clear_trace_cache
from ..campaign.outcome import (cache_stats, clear_result_caches,
                                phase_times, reset_phase_times,
                                set_phase_clock)
from ..campaign.spec import CampaignSpec
from ..models.presets import get_model
from ..perf.history import (SCHEMA_VERSION, BenchHistory,
                            host_fingerprint)
from ..program.cache import cached_workload
from ..uarch.processor import Processor
from ..uarch.reference import ReferenceProcessor

#: v2 made the written file an append-per-PR history (top level = the
#: latest entry, prior entries under ``history``); v3 adds per-repeat
#: wall-time samples per phase and a host fingerprint to every new
#: entry.  See :mod:`repro.perf.history` for the authoritative schema.
BENCH_VERSION = SCHEMA_VERSION
DEFAULT_OUT = "BENCH_simulator.json"

#: Campaign-path timing repeats when the caller does not say (the
#: quick CI grids keep a single repeat unless --repeats is explicit).
DEFAULT_REPEATS = 3

#: Single-simulation grid: paper-canonical workloads on the baseline
#: and the dual-redundant machine.
ENGINE_WORKLOADS = ("gcc", "go", "fpppp", "ammp")
ENGINE_MODELS = ("SS-1", "SS-2")
ENGINE_INSTRUCTIONS = 1_500

#: The Figure-6 fault-frequency ladder (faults per million
#: instructions) — the campaign bench sweeps it end to end.
FIGURE6_BENCH_RATES = (0.0, 10.0, 100.0, 300.0, 1000.0, 3000.0,
                       10_000.0, 30_000.0)


class BenchDivergence(AssertionError):
    """Optimized and reference execution paths disagreed."""


def campaign_bench_spec(quick=False):
    """The campaign grid the bench times (64 trials; 8 with --quick)."""
    if quick:
        return CampaignSpec(
            name="bench-hotpath-quick",
            workloads=("fpppp",),
            models=("SS-2",),
            rates_per_million=(0.0, 300.0, 3_000.0, 30_000.0),
            replicates=2,
            instructions=600)
    return CampaignSpec(
        name="bench-hotpath",
        workloads=("fpppp",),
        models=("SS-2", "SS-3"),
        rates_per_million=FIGURE6_BENCH_RATES,
        replicates=4,
        instructions=1_500)


def _run_engine_once(processor_class, program, model,
                     instructions):
    start = time.perf_counter()
    processor = processor_class(program, config=model.config,
                                ft=model.ft)
    processor.run(max_instructions=instructions, max_cycles=400_000)
    elapsed = time.perf_counter() - start
    return elapsed, processor.stats


def bench_engine(workloads=ENGINE_WORKLOADS, models=ENGINE_MODELS,
                 instructions=ENGINE_INSTRUCTIONS, repeats=2):
    """Single-simulation A/B grid; returns a JSON-ready dict."""
    rows = []
    for workload in workloads:
        program = cached_workload(workload)
        for model_name in models:
            model = get_model(model_name)
            best = {"reference": None, "optimized": None}
            stats = {}
            for label, cls in (("reference", ReferenceProcessor),
                               ("optimized", Processor)):
                for _ in range(repeats):
                    elapsed, run_stats = _run_engine_once(
                        cls, program, model, instructions)
                    if best[label] is None or elapsed < best[label]:
                        best[label] = elapsed
                stats[label] = run_stats.as_dict()
            if stats["reference"] != stats["optimized"]:
                raise BenchDivergence(
                    "engine divergence on %s/%s: reference and "
                    "optimized PipelineStats differ"
                    % (workload, model_name))
            cycles = stats["optimized"]["cycles"]
            rows.append({
                "workload": workload,
                "model": model_name,
                "instructions": instructions,
                "cycles": cycles,
                "reference_seconds": round(best["reference"], 6),
                "optimized_seconds": round(best["optimized"], 6),
                "reference_cycles_per_sec":
                    round(cycles / best["reference"], 1),
                "optimized_cycles_per_sec":
                    round(cycles / best["optimized"], 1),
                "speedup": round(best["reference"] / best["optimized"],
                                 3),
            })
    return {"instructions": instructions, "rows": rows}


def bench_campaign(quick=False, workers=1, repeats=None,
                   checkpointing=False):
    """Campaign-path A/B run; returns a JSON-ready dict.

    Each path is timed ``repeats`` times (``None``: 3, or 1 with
    ``quick``).  The headline numbers keep the *best* wall clock
    (scheduler noise only ever adds time), and every repeat's wall
    time is additionally recorded — ``reference_sample_seconds`` /
    ``optimized_sample_seconds``, plus a per-phase sample matrix
    ``optimized_phase_sample_seconds`` — so ``repro-ft bench --diff``
    has a distribution to test, not a point.  ``checkpointing`` runs
    the optimized side with checkpointed fast-forward (and persistent
    workers when ``workers > 1``) — the divergence check is the same
    either way.  The optimized side's best run also reports a
    per-phase wall-time breakdown (decode / golden / simulate /
    classify) and the trial-cache counters; phases are measured
    in-process, so they read zero when ``workers > 1`` moves trial
    execution into pool children.  Raises :class:`BenchDivergence`
    unless the optimized path's records are byte-identical to the
    unoptimized path's.
    """
    spec = campaign_bench_spec(quick=quick)
    if repeats is None:
        repeats = 1 if quick else DEFAULT_REPEATS
    if repeats < 1:
        raise ValueError("repeats must be >= 1, got %d" % repeats)
    reference_options = ExecutionOptions(simulator="reference",
                                         golden_cache=False,
                                         reuse_faultfree=False,
                                         workers=workers)
    optimized_options = ExecutionOptions(
        workers=workers, checkpointing=checkpointing,
        persistent_workers=checkpointing and workers > 1)
    reference = optimized = None
    reference_samples = []
    optimized_samples = []
    phase_samples = {}
    for _ in range(repeats):
        clear_result_caches()
        clear_trace_cache()
        start = time.perf_counter()
        reference = CampaignSession(spec,
                                    options=reference_options).run()
        reference_samples.append(time.perf_counter() - start)
    phases = caches = None
    optimized_seconds = None
    set_phase_clock(time.perf_counter)
    try:
        for _ in range(repeats):
            clear_result_caches()
            clear_trace_cache()
            reset_phase_times()
            start = time.perf_counter()
            optimized = CampaignSession(spec,
                                        options=optimized_options).run()
            elapsed = time.perf_counter() - start
            optimized_samples.append(elapsed)
            run_phases = phase_times()
            for name, seconds in run_phases.items():
                phase_samples.setdefault(name, []).append(seconds)
            if optimized_seconds is None or elapsed < optimized_seconds:
                optimized_seconds = elapsed
                phases = run_phases
                caches = cache_stats()
    finally:
        set_phase_clock(None)
    if reference.records != optimized.records:
        differing = [left["key"] for left, right
                     in zip(reference.records, optimized.records)
                     if left != right]
        raise BenchDivergence(
            "campaign divergence: %d of %d trial records differ "
            "between the optimized and unoptimized paths (keys: %s)"
            % (len(differing), len(reference.records),
               ", ".join(differing[:8])))
    trials = len(reference.records)
    reference_seconds = min(reference_samples)
    return {
        "spec": spec.to_dict(),
        "trials": trials,
        "workers": workers,
        "repeats": repeats,
        "checkpointing": checkpointing,
        "identical_records": True,
        "optimized_phase_seconds": {
            name: round(seconds, 3)
            for name, seconds in sorted(phases.items())},
        "optimized_phase_sample_seconds": {
            name: [round(seconds, 6) for seconds in samples]
            for name, samples in sorted(phase_samples.items())},
        "optimized_cache_stats": caches,
        "reference_seconds": round(reference_seconds, 3),
        "optimized_seconds": round(optimized_seconds, 3),
        "reference_sample_seconds": [round(seconds, 6)
                                     for seconds in reference_samples],
        "optimized_sample_seconds": [round(seconds, 6)
                                     for seconds in optimized_samples],
        "reference_trials_per_sec": round(trials / reference_seconds,
                                          3),
        "optimized_trials_per_sec": round(trials / optimized_seconds,
                                          3),
        "speedup": round(reference_seconds / optimized_seconds, 3),
    }


def run_bench(quick=False, out=DEFAULT_OUT, workers=1, note="",
              checkpointing=False, repeats=None):
    """Run both benches; write ``out`` (unless empty); return the dict.

    ``out`` is an append-per-PR history (see
    :class:`repro.perf.history.BenchHistory` for the schema): the new
    measurement becomes the file's top level (schema-compatible with
    the v1 single-entry file and the CI divergence check), and every
    earlier entry is preserved, oldest first, under ``history``.  A
    missing ``out`` starts a fresh history; a *corrupt* one raises
    :class:`~repro.errors.HistoryError` instead of silently dropping
    the recorded trajectory.  ``note`` is a free-form label recorded
    with the entry (what this measurement demonstrates — e.g. which
    PR's overhead claim it pins); ``repeats`` is the campaign-path
    sample count per side (``None``: 3 full / 1 quick).
    """
    if quick:
        engine = bench_engine(workloads=("gcc", "fpppp"),
                              instructions=600, repeats=1)
    else:
        engine = bench_engine()
    campaign = bench_campaign(quick=quick, workers=workers,
                              checkpointing=checkpointing,
                              repeats=repeats)
    host_platform = platform.platform()
    host_python = sys.version.split()[0]
    payload = {
        "version": BENCH_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "host": {
            "platform": host_platform,
            "python": host_python,
            "fingerprint": host_fingerprint(host_platform,
                                            host_python),
        },
        "engine": engine,
        "campaign": campaign,
    }
    if note:
        payload["note"] = note
    if out:
        history = BenchHistory.load(out)
        history.append(payload)
        history.save(out)
        payload = history.to_payload()
    return payload


def format_bench_summary(payload):
    """Readable multi-line summary of a bench payload."""
    lines = ["simulator hot-path benchmark (%s)"
             % payload["generated_at"],
             "",
             "engine (single simulations, %d instructions):"
             % payload["engine"]["instructions"]]
    for row in payload["engine"]["rows"]:
        lines.append(
            "  %-7s %-5s reference %8.1f cyc/s   optimized %9.1f "
            "cyc/s   speedup %.2fx"
            % (row["workload"], row["model"],
               row["reference_cycles_per_sec"],
               row["optimized_cycles_per_sec"], row["speedup"]))
    campaign = payload["campaign"]
    lines += [
        "",
        "campaign (%d trials, %d worker%s):"
        % (campaign["trials"], campaign["workers"],
           "" if campaign["workers"] == 1 else "s"),
        "  unoptimized path  %7.2fs  (%.2f trials/s)"
        % (campaign["reference_seconds"],
           campaign["reference_trials_per_sec"]),
        "  optimized path    %7.2fs  (%.2f trials/s)%s"
        % (campaign["optimized_seconds"],
           campaign["optimized_trials_per_sec"],
           "  [checkpointing]" if campaign.get("checkpointing")
           else ""),
        "  speedup           %6.2fx  (records byte-identical)"
        % campaign["speedup"],
    ]
    phases = campaign.get("optimized_phase_seconds") or {}
    if any(phases.values()):
        lines.append(
            "  phases            " + "  ".join(
                "%s %.2fs" % (name, phases[name])
                for name in ("decode", "golden", "simulate",
                             "classify") if name in phases))
    return "\n".join(lines)
