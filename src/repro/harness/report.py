"""Plain-text report formatting: tables and ASCII charts.

Everything the paper shows as a figure can be rendered as an ASCII chart
(series over a log-x axis) so the benchmark harness works in a terminal
with no plotting dependencies.
"""

from __future__ import annotations

import math


def format_figure5_table(rows):
    """Figure-5 style table: per-benchmark IPC of the three machines."""
    header = ("%-8s %8s %10s %8s %12s" % ("bench", "SS-1", "Static-2",
                                          "SS-2", "SS-2 penalty"))
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("%-8s %8.3f %10.3f %8.3f %11.1f%%"
                     % (row.benchmark, row.ipc("SS-1"),
                        row.ipc("Static-2"), row.ipc("SS-2"),
                        100.0 * row.ss2_penalty))
    average = sum(row.ss2_penalty for row in rows) / len(rows)
    lines.append("-" * len(header))
    lines.append("%-8s %38s %11.1f%%" % ("average", "", 100.0 * average))
    return "\n".join(lines)


def format_figure6_table(points):
    """Figure-6 style table: IPC vs fault frequency for both designs."""
    header = ("%14s %10s %10s %10s %10s"
              % ("faults/Minstr", "IPC R=2", "IPC R=3", "rewinds R2",
                 "maj. R3"))
    lines = [header, "-" * len(header)]
    for point in points:
        r2 = point.results["R=2"]
        r3 = point.results["R=3"]
        lines.append("%14.0f %10.3f %10.3f %10d %10d"
                     % (point.rate_per_million, r2.ipc, r3.ipc,
                        r2.rewinds, r3.majority_commits))
    return "\n".join(lines)


def format_sensitivity_table(rows):
    """Section-5.2 sensitivity study table with limiter classification."""
    header = ("%-8s %7s | %7s %7s %7s | %7s %7s %7s | %s"
              % ("bench", "base", "fu.5x", "fu2x", "fuInf", "ruu.5x",
                 "ruu2x", "ruuInf", "classification"))
    lines = [header, "-" * len(header)]
    for row in rows:
        tags = []
        if row.fu_limited:
            tags.append("FU-limited")
        if row.ruu_limited:
            tags.append("RUU-limited")
        if row.ilp_limited:
            tags.append("ILP-limited")
        lines.append("%-8s %7.3f | %7.3f %7.3f %7.3f | %7.3f %7.3f "
                     "%7.3f | %s"
                     % (row.benchmark, row.base_ipc,
                        row.fu_ipc["0.5x"], row.fu_ipc["2x"],
                        row.fu_ipc["inf"], row.ruu_ipc["0.5x"],
                        row.ruu_ipc["2x"], row.ruu_ipc["inf"],
                        ", ".join(tags)))
    return "\n".join(lines)


def format_campaign_table(cells):
    """Per-cell campaign aggregate with Wilson confidence intervals.

    One row per (workload, model, machine override, rate, mix) grid
    cell: trial count, outcome-class counts, coverage over fault-struck
    trials and SDC rate (each with its 95% Wilson interval), mean IPC
    and the observed mean recovery penalty Y.  The machine column only
    appears when the campaign swept a ``machine_overrides`` axis.
    """
    with_machine = any(getattr(cell, "machine", "") for cell in cells)
    machine_header = "%-10s " % "machine" if with_machine else ""
    with_sites = any(getattr(cell, "sites", "") for cell in cells)
    sites_header = "%-16s " % "sites" if with_sites else ""
    header = ("%-8s %-8s %s%s%9s %-13s %4s %5s %5s %4s %4s  %-19s %-19s "
              "%6s %6s"
              % ("bench", "model", machine_header, sites_header, "flt/M",
                 "mix", "n", "mask", "d+r", "sdc", "t/o",
                 "coverage [95% CI]", "sdc rate [95% CI]", "IPC", "Y"))
    lines = [header, "-" * len(header)]
    for cell in cells:
        counts = cell.counts
        if cell.coverage is None:
            coverage = "      (no faults)  "
        else:
            low, high = cell.coverage_interval
            coverage = "%5.3f [%5.3f,%5.3f]" % (cell.coverage, low, high)
        low, high = cell.sdc_interval
        sdc = "%5.3f [%5.3f,%5.3f]" % (cell.sdc_rate, low, high)
        machine = ("%-10s " % (getattr(cell, "machine", "") or "-")
                   if with_machine else "")
        sites = ("%-16s " % (getattr(cell, "sites", "") or "-")
                 if with_sites else "")
        lines.append(
            "%-8s %-8s %s%s%9.0f %-13s %4d %5d %5d %4d %4d  %s %s %6.3f "
            "%6.1f"
            % (cell.workload, cell.model, machine, sites,
               cell.rate_per_million, cell.mix, cell.n,
               counts["masked"], counts["detected_recovered"],
               counts["sdc"], counts["timeout"], coverage, sdc,
               cell.mean_ipc, cell.mean_recovery_penalty))
    return "\n".join(lines)


def format_structure_table(rows):
    """Per-structure fault-sensitivity table with Wilson intervals.

    One row per addressable structure targeted by a fault-site
    campaign (:func:`repro.campaign.aggregate.aggregate_structures`):
    trial and applied-strike counts, then coverage, SDC rate and
    masked rate over the struck trials, each with its 95% Wilson
    interval.
    """
    header = ("%-15s %5s %6s %7s %5s %4s %4s %4s  %-19s %-19s %-19s"
              % ("structure", "n", "struck", "strikes", "mask", "d+r",
                 "sdc", "t/o", "coverage [95% CI]",
                 "sdc rate [95% CI]", "masked [95% CI]"))
    lines = [header, "-" * len(header)]

    def fmt(value, interval):
        if value is None:
            return "     (not struck)  "
        low, high = interval
        return "%5.3f [%5.3f,%5.3f]" % (value, low, high)

    for row in rows:
        # Outcome columns over struck trials only, like the rates, so
        # every row reconciles: mask + d+r + sdc + t/o == struck.
        struck = row.struck_trials
        detected = row.covered_trials - row.masked_struck
        other = struck - row.covered_trials - row.sdc_struck
        lines.append(
            "%-15s %5d %6d %7d %5d %4d %4d %4d  %s %s %s"
            % (row.structure, row.n, struck, row.strikes_applied,
               row.masked_struck, detected, row.sdc_struck, other,
               fmt(row.coverage, row.coverage_interval),
               fmt(row.sdc_rate, row.sdc_interval),
               fmt(row.masked_rate, row.masked_interval)))
    return "\n".join(lines)


def format_faults_listing(structures, widths, descriptions, presets,
                          policies):
    """The ``repro-ft faults --list`` inventory: addressable
    structures, kind-mix presets and registered injection policies."""
    lines = ["Addressable fault structures", ""]
    name_width = max(len(name) for name in structures)
    for name in structures:
        lines.append("  %-*s  %2d-bit  %s"
                     % (name_width, name, widths[name],
                        descriptions[name]))
    lines += ["", "Kind-mix presets (legacy rate injector)", ""]
    for name in sorted(presets):
        weights = presets[name]
        lines.append("  %-14s %s"
                     % (name, ", ".join("%s=%.2f" % (kind, weights[kind])
                                        for kind in sorted(weights))))
    lines += ["", "Registered injection policies", ""]
    for name in sorted(policies):
        lines.append("  %-16s %s" % (name, policies[name]))
    return "\n".join(lines)


def format_campaign_summary(result, elapsed=None):
    """One-paragraph header for a finished campaign run."""
    spec = result.spec
    counts = result.outcome_counts
    machines = len(getattr(spec, "machine_overrides", {}) or {})
    machine_axis = " x %d machines" % machines if machines else ""
    sites = len(getattr(spec, "fault_sites", {}) or {})
    sites_axis = " x %d site cells" % sites if sites else ""
    lines = [
        "campaign %r: %d trials (%d workloads x %d models%s x %d rates "
        "x %d mixes%s x %d replicates)"
        % (spec.name, len(result.records), len(spec.workloads),
           len(spec.models), machine_axis,
           len(spec.rates_per_million), len(spec.mixes), sites_axis,
           spec.replicates),
        "executed %d, resumed (skipped) %d"
        % (result.executed, result.skipped),
        "outcomes: " + ", ".join(
            "%s %d" % (name, counts[name]) for name in sorted(counts)),
    ]
    if elapsed is not None:
        lines.append("wall clock: %.2f s (%.1f trials/s)"
                     % (elapsed, result.executed / elapsed
                        if elapsed > 0 else 0.0))
    return "\n".join(lines)


def format_adaptive_summary(summary):
    """What the adaptive sampler did: per-cell sample sizes, skipped
    replicates and final half-widths, plus the plan and the totals.

    ``summary`` is a :class:`repro.campaign.adaptive.AdaptiveSummary`
    (or its ``as_dict()``).
    """
    data = summary if isinstance(summary, dict) else summary.as_dict()
    plan = data["plan"]
    lines = [
        "adaptive sampling: wilson(target halfwidth %.4g, metric %s, "
        "min %d%s)"
        % (plan["target_halfwidth"], plan["metric"],
           plan["min_replicates"],
           ", max %d" % plan["max_replicates"]
           if plan.get("max_replicates") is not None else ""),
        "converged %d of %d cells early; executed %d trials, "
        "skipped %d pre-keyed replicates"
        % (data["converged_cells"], len(data["cells"]),
           data["total_executed"], data["total_skipped"]),
    ]
    with_machine = any(cell.get("machine") for cell in data["cells"])
    machine_header = "%-10s " % "machine" if with_machine else ""
    with_sites = any(cell.get("sites") for cell in data["cells"])
    sites_header = "%-16s " % "sites" if with_sites else ""
    header = ("%-8s %-8s %s%s%9s %-13s %4s %5s %5s %10s %s"
              % ("bench", "model", machine_header, sites_header,
                 "flt/M", "mix", "n", "run", "skip", "halfwidth",
                 "closed"))
    lines += ["", header, "-" * len(header)]
    for cell in data["cells"]:
        machine = ("%-10s " % (cell.get("machine") or "-")
                   if with_machine else "")
        sites = ("%-16s " % (cell.get("sites") or "-")
                 if with_sites else "")
        lines.append(
            "%-8s %-8s %s%s%9.0f %-13s %4d %5d %5d %10.4f %s"
            % (cell["workload"], cell["model"], machine, sites,
               cell["rate_per_million"], cell["mix"], cell["n"],
               cell["executed"], cell["skipped"], cell["halfwidth"],
               cell["closed"]))
    return "\n".join(lines)


def format_orchestrate_summary(orchestrator, elapsed=None):
    """One-paragraph header for a finished multi-shard campaign."""
    workers = orchestrator.workers
    result = orchestrator.result
    lines = [
        "orchestrated %d shard%s (%s mode): %d records merged into %s"
        % (len(workers), "" if len(workers) == 1 else "s",
           orchestrator.mode, len(result.records),
           orchestrator.merged_store.path),
        "shard stores: " + ", ".join(
            "%d: %d record%s%s"
            % (worker.index, len(worker.seen),
               "" if len(worker.seen) == 1 else "s",
               " (%d restart%s)" % (worker.restarts,
                                    "" if worker.restarts == 1 else "s")
               if worker.restarts else "")
            for worker in workers),
    ]
    if elapsed is not None:
        lines.append("wall clock: %.2f s (%.1f trials/s)"
                     % (elapsed, result.executed / elapsed
                        if elapsed > 0 else 0.0))
    return "\n".join(lines)


def format_machine_table(config):
    """Table-1 style machine-parameter listing from a MachineConfig."""
    hierarchy = config.hierarchy
    rows = [
        ("Fetch/Decode/Dispatch/Issue width",
         "%d" % config.fetch_width),
        ("RUU/LSQ size", "%d/%d" % (config.rob_size, config.lsq_size)),
        ("Branch predictor",
         "combined: %d-entry bimodal + 2-level (%d-entry L1, %d-bit "
         "history, %d-entry L2, xor=%s); %d-entry meta"
         % (config.branch.bimodal_size, config.branch.l1_size,
            config.branch.history_bits, config.branch.l2_size,
            config.branch.use_xor, config.branch.meta_size)),
        ("BTB / RAS", "%dx%d / %d deep"
         % (config.branch.btb_sets, config.branch.btb_assoc,
            config.branch.ras_depth)),
        ("Instruction L1 cache", "%d KB, %d-way"
         % (hierarchy.il1.size_bytes // 1024, hierarchy.il1.assoc)),
        ("Data L1 cache", "%d KB, %d-way, %d R/W ports"
         % (hierarchy.dl1.size_bytes // 1024, hierarchy.dl1.assoc,
            config.mem_ports)),
        ("Unified L2 cache", "%d KB, %d-way"
         % (hierarchy.l2.size_bytes // 1024, hierarchy.l2.assoc)),
        ("Functional unit mix",
         "%d IntALU, %d IntMult, %d FPAdd, %d FPMult/Div"
         % (config.int_alu, config.int_mult, config.fp_add,
            config.fp_mult)),
        ("Latencies",
         "alu %d, imult %d, idiv %d (unpipelined), fpadd %d, fpmult %d, "
         "fpdiv %d / fpsqrt %d (unpipelined)"
         % (config.lat_int_alu, config.lat_int_mult, config.lat_int_div,
            config.lat_fp_add, config.lat_fp_mult, config.lat_fp_div,
            config.lat_fp_sqrt)),
    ]
    width = max(len(name) for name, _ in rows)
    return "\n".join("%-*s  %s" % (width, name, value)
                     for name, value in rows)


def ascii_chart(series, width=64, height=16, logx=True, title=""):
    """Render named (x, y) series as an ASCII chart.

    ``series`` is a list of (name, marker, [(x, y), ...]) tuples.  The
    x-axis is logarithmic by default (fault-frequency sweeps).
    """
    points = [(x, y) for _, _, data in series for x, y in data if x > 0
              or not logx]
    if not points:
        return title + "\n(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if logx:
        x_lo, x_hi = math.log10(x_lo), math.log10(x_hi)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    def place(x, y, marker):
        if logx:
            if x <= 0:
                return
            x = math.log10(x)
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    for _, marker, data in series:
        for x, y in data:
            place(x, y, marker)
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join("%s=%s" % (marker, name)
                       for name, marker, _ in series)
    lines.append(legend)
    lines.append("%8.3f +%s" % (y_hi, "-" * width))
    for row in grid:
        lines.append("         |" + "".join(row))
    lines.append("%8.3f +%s" % (y_lo, "-" * width))
    if logx:
        lines.append("          x: 1e%.1f .. 1e%.1f (log)" % (x_lo, x_hi))
    else:
        lines.append("          x: %g .. %g" % (x_lo, x_hi))
    return "\n".join(lines)
