"""Experiment harness: runners, reports and the repro-ft CLI."""

from .experiment import (DEFAULT_INSTRUCTIONS, FIGURE6_RATES, Figure5Row,
                         Figure6Point, RunResult, SensitivityRow,
                         figure5_rows, figure6_points, physreg_ablation,
                         recovery_cost, rename_scheme_comparison,
                         run_on_model, sensitivity_rows, table2_rows)
from .report import (ascii_chart, format_figure5_table,
                     format_figure6_table, format_machine_table,
                     format_sensitivity_table)

__all__ = [
    "DEFAULT_INSTRUCTIONS", "FIGURE6_RATES", "Figure5Row", "Figure6Point",
    "RunResult", "SensitivityRow", "figure5_rows", "figure6_points",
    "physreg_ablation", "recovery_cost", "rename_scheme_comparison",
    "run_on_model", "sensitivity_rows", "table2_rows", "ascii_chart",
    "format_figure5_table", "format_figure6_table",
    "format_machine_table", "format_sensitivity_table",
]
