"""Command-line interface: regenerate any table or figure of the paper,
or run Monte Carlo fault-injection campaigns.

Examples::

    repro-ft table1
    repro-ft table2 --instructions 30000
    repro-ft figure3
    repro-ft figure5 --instructions 20000
    repro-ft figure6 --benchmark fpppp
    repro-ft sensitivity --benchmarks go,vpr,ammp,gcc
    repro-ft coverage
    repro-ft demo
    repro-ft campaign --workloads gcc,go --models SS-1,SS-2 \\
        --rates 0,1000,10000 --replicates 8 --workers 4 \\
        --store results.jsonl
    repro-ft campaign --spec campaign.json --workers 4 \\
        --store sqlite:results.db --resume
    repro-ft campaign --shard 0/2 --store shard:results/ ...
    repro-ft campaign --override rob64:rob_size=64 \\
        --override alu8:int_alu=8 ...
    repro-ft campaign --store results.jsonl --compact
    repro-ft campaign --sites all --replicates 16      # per-structure
    repro-ft campaign --sites rob_entry,pc --strikes 2 # sensitivity
    repro-ft campaign --adaptive 0.05 --adaptive-metric coverage \\
        --replicates 64 ...                 # stop converged cells early
    repro-ft orchestrate --shards 4 --store-dir results/ \\
        --workloads gcc,go --replicates 32  # multi-shard driver
    repro-ft orchestrate --shards 2 --store-dir results/ \\
        --adaptive 0.1 --adaptive-metric sdc_rate ...
    repro-ft faults --list
    repro-ft bench --quick
    repro-ft bench --out BENCH_simulator.json
"""

from __future__ import annotations

import argparse
import sys
import time

from ..analytical.figures import (figure3_series, figure4_series,
                                  format_figure_table)
from ..core.sphere import FT_COVERAGE, coverage_table
from ..models.presets import baseline_config
from ..workloads.mix import format_mix_table
from ..workloads.profiles import BENCHMARK_ORDER
from . import experiment
from .report import (ascii_chart, format_adaptive_summary,
                     format_campaign_summary, format_campaign_table,
                     format_faults_listing, format_figure5_table,
                     format_figure6_table, format_machine_table,
                     format_orchestrate_summary,
                     format_sensitivity_table, format_structure_table)


def _add_common(parser):
    parser.add_argument("--instructions", type=int, default=20_000,
                        help="committed instructions per simulation")


def _cmd_table1(args):
    print("Table 1: baseline superscalar machine parameters\n")
    print(format_machine_table(baseline_config()))


def _cmd_table2(args):
    rows = experiment.table2_rows(instructions=args.instructions)
    print("Table 2: measured dynamic instruction mix "
          "(synthetic workloads)\n")
    print(format_mix_table(rows))


def _cmd_figure3(args):
    series = figure3_series()
    print(format_figure_table(series, "Figure 3: IPC vs fault frequency "
                                      "(Y = 20 cycles, IPC1 = B = 1)"))
    print()
    print(ascii_chart(
        [("R=2", "2", [(p.lam, p.ipc_r2) for p in series]),
         ("R=3 rewind", "3", [(p.lam, p.ipc_r3_rewind) for p in series]),
         ("R=3 majority", "m",
          [(p.lam, p.ipc_r3_majority) for p in series])],
        title="Figure 3 (Y=20)"))


def _cmd_figure4(args):
    series = figure4_series()
    print(format_figure_table(series, "Figure 4: IPC vs fault frequency "
                                      "(Y = 2000 cycles)"))
    print()
    print(ascii_chart(
        [("R=2", "2", [(p.lam, p.ipc_r2) for p in series]),
         ("R=3 rewind", "3", [(p.lam, p.ipc_r3_rewind) for p in series]),
         ("R=3 majority", "m",
          [(p.lam, p.ipc_r3_majority) for p in series])],
        title="Figure 4 (Y=2000)"))


def _cmd_figure5(args):
    benchmarks = args.benchmarks.split(",") if args.benchmarks \
        else BENCHMARK_ORDER
    rows = experiment.figure5_rows(benchmarks=benchmarks,
                                   instructions=args.instructions)
    print("Figure 5: steady-state IPC comparison\n")
    print(format_figure5_table(rows))


def _cmd_figure6(args):
    points = experiment.figure6_points(benchmark=args.benchmark,
                                       instructions=args.instructions)
    print("Figure 6: IPC vs fault frequency for %s\n" % args.benchmark)
    print(format_figure6_table(points))
    print()
    print(ascii_chart(
        [("R=2", "2", [(max(p.rate_per_million, 1.0),
                        p.results["R=2"].ipc) for p in points]),
         ("R=3 majority", "3", [(max(p.rate_per_million, 1.0),
                                 p.results["R=3"].ipc)
                                for p in points])],
        title="Figure 6 (%s)" % args.benchmark))


def _cmd_sensitivity(args):
    benchmarks = args.benchmarks.split(",") if args.benchmarks \
        else BENCHMARK_ORDER
    rows = experiment.sensitivity_rows(benchmarks=benchmarks,
                                       instructions=args.instructions)
    print("Section 5.2: FU / RUU sensitivity of the SS-1 baseline\n")
    print(format_sensitivity_table(rows))


def _cmd_coverage(args):
    print("Sphere-of-replication coverage audit (Section 3.4)\n")
    print(coverage_table(FT_COVERAGE))


def _cmd_demo(args):
    from ..core.faults import FaultConfig
    from ..models.presets import ss1, ss2
    from ..workloads.generator import build_workload
    program = build_workload("gcc")
    print("Demo: gcc-like workload, %d instructions\n"
          % args.instructions)
    for model in (ss1(), ss2()):
        result = experiment.run_on_model(
            program, model, max_instructions=args.instructions)
        print("%-9s IPC %.3f" % (model.name, result.ipc))
    faulty = experiment.run_on_model(
        program, ss2(), max_instructions=args.instructions,
        fault_config=FaultConfig(rate_per_million=500.0))
    print("%-9s IPC %.3f with faults: %d injected, %d detected, "
          "%d rewinds" % ("SS-2+f", faulty.ipc, faulty.faults_injected,
                          faulty.faults_detected, faulty.rewinds))


#: The campaign parser's --rates default (swapped for 0 by --sites).
_DEFAULT_RATES = "0,1000,10000"


def _parse_override_value(text):
    """CLI override value: int, then float, then bool, else string."""
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


def _parse_overrides(flags):
    """``--override [name:]key=value[,key=value...]`` flags to an axis.

    Each flag instance becomes one ``machine_overrides`` grid cell;
    the name defaults to the key=value spec itself, and an empty body
    (``--override base:``) is the unmodified machine.
    """
    axis = {}
    for flag in flags:
        name, colon, body = flag.partition(":")
        if not colon or "=" in name:
            name, body = flag, flag
        overrides = {}
        for pair in body.split(",") if body else ():
            key, equals, value = pair.partition("=")
            if not equals or not key:
                raise ValueError(
                    "--override expects [name:]key=value[,key=value...]"
                    ", got %r" % flag)
            overrides[key.strip()] = _parse_override_value(value.strip())
        if name in axis:
            raise ValueError("duplicate --override name %r" % name)
        axis[name] = overrides
    return axis


def _parse_sites(text, strikes):
    """``--sites STRUCT[,STRUCT...]|all`` to a ``fault_sites`` axis.

    Each structure becomes one :class:`StructureSweepPolicy` grid cell
    (``strikes`` uniform strikes per trial, targets drawn from each
    trial's content-derived seed).
    """
    from ..faults.sites import STRUCTURES
    names = STRUCTURES if text == "all" \
        else tuple(name.strip() for name in text.split(","))
    for name in names:
        if name not in STRUCTURES:
            raise ValueError(
                "--sites: unknown structure %r (choose from %s or "
                "'all')" % (name, ", ".join(STRUCTURES)))
    return experiment.structure_sweep_cells(names, strikes=strikes)


def _parse_shard(text):
    """``--shard I/N`` to an (index, total) pair."""
    index, slash, total = text.partition("/")
    if not slash:
        raise ValueError("--shard expects INDEX/TOTAL (e.g. 0/4), "
                         "got %r" % text)
    try:
        return int(index), int(total)
    except ValueError:
        raise ValueError("--shard expects integers INDEX/TOTAL, got %r"
                         % text)


def _sampling_plan_from_args(args):
    """The ``--adaptive*`` flags as a SamplingPlan (None when absent)."""
    if args.adaptive is None:
        return None
    from ..campaign import SamplingPlan
    return SamplingPlan.wilson(args.adaptive,
                               metric=args.adaptive_metric,
                               min_replicates=args.adaptive_min,
                               max_replicates=args.adaptive_max)


def _campaign_spec_from_args(args):
    from ..campaign import CampaignSpec
    from ..core.faults import get_kind_mix
    overrides = _parse_overrides(args.override or [])
    sites = _parse_sites(args.sites, args.strikes) if args.sites else {}
    if args.spec:
        spec = CampaignSpec.from_json_file(args.spec)
        if sites:
            if spec.fault_sites:
                raise ValueError(
                    "--sites conflicts with the fault_sites axis "
                    "already defined by --spec %s" % args.spec)
            from dataclasses import replace
            spec = replace(spec, fault_sites=sites)
        if overrides:
            # --override ADDS grid cells to a spec file's axis; a name
            # collision is ambiguous (replace or keep?) so it's refused.
            duplicated = sorted(set(spec.machine_overrides)
                                & set(overrides))
            if duplicated:
                raise ValueError(
                    "--override name(s) %s already defined by --spec %s"
                    % (", ".join(duplicated), args.spec))
            merged = dict(spec.machine_overrides)
            merged.update(overrides)
            from dataclasses import replace
            spec = replace(spec, machine_overrides=merged)
    else:
        mixes = {name: get_kind_mix(name)
                 for name in args.mixes.split(",")}
        if args.rates is None:
            # Site strikes replace the rate injector; an absent --rates
            # must not make a --sites spec self-contradict.
            rates = (0.0,) if sites else tuple(
                float(rate) for rate in _DEFAULT_RATES.split(","))
        else:
            rates = tuple(float(rate) for rate in args.rates.split(","))
        spec = CampaignSpec(
            name=args.name,
            workloads=tuple(args.workloads.split(",")),
            models=tuple(args.models.split(",")),
            rates_per_million=rates,
            mixes=mixes,
            machine_overrides=overrides,
            fault_sites=sites,
            replicates=args.replicates,
            instructions=args.instructions,
            warmup=args.warmup,
            base_seed=args.seed)
    # orchestrate has no --shard flag: the driver shards by itself.
    if getattr(args, "shard", ""):
        index, total = _parse_shard(args.shard)
        spec = spec.shard(index, total)
    return spec


def _render_campaign_output(cells, structures=None, adaptive=None,
                            as_json=False, header_lines=()):
    """The shared output tail of ``campaign`` and ``orchestrate``:
    one JSON payload ({cells[, structures][, adaptive]}, or the plain
    cells array when neither extra block applies — byte-compatible
    with pre-adaptive output) or the summary/table sequence."""
    from ..campaign import cells_to_json
    if as_json:
        if structures is not None or adaptive is not None:
            import json as _json
            payload = {"cells": [cell.as_dict() for cell in cells]}
            if structures is not None:
                payload["structures"] = [row.as_dict()
                                         for row in structures]
            if adaptive is not None:
                payload["adaptive"] = adaptive.as_dict()
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(cells_to_json(cells))
        return
    for line in header_lines:
        print(line)
    print()
    print(format_campaign_table(cells))
    if structures is not None:
        print()
        print("Per-structure fault sensitivity (struck trials)")
        print(format_structure_table(structures))
    if adaptive is not None:
        print()
        print(format_adaptive_summary(adaptive))


def _cmd_campaign_compact(store):
    kept, dropped = store.compact()
    print("compacted %s: kept %d record%s, dropped %d stale/torn "
          "entr%s" % (store.path, kept, "" if kept == 1 else "s",
                      dropped, "y" if dropped == 1 else "ies"))


def _cmd_campaign(args):
    from ..campaign import (TRIAL_FINISHED, CampaignSession,
                            ExecutionOptions, open_store)
    from ..errors import ConfigError
    store_path = args.store or args.out
    if args.resume and not store_path:
        raise SystemExit("repro-ft campaign: --resume requires --store")
    try:
        store = open_store(store_path)
    except ValueError as exc:
        raise SystemExit("repro-ft campaign: %s" % exc)
    if args.compact:
        if store is None:
            raise SystemExit("repro-ft campaign: --compact requires "
                             "--store")
        _cmd_campaign_compact(store)
        return
    try:
        spec = _campaign_spec_from_args(args)
        options = ExecutionOptions(
            workers=args.workers,
            sampling=_sampling_plan_from_args(args),
            checkpointing=args.checkpointing
            or args.checkpoint_interval is not None,
            checkpoint_interval=args.checkpoint_interval,
            persistent_workers=args.persistent_workers)
        session = CampaignSession(spec, options=options, store=store)
    except (ConfigError, ValueError, TypeError, OSError) as exc:
        raise SystemExit("repro-ft campaign: %s" % exc)
    except KeyError as exc:
        # get_profile/get_model raise KeyError with a quoted message.
        raise SystemExit("repro-ft campaign: %s" % exc.args[0])
    if not args.quiet:
        # Progress goes to stderr so `--json > out.json` (and any
        # other stdout consumer) stays parseable mid-run.
        @session.subscribe
        def progress(event):
            if event.kind == TRIAL_FINISHED:
                print("  [%d/%d] %s %s"
                      % (event.done, event.total, event.record["key"],
                         event.record["outcome"]), file=sys.stderr)
    heartbeat = None
    if args.heartbeat:
        # A supervising driver (the orchestrator's cli mode, or any
        # external watchdog) monitors this file for liveness.
        from ..resilience.heartbeat import Heartbeat
        heartbeat = Heartbeat(args.heartbeat,
                              interval=args.heartbeat_interval)
        session.subscribe(
            lambda event: heartbeat.beat(progress=event.done))
        heartbeat.beat(progress=0, force=True)
    start = time.monotonic()
    try:
        result = session.resume() if args.resume else session.run()
    except ConfigError as exc:
        raise SystemExit("repro-ft campaign: %s" % exc)
    if heartbeat is not None:
        heartbeat.beat(progress=len(result.records), force=True)
    elapsed = time.monotonic() - start
    cells = session.aggregate()
    with_sites = bool(getattr(session.spec, "fault_sites", None))
    header = [format_campaign_summary(result, elapsed=elapsed)]
    if store is not None:
        header.append("store: %s (%d records)"
                      % (store.path, len(result.records)))
    _render_campaign_output(
        cells,
        structures=session.aggregate_structures() if with_sites
        else None,
        adaptive=result.adaptive, as_json=args.json,
        header_lines=header)


def _cmd_orchestrate(args):
    from ..campaign import (TRIAL_FINISHED, CampaignOrchestrator,
                            ExecutionOptions, aggregate,
                            aggregate_structures)
    from ..campaign.orchestrator import (SHARD_FINISHED,
                                         SHARD_RESTARTED,
                                         SHARD_STARTED)
    from ..errors import ConfigError, OrchestratorError
    try:
        spec = _campaign_spec_from_args(args)
        options = ExecutionOptions(
            workers=args.workers,
            sampling=_sampling_plan_from_args(args),
            checkpointing=args.checkpointing
            or args.checkpoint_interval is not None,
            checkpoint_interval=args.checkpoint_interval,
            persistent_workers=args.persistent_workers)
        orchestrator = CampaignOrchestrator(
            spec, shards=args.shards, store_dir=args.store_dir,
            options=options, mode=args.mode,
            poll_interval=args.poll_interval,
            max_restarts=args.max_restarts,
            min_uptime=args.min_uptime,
            heartbeat_lease=args.heartbeat_lease,
            heartbeat_interval=args.heartbeat_interval)
    except (ConfigError, ValueError, TypeError, OSError) as exc:
        raise SystemExit("repro-ft orchestrate: %s" % exc)
    except KeyError as exc:
        raise SystemExit("repro-ft orchestrate: %s" % exc.args[0])
    if not args.quiet:
        @orchestrator.subscribe
        def progress(event):
            if event.kind == TRIAL_FINISHED:
                print("  [%d/%d] %s %s (shard %d)"
                      % (event.done, event.total, event.record["key"],
                         event.record["outcome"], event.shard),
                      file=sys.stderr)
            elif event.kind == SHARD_STARTED:
                print("shard %d/%d started" % (event.shard,
                                               args.shards),
                      file=sys.stderr)
            elif event.kind == SHARD_RESTARTED:
                print("shard %d restarted from its store"
                      % event.shard, file=sys.stderr)
            elif event.kind == SHARD_FINISHED:
                print("shard %d finished" % event.shard,
                      file=sys.stderr)
    start = time.monotonic()
    try:
        result = orchestrator.run()
    except (ConfigError, OrchestratorError, OSError) as exc:
        # OSError: unwritable --store-dir and friends deserve the
        # same one-line exit as every other operator mistake.
        raise SystemExit("repro-ft orchestrate: %s" % exc)
    elapsed = time.monotonic() - start
    cells = aggregate(result.records)
    with_sites = bool(getattr(spec, "fault_sites", None))
    _render_campaign_output(
        cells,
        structures=aggregate_structures(result.records) if with_sites
        else None,
        adaptive=result.adaptive, as_json=args.json,
        header_lines=[
            format_campaign_summary(result),
            format_orchestrate_summary(orchestrator,
                                       elapsed=elapsed)])


def _cmd_faults(args):
    from ..core.faults import KIND_MIX_PRESETS
    from ..faults import (POLICY_REGISTRY, STRUCTURES,
                          STRUCTURE_DESCRIPTIONS, STRUCTURE_WIDTHS)
    # --list is the only action (and the default): an inventory of the
    # addressable fault model, replacing grepping KIND_MIX_PRESETS.
    policies = {
        name: (cls.__doc__ or "").strip().splitlines()[0]
        for name, cls in POLICY_REGISTRY.items()}
    print(format_faults_listing(STRUCTURES, STRUCTURE_WIDTHS,
                                STRUCTURE_DESCRIPTIONS,
                                KIND_MIX_PRESETS, policies))


def _diff_config_from_args(args):
    from ..perf import DiffConfig
    return DiffConfig(alpha=args.alpha, min_effect=args.min_effect)


def _cmd_bench_diff(args):
    """``bench --diff A B``: compare two history entries; exit 1 when
    a gate metric (throughput, or the speedup ratio cross-host) is
    statistically DEGRADED."""
    import json as _json

    from ..perf import (BenchHistory, diff_refs, format_diff_report)
    history = BenchHistory.load(args.out)
    diff = diff_refs(history, args.diff[0], args.diff[1],
                     _diff_config_from_args(args))
    if args.json:
        print(_json.dumps(diff.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_diff_report(diff))
    return 0 if diff.ok else 1


def _cmd_bench_check(args):
    """``bench --check``: the CI gate — latest entry vs its best
    comparable baseline; exit 1 on a significant regression."""
    import json as _json

    from ..perf import (BenchHistory, check_history,
                        format_diff_report)
    history = BenchHistory.load(args.out)
    diff = check_history(history, _diff_config_from_args(args))
    if diff is None:
        message = ("bench check: %d entr%s in %s — nothing to "
                   "regress against, pass"
                   % (len(history),
                      "y" if len(history) == 1 else "ies", args.out))
        if args.json:
            print(_json.dumps({"check": None, "ok": True,
                               "note": message}, indent=2,
                              sort_keys=True))
        else:
            print(message)
        return 0
    if args.json:
        print(_json.dumps(diff.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_diff_report(diff))
        print()
        print("bench check: %s" % ("OK" if diff.ok
                                   else "FAILED — significant "
                                        "performance regression"))
    return 0 if diff.ok else 1


def _cmd_bench_history(args):
    """``bench --history``: the whole-history degradation report."""
    import json as _json

    from ..perf import (BenchHistory, format_history_report,
                        history_report)
    history = BenchHistory.load(args.out)
    config = _diff_config_from_args(args)
    if args.json:
        print(_json.dumps(history_report(history, config), indent=2,
                          sort_keys=True))
    else:
        print(format_history_report(history, config))
    return 0


def _cmd_bench(args):
    from ..errors import HistoryError
    from .bench import BenchDivergence, format_bench_summary, run_bench
    modes = [name for name, active in
             (("--diff", args.diff is not None),
              ("--check", args.check),
              ("--history", args.history)) if active]
    if len(modes) > 1:
        raise SystemExit("repro-ft bench: %s are mutually exclusive"
                         % " and ".join(modes))
    try:
        if args.diff is not None:
            return _cmd_bench_diff(args)
        if args.check:
            return _cmd_bench_check(args)
        if args.history:
            return _cmd_bench_history(args)
    except HistoryError as exc:
        raise SystemExit("repro-ft bench: %s" % exc)
    try:
        payload = run_bench(quick=args.quick, out=args.out,
                            workers=args.workers, note=args.note,
                            checkpointing=args.checkpointing,
                            repeats=args.repeats)
    except BenchDivergence as exc:
        raise SystemExit("repro-ft bench: DIVERGENCE: %s" % exc)
    except HistoryError as exc:
        raise SystemExit("repro-ft bench: %s" % exc)
    if args.json:
        import json as _json
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_bench_summary(payload))
        if args.out:
            print("\nwritten: %s" % args.out)


def _cmd_serve(args):
    from ..service.server import run_serve
    return run_serve(args)


def _cmd_chaos(args):
    from ..resilience.chaos import run_chaos
    return run_chaos(args)


def _cmd_load(args):
    from ..service.loadgen import run_load
    return run_load(args)


def _cmd_lint(args):
    from ..lint.cli import run_lint_cli
    return run_lint_cli(args)


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "figure5": _cmd_figure5,
    "figure6": _cmd_figure6,
    "sensitivity": _cmd_sensitivity,
    "coverage": _cmd_coverage,
    "demo": _cmd_demo,
    "campaign": _cmd_campaign,
    "orchestrate": _cmd_orchestrate,
    "faults": _cmd_faults,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "load": _cmd_load,
    "chaos": _cmd_chaos,
    "lint": _cmd_lint,
}


def _add_serve_args(sub):
    sub.add_argument("--data-dir", required=True,
                     help="service state directory (jobs, stores, "
                          "event logs, service.json)")
    sub.add_argument("--host", default="127.0.0.1",
                     help="bind address")
    sub.add_argument("--port", type=int, default=0,
                     help="bind port (0 = ephemeral; the binding is "
                          "written to DATA_DIR/service.json)")
    sub.add_argument("--slots", type=int, default=2,
                     help="worker slots shared by all tenants")
    sub.add_argument("--tenant", action="append", default=[],
                     metavar="NAME[:WEIGHT[:MAX_RUNNING[:MAX_QUEUED]]]",
                     help="pre-register a tenant with a fair-share "
                          "weight and job quotas (repeatable; unknown "
                          "tenants auto-register with weight 1)")
    sub.add_argument("--replicate-budget", type=int, default=None,
                     metavar="N",
                     help="pace adaptive jobs to N extra replicates "
                          "per second, split by tenant weight "
                          "(default: unpaced)")
    sub.add_argument("--poll-interval", type=float, default=None,
                     help="store/SSE poll interval in seconds "
                          "(default 0.05)")
    sub.add_argument("--drain-timeout", type=float, default=60.0,
                     help="seconds to wait for in-flight trials on "
                          "SIGTERM before exiting anyway")
    sub.add_argument("--trial-timeout", type=float, default=None,
                     help="per-trial wall-clock deadline for pooled "
                          "jobs; expired trials SIGKILL their worker "
                          "and re-run (default: no deadline)")
    sub.add_argument("--runner-lease", type=float, default=None,
                     help="SIGKILL shared-pool workers when a job with "
                          "in-flight trials makes no progress for this "
                          "long (default: no liveness thread)")
    sub.add_argument("--heartbeat-lease", type=float, default=None,
                     help="shard heartbeat lease for orchestrated "
                          "(shards >= 1) jobs (default: no liveness)")


def _add_load_args(sub):
    sub.add_argument("--url", default="",
                     help="service base URL (e.g. "
                          "http://127.0.0.1:8123)")
    sub.add_argument("--data-dir", default="",
                     help="discover the service from "
                          "DATA_DIR/service.json instead of --url")
    sub.add_argument("--workload", action="append", default=[],
                     required=True,
                     metavar="TENANT:KIND:...",
                     help="one tenant's arrival schedule: "
                          "tenant:static:<jobs>, "
                          "tenant:dynamic:<jobs>:<rate-per-s> or "
                          "tenant:trace:<path>[:<time-scale>] "
                          "(repeatable)")
    sub.add_argument("--spec-file", default="",
                     help="JSON CampaignSpec every generated job "
                          "submits (default: a tiny built-in spec)")
    sub.add_argument("--tolerance", type=float, default=0.35,
                     help="allowed shortfall from the weighted "
                          "max-min slot share before the fairness "
                          "check fails")
    sub.add_argument("--verify", action="store_true",
                     help="re-run every spec in-process and require "
                          "byte-identical records from the service")
    sub.add_argument("--no-sse", action="store_true",
                     help="skip sampling each tenant's SSE stream")
    sub.add_argument("--timeout", type=float, default=60.0,
                     help="per-request HTTP timeout in seconds")
    sub.add_argument("--json", action="store_true",
                     help="print the full report as JSON")


def _add_bench_args(sub):
    sub.add_argument("--quick", action="store_true",
                     help="small grids for CI smoke runs")
    sub.add_argument("--out", default="BENCH_simulator.json",
                     help="bench history JSON path ('' disables the "
                          "file); --diff/--check/--history read it")
    sub.add_argument("--workers", type=int, default=1,
                     help="campaign process-pool width for both paths")
    sub.add_argument("--repeats", type=int, default=None, metavar="N",
                     help="campaign-path timing repeats per side; "
                          "every repeat's wall time is recorded as a "
                          "sample for --diff (default: 3, or 1 with "
                          "--quick)")
    sub.add_argument("--checkpointing", action="store_true",
                     help="run the fast side with checkpointed "
                          "fast-forward (the A/B still fails on any "
                          "record divergence)")
    sub.add_argument("--note", default="",
                     help="free-form label recorded with the entry")
    # Performance-version-system modes (repro.perf): read the history
    # at --out instead of running the bench.
    sub.add_argument("--diff", nargs=2, default=None,
                     metavar=("A", "B"),
                     help="compare two history entries (indices, "
                          "'latest'/'HEAD' or 'HEAD~N') with a seeded "
                          "permutation test; exit 1 when a gate "
                          "metric is DEGRADED")
    sub.add_argument("--check", action="store_true",
                     help="gate on the latest entry vs its best "
                          "comparable baseline: exit 1 on a "
                          "statistically significant regression")
    sub.add_argument("--history", action="store_true",
                     help="render the degradation report over the "
                          "whole bench history")
    sub.add_argument("--alpha", type=float, default=0.05,
                     help="two-sided significance level for "
                          "--diff/--check/--history (default 0.05)")
    sub.add_argument("--min-effect", type=float, default=0.05,
                     help="minimum |relative change| before a "
                          "significant difference counts (default "
                          "0.05 = 5%%)")
    sub.add_argument("--json", action="store_true",
                     help="print the full payload as JSON")


def _add_grid_args(sub):
    """The campaign-grid flags shared by ``campaign`` and
    ``orchestrate`` (both feed :func:`_campaign_spec_from_args`)."""
    sub.set_defaults(instructions=2_000)   # campaigns trade depth for n
    sub.add_argument("--name", default="campaign",
                     help="campaign name (part of every trial key)")
    sub.add_argument("--spec", default="",
                     help="JSON file with a CampaignSpec (overrides the "
                          "grid flags)")
    sub.add_argument("--workloads", default="gcc",
                     help="comma-separated benchmark names")
    sub.add_argument("--models", default="SS-2",
                     help="comma-separated machine models")
    # default=None distinguishes "not given" (swapped for 0 by --sites)
    # from an explicitly typed default (refused with --sites like any
    # other nonzero rate).
    sub.add_argument("--rates", default=None,
                     help="comma-separated fault rates (faults/M "
                          "instr); default %s" % _DEFAULT_RATES)
    sub.add_argument("--mixes", default="default",
                     help="comma-separated kind-mix preset names")
    sub.add_argument("--replicates", type=int, default=8,
                     help="seed replicates per grid cell")
    sub.add_argument("--warmup", type=int, default=0,
                     help="warmup instructions before the window")
    sub.add_argument("--seed", type=int, default=2001,
                     help="campaign base seed (folded into trial keys)")
    sub.add_argument("--override", action="append", default=[],
                     metavar="[NAME:]KEY=VALUE[,KEY=VALUE...]",
                     help="add a machine_overrides grid cell deriving "
                          "every model's MachineConfig (repeatable)")
    sub.add_argument("--sites", default="",
                     metavar="STRUCT[,STRUCT...]|all",
                     help="per-structure sensitivity sweep: one "
                          "fault_sites grid cell per named structure "
                          "(see 'repro-ft faults --list'); forces "
                          "rate 0 unless --rates is set explicitly")
    sub.add_argument("--strikes", type=int, default=1,
                     help="uniform strikes per trial for --sites cells")
    sub.add_argument("--workers", type=int, default=1,
                     help="process-pool width per session "
                          "(1 = in-process serial)")
    sub.add_argument("--checkpointing", action="store_true",
                     help="fast-forward each fault trial from the "
                          "cell's fault-free checkpoints (records are "
                          "byte-identical either way)")
    sub.add_argument("--checkpoint-interval", type=int, default=None,
                     metavar="N",
                     help="committed instructions between checkpoints "
                          "(default: budget/8; implies "
                          "--checkpointing)")
    sub.add_argument("--persistent-workers", action="store_true",
                     help="pre-warm each pool worker's per-process "
                          "caches with the campaign's fault-free "
                          "baselines (needs --workers > 1 to matter)")
    sub.add_argument("--json", action="store_true",
                     help="print the aggregate as JSON instead of a "
                          "table")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress per-trial progress lines")


def _add_adaptive_args(sub):
    """The adaptive-sampling flags (campaign and orchestrate)."""
    sub.add_argument("--adaptive", type=float, default=None,
                     metavar="HALFWIDTH",
                     help="adaptive sampling: stop each grid cell once "
                          "its Wilson 95%% interval half-width reaches "
                          "this target, spending the freed replicates "
                          "on the widest open cells")
    sub.add_argument("--adaptive-metric", default="coverage",
                     choices=("coverage", "sdc_rate"),
                     help="the proportion the half-width target "
                          "applies to (default: coverage)")
    sub.add_argument("--adaptive-min", type=int, default=4,
                     metavar="N",
                     help="observations before a cell may converge")
    sub.add_argument("--adaptive-max", type=int, default=None,
                     metavar="N",
                     help="hard per-cell budget below the spec's "
                          "replicate count (records then diverge from "
                          "the fixed plan)")


def _add_campaign_args(sub):
    _add_grid_args(sub)
    _add_adaptive_args(sub)
    sub.add_argument("--store", default="",
                     help="result store URL: PATH.jsonl, sqlite:FILE "
                          "or shard:[N:]DIR (enables --resume)")
    sub.add_argument("--out", default="",
                     help="legacy alias for --store")
    sub.add_argument("--shard", default="",
                     help="run only partition I/N of the trial "
                          "keyspace (e.g. --shard 0/4)")
    sub.add_argument("--compact", action="store_true",
                     help="compact --store (drop torn tails and stale "
                          "duplicate keys) and exit")
    sub.add_argument("--resume", action="store_true",
                     help="skip trials already completed in --store")
    sub.add_argument("--heartbeat", default="", metavar="PATH",
                     help="stamp a progress-coupled heartbeat file a "
                          "supervising driver can watch for liveness")
    sub.add_argument("--heartbeat-interval", type=float, default=1.0,
                     help="minimum seconds between heartbeat stamps")


def _add_orchestrate_args(sub):
    _add_grid_args(sub)
    _add_adaptive_args(sub)
    sub.add_argument("--shards", type=int, required=True,
                     help="number of shard workers to launch")
    sub.add_argument("--store-dir", required=True,
                     help="directory for the per-shard stores and the "
                          "merged result (the durable campaign state)")
    sub.add_argument("--mode", default="process",
                     choices=("process", "cli"),
                     help="worker launch mode: forked in-process "
                          "sessions or repro-ft subprocesses")
    sub.add_argument("--poll-interval", type=float, default=0.2,
                     help="seconds between shard-store polls")
    sub.add_argument("--max-restarts", type=int, default=2,
                     help="restarts allowed per shard before the "
                          "campaign fails")
    sub.add_argument("--heartbeat-lease", type=float, default=None,
                     help="kill and restart a shard whose heartbeat "
                          "and store both stall this long (default: "
                          "exit detection only)")
    sub.add_argument("--heartbeat-interval", type=float, default=1.0,
                     help="minimum seconds between worker heartbeats")
    sub.add_argument("--min-uptime", type=float, default=5.0,
                     help="a shard alive this long earns its restart "
                          "budget back (crash-loop forgiveness; 0 "
                          "disables)")


def _add_chaos_args(sub):
    sub.add_argument("--target", default="orchestrate",
                     choices=("orchestrate", "service", "both"),
                     help="which stack to disturb")
    sub.add_argument("--dir", required=True,
                     help="scratch directory for the chaos run's "
                          "stores/state")
    sub.add_argument("--seed", type=int, default=0,
                     help="fault-schedule seed (op kinds and times "
                          "are deterministic per seed)")
    sub.add_argument("--shards", type=int, default=2,
                     help="orchestrate target: shard workers")
    sub.add_argument("--kills", type=int, default=1,
                     help="scheduled worker SIGKILLs")
    sub.add_argument("--stalls", type=int, default=1,
                     help="scheduled worker SIGSTOPs (hangs the "
                          "liveness layer must detect)")
    sub.add_argument("--torn", type=int, default=1,
                     help="scheduled torn store appends "
                          "(orchestrate target only)")
    sub.add_argument("--heartbeat-lease", type=float, default=1.5,
                     help="orchestrate target: shard heartbeat lease")
    sub.add_argument("--jobs", type=int, default=2,
                     help="service target: jobs to submit")
    sub.add_argument("--slots", type=int, default=2,
                     help="service target: shared pool slots")
    sub.add_argument("--trial-timeout", type=float, default=3.0,
                     help="service target: per-trial deadline")
    sub.add_argument("--runner-lease", type=float, default=3.0,
                     help="service target: hung-runner lease")
    sub.add_argument("--spec", default="",
                     help="JSON CampaignSpec to run under chaos "
                          "(default: a small built-in grid)")
    sub.add_argument("--json", action="store_true",
                     help="print the full report(s) as JSON")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-ft",
        description="Regenerate tables and figures from 'Dual Use of "
                    "Superscalar Datapath for Transient-Fault Detection "
                    "and Recovery' (MICRO 2001).")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        sub = subparsers.add_parser(name)
        _add_common(sub)
        if name in ("figure5", "sensitivity"):
            sub.add_argument("--benchmarks", default="",
                             help="comma-separated benchmark names")
        if name == "figure6":
            sub.add_argument("--benchmark", default="fpppp")
        if name == "campaign":
            _add_campaign_args(sub)
        if name == "orchestrate":
            _add_orchestrate_args(sub)
        if name == "faults":
            sub.add_argument("--list", action="store_true",
                             help="list structures, kind-mix presets "
                                  "and registered policies (default)")
        if name == "bench":
            _add_bench_args(sub)
        if name == "serve":
            _add_serve_args(sub)
        if name == "load":
            _add_load_args(sub)
        if name == "chaos":
            _add_chaos_args(sub)
        if name == "lint":
            from ..lint.cli import add_lint_args
            add_lint_args(sub)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args) or 0


if __name__ == "__main__":
    sys.exit(main())
