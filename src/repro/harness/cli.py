"""Command-line interface: regenerate any table or figure of the paper,
or run Monte Carlo fault-injection campaigns.

Examples::

    repro-ft table1
    repro-ft table2 --instructions 30000
    repro-ft figure3
    repro-ft figure5 --instructions 20000
    repro-ft figure6 --benchmark fpppp
    repro-ft sensitivity --benchmarks go,vpr,ammp,gcc
    repro-ft coverage
    repro-ft demo
    repro-ft campaign --workloads gcc,go --models SS-1,SS-2 \\
        --rates 0,1000,10000 --replicates 8 --workers 4 \\
        --out results.jsonl
    repro-ft campaign --spec campaign.json --workers 4 \\
        --out results.jsonl --resume
    repro-ft bench --quick
    repro-ft bench --out BENCH_simulator.json
"""

from __future__ import annotations

import argparse
import sys
import time

from ..analytical.figures import (figure3_series, figure4_series,
                                  format_figure_table)
from ..core.sphere import FT_COVERAGE, coverage_table
from ..models.presets import baseline_config
from ..workloads.mix import format_mix_table
from ..workloads.profiles import BENCHMARK_ORDER
from . import experiment
from .report import (ascii_chart, format_campaign_summary,
                     format_campaign_table, format_figure5_table,
                     format_figure6_table, format_machine_table,
                     format_sensitivity_table)


def _add_common(parser):
    parser.add_argument("--instructions", type=int, default=20_000,
                        help="committed instructions per simulation")


def _cmd_table1(args):
    print("Table 1: baseline superscalar machine parameters\n")
    print(format_machine_table(baseline_config()))


def _cmd_table2(args):
    rows = experiment.table2_rows(instructions=args.instructions)
    print("Table 2: measured dynamic instruction mix "
          "(synthetic workloads)\n")
    print(format_mix_table(rows))


def _cmd_figure3(args):
    series = figure3_series()
    print(format_figure_table(series, "Figure 3: IPC vs fault frequency "
                                      "(Y = 20 cycles, IPC1 = B = 1)"))
    print()
    print(ascii_chart(
        [("R=2", "2", [(p.lam, p.ipc_r2) for p in series]),
         ("R=3 rewind", "3", [(p.lam, p.ipc_r3_rewind) for p in series]),
         ("R=3 majority", "m",
          [(p.lam, p.ipc_r3_majority) for p in series])],
        title="Figure 3 (Y=20)"))


def _cmd_figure4(args):
    series = figure4_series()
    print(format_figure_table(series, "Figure 4: IPC vs fault frequency "
                                      "(Y = 2000 cycles)"))
    print()
    print(ascii_chart(
        [("R=2", "2", [(p.lam, p.ipc_r2) for p in series]),
         ("R=3 rewind", "3", [(p.lam, p.ipc_r3_rewind) for p in series]),
         ("R=3 majority", "m",
          [(p.lam, p.ipc_r3_majority) for p in series])],
        title="Figure 4 (Y=2000)"))


def _cmd_figure5(args):
    benchmarks = args.benchmarks.split(",") if args.benchmarks \
        else BENCHMARK_ORDER
    rows = experiment.figure5_rows(benchmarks=benchmarks,
                                   instructions=args.instructions)
    print("Figure 5: steady-state IPC comparison\n")
    print(format_figure5_table(rows))


def _cmd_figure6(args):
    points = experiment.figure6_points(benchmark=args.benchmark,
                                       instructions=args.instructions)
    print("Figure 6: IPC vs fault frequency for %s\n" % args.benchmark)
    print(format_figure6_table(points))
    print()
    print(ascii_chart(
        [("R=2", "2", [(max(p.rate_per_million, 1.0),
                        p.results["R=2"].ipc) for p in points]),
         ("R=3 majority", "3", [(max(p.rate_per_million, 1.0),
                                 p.results["R=3"].ipc)
                                for p in points])],
        title="Figure 6 (%s)" % args.benchmark))


def _cmd_sensitivity(args):
    benchmarks = args.benchmarks.split(",") if args.benchmarks \
        else BENCHMARK_ORDER
    rows = experiment.sensitivity_rows(benchmarks=benchmarks,
                                       instructions=args.instructions)
    print("Section 5.2: FU / RUU sensitivity of the SS-1 baseline\n")
    print(format_sensitivity_table(rows))


def _cmd_coverage(args):
    print("Sphere-of-replication coverage audit (Section 3.4)\n")
    print(coverage_table(FT_COVERAGE))


def _cmd_demo(args):
    from ..core.faults import FaultConfig
    from ..models.presets import ss1, ss2
    from ..workloads.generator import build_workload
    program = build_workload("gcc")
    print("Demo: gcc-like workload, %d instructions\n"
          % args.instructions)
    for model in (ss1(), ss2()):
        result = experiment.run_on_model(
            program, model, max_instructions=args.instructions)
        print("%-9s IPC %.3f" % (model.name, result.ipc))
    faulty = experiment.run_on_model(
        program, ss2(), max_instructions=args.instructions,
        fault_config=FaultConfig(rate_per_million=500.0))
    print("%-9s IPC %.3f with faults: %d injected, %d detected, "
          "%d rewinds" % ("SS-2+f", faulty.ipc, faulty.faults_injected,
                          faulty.faults_detected, faulty.rewinds))


def _campaign_spec_from_args(args):
    from ..campaign import CampaignSpec
    from ..core.faults import get_kind_mix
    if args.spec:
        return CampaignSpec.from_json_file(args.spec)
    mixes = {name: get_kind_mix(name)
             for name in args.mixes.split(",")}
    return CampaignSpec(
        name=args.name,
        workloads=tuple(args.workloads.split(",")),
        models=tuple(args.models.split(",")),
        rates_per_million=tuple(float(rate)
                                for rate in args.rates.split(",")),
        mixes=mixes,
        replicates=args.replicates,
        instructions=args.instructions,
        warmup=args.warmup,
        base_seed=args.seed)


def _cmd_campaign(args):
    from ..campaign import (ResultStore, aggregate, cells_to_json,
                            run_campaign)
    from ..errors import ConfigError
    if args.resume and not args.out:
        raise SystemExit("repro-ft campaign: --resume requires --out")
    try:
        spec = _campaign_spec_from_args(args)
    except (ConfigError, ValueError, TypeError, OSError) as exc:
        raise SystemExit("repro-ft campaign: %s" % exc)
    except KeyError as exc:
        # get_profile/get_model raise KeyError with a quoted message.
        raise SystemExit("repro-ft campaign: %s" % exc.args[0])
    store = ResultStore(args.out) if args.out else None
    progress = None
    if not args.quiet:
        # Progress goes to stderr so `--json > out.json` (and any
        # other stdout consumer) stays parseable mid-run.
        def progress(done, total, record):
            print("  [%d/%d] %s %s" % (done, total, record["key"],
                                       record["outcome"]),
                  file=sys.stderr)
    start = time.monotonic()
    try:
        result = run_campaign(spec, workers=args.workers, store=store,
                              resume=args.resume, progress=progress)
    except ConfigError as exc:
        raise SystemExit("repro-ft campaign: %s" % exc)
    elapsed = time.monotonic() - start
    cells = aggregate(result.records)
    if args.json:
        print(cells_to_json(cells))
        return
    print(format_campaign_summary(result, elapsed=elapsed))
    if store is not None:
        print("store: %s (%d records)" % (store.path,
                                          len(result.records)))
    print()
    print(format_campaign_table(cells))


def _cmd_bench(args):
    from .bench import BenchDivergence, format_bench_summary, run_bench
    try:
        payload = run_bench(quick=args.quick, out=args.out,
                            workers=args.workers)
    except BenchDivergence as exc:
        raise SystemExit("repro-ft bench: DIVERGENCE: %s" % exc)
    if args.json:
        import json as _json
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_bench_summary(payload))
        if args.out:
            print("\nwritten: %s" % args.out)


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "figure5": _cmd_figure5,
    "figure6": _cmd_figure6,
    "sensitivity": _cmd_sensitivity,
    "coverage": _cmd_coverage,
    "demo": _cmd_demo,
    "campaign": _cmd_campaign,
    "bench": _cmd_bench,
}


def _add_bench_args(sub):
    sub.add_argument("--quick", action="store_true",
                     help="small grids for CI smoke runs")
    sub.add_argument("--out", default="BENCH_simulator.json",
                     help="result JSON path ('' disables the file)")
    sub.add_argument("--workers", type=int, default=1,
                     help="campaign process-pool width for both paths")
    sub.add_argument("--json", action="store_true",
                     help="print the full payload as JSON")


def _add_campaign_args(sub):
    sub.set_defaults(instructions=2_000)   # campaigns trade depth for n
    sub.add_argument("--name", default="campaign",
                     help="campaign name (part of every trial key)")
    sub.add_argument("--spec", default="",
                     help="JSON file with a CampaignSpec (overrides the "
                          "grid flags)")
    sub.add_argument("--workloads", default="gcc",
                     help="comma-separated benchmark names")
    sub.add_argument("--models", default="SS-2",
                     help="comma-separated machine models")
    sub.add_argument("--rates", default="0,1000,10000",
                     help="comma-separated fault rates (faults/M instr)")
    sub.add_argument("--mixes", default="default",
                     help="comma-separated kind-mix preset names")
    sub.add_argument("--replicates", type=int, default=8,
                     help="seed replicates per grid cell")
    sub.add_argument("--warmup", type=int, default=0,
                     help="warmup instructions before the window")
    sub.add_argument("--seed", type=int, default=2001,
                     help="campaign base seed (folded into trial keys)")
    sub.add_argument("--workers", type=int, default=1,
                     help="process-pool width (1 = in-process serial)")
    sub.add_argument("--out", default="",
                     help="JSONL result store (enables --resume)")
    sub.add_argument("--resume", action="store_true",
                     help="skip trials already completed in --out")
    sub.add_argument("--json", action="store_true",
                     help="print the aggregate as JSON instead of a "
                          "table")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress per-trial progress lines")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-ft",
        description="Regenerate tables and figures from 'Dual Use of "
                    "Superscalar Datapath for Transient-Fault Detection "
                    "and Recovery' (MICRO 2001).")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        sub = subparsers.add_parser(name)
        _add_common(sub)
        if name in ("figure5", "sensitivity"):
            sub.add_argument("--benchmarks", default="",
                             help="comma-separated benchmark names")
        if name == "figure6":
            sub.add_argument("--benchmark", default="fpppp")
        if name == "campaign":
            _add_campaign_args(sub)
        if name == "bench":
            _add_bench_args(sub)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
