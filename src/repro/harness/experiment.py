"""Experiment runners for every table and figure in the paper.

Each function returns plain result objects that the report module can
format and the benchmark suite can assert on.  Instruction budgets are
parameters: the paper simulated 10^9 instructions per run; steady-state
IPC of the loop-structured synthetic workloads converges within a few
tens of thousands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.config import FTConfig
from ..core.faults import FaultConfig
from ..models.presets import MachineModel, get_model, ss2, ss3
from ..models.scaling import (factor_for_label, scale_functional_units,
                              scale_window)
from ..uarch.processor import Processor
from ..workloads.generator import build_workload
from ..workloads.mix import measure_mix
from ..workloads.profiles import BENCHMARK_ORDER

DEFAULT_INSTRUCTIONS = 20_000
#: Figure-6 x-axis: fault frequencies in faults per million instructions.
FIGURE6_RATES = (0.0, 10.0, 100.0, 300.0, 1000.0, 3000.0, 10_000.0,
                 30_000.0, 100_000.0)


@dataclass
class RunResult:
    """One (benchmark, machine model) simulation."""

    benchmark: str
    model: str
    ipc: float
    cycles: int
    instructions: int
    branch_accuracy: float
    rewinds: int = 0
    faults_injected: int = 0
    faults_detected: int = 0
    majority_commits: int = 0
    avg_recovery_penalty: float = 0.0

    @classmethod
    def from_stats(cls, benchmark, model, stats):
        return cls(benchmark=benchmark, model=model, ipc=stats.ipc,
                   cycles=stats.cycles, instructions=stats.instructions,
                   branch_accuracy=stats.branch_accuracy,
                   rewinds=stats.rewinds,
                   faults_injected=stats.faults_injected,
                   faults_detected=stats.faults_detected,
                   majority_commits=stats.majority_commits,
                   avg_recovery_penalty=stats.avg_recovery_penalty)


def cycle_budget(instructions, warmup=0):
    """Default cycle allowance for a windowed run of that many commits."""
    return max(200_000, (instructions + warmup) * 60)


def run_windowed(processor, max_instructions, warmup_instructions=0,
                 max_cycles=None):
    """The warmup-then-measure protocol on an existing processor.

    ``warmup_instructions`` commits that many instructions before the
    measurement window, so caches and predictors reach steady state —
    the small-budget stand-in for the paper's "skip the first billion
    instructions" methodology.  Returns ``(stats, warm_cycles,
    warm_instructions)``; stats counters are run totals, the warm
    figures let callers compute window-relative metrics.
    """
    if max_cycles is None:
        max_cycles = cycle_budget(max_instructions, warmup_instructions)
    warm_cycles = warm_instructions = 0
    if warmup_instructions:
        processor.run(max_instructions=warmup_instructions,
                      max_cycles=max_cycles)
        warm_cycles = processor.cycle
        warm_instructions = processor.stats.instructions
        # Also stamped on the stats so callers that lose the return
        # value (a SimulationError mid-window) can still separate the
        # warmup phase from the measurement window.
        processor.stats.extras["warmup_cycles"] = warm_cycles
        processor.stats.extras["warmup_instructions"] = warm_instructions
    stats = processor.run(max_instructions=max_instructions,
                          max_cycles=max_cycles)
    return stats, warm_cycles, warm_instructions


def run_on_model(program, model, max_instructions=DEFAULT_INSTRUCTIONS,
                 fault_config=None, lockstep=False, max_cycles=None,
                 warmup_instructions=0):
    """Simulate ``program`` on one machine model.

    IPC/cycles/instructions refer to the post-warmup window only (see
    :func:`run_windowed`).
    """
    processor = Processor(program, config=model.config, ft=model.ft,
                          fault_config=fault_config)
    if lockstep:
        processor.enable_lockstep_check()
    stats, warm_cycles, warm_instructions = run_windowed(
        processor, max_instructions, warmup_instructions, max_cycles)
    result = RunResult.from_stats(program.name, model.name, stats)
    if warmup_instructions:
        cycles = stats.cycles - warm_cycles
        instructions = stats.instructions - warm_instructions
        result.cycles = cycles
        result.instructions = instructions
        result.ipc = instructions / cycles if cycles else 0.0
    return result


# -- Table 2 ---------------------------------------------------------------

def table2_rows(benchmarks=BENCHMARK_ORDER,
                instructions=DEFAULT_INSTRUCTIONS):
    """Measured dynamic instruction mixes for the benchmark suite."""
    return [measure_mix(build_workload(name), instructions=instructions)
            for name in benchmarks]


# -- Figure 5 --------------------------------------------------------------

@dataclass
class Figure5Row:
    """Per-benchmark steady-state IPC of SS-1 / Static-2 / SS-2."""

    benchmark: str
    results: dict = field(default_factory=dict)  # model name -> RunResult

    def ipc(self, model):
        return self.results[model].ipc

    @property
    def ss2_penalty(self):
        """Fractional IPC loss of SS-2 relative to SS-1."""
        return 1.0 - self.ipc("SS-2") / self.ipc("SS-1")


def figure5_rows(benchmarks=BENCHMARK_ORDER,
                 instructions=DEFAULT_INSTRUCTIONS,
                 model_names=("SS-1", "Static-2", "SS-2"),
                 warmup=2_000):
    """Reproduce Figure 5: steady-state IPC comparison."""
    rows = []
    for name in benchmarks:
        program = build_workload(name)
        row = Figure5Row(benchmark=name)
        for model_name in model_names:
            model = get_model(model_name)
            row.results[model.name] = run_on_model(
                program, model, max_instructions=instructions,
                warmup_instructions=warmup)
        rows.append(row)
    return rows


# -- Figure 6 --------------------------------------------------------------

@dataclass
class Figure6Point:
    """IPC of the R=2 and R=3 designs at one fault frequency."""

    rate_per_million: float
    results: dict = field(default_factory=dict)  # design name -> RunResult


def figure6_points(benchmark="fpppp", rates=FIGURE6_RATES,
                   instructions=DEFAULT_INSTRUCTIONS, seed=20010,
                   warmup=2_000):
    """Reproduce Figure 6: IPC vs fault frequency for fpppp.

    Designs: 'R=2' (rewind recovery) and 'R=3' (2-of-3 majority
    election), both on the Table-1 datapath.
    """
    program = build_workload(benchmark)
    designs = (("R=2", ss2()), ("R=3", ss3(majority=True)))
    points = []
    for rate in rates:
        point = Figure6Point(rate_per_million=rate)
        # Beyond ~50k faults/M the machine lives in a rewind storm;
        # warming caches first is meaningless (and nearly impossible).
        effective_warmup = warmup if rate < 50_000 else 0
        for design_name, model in designs:
            fault_config = None
            if rate > 0:
                fault_config = FaultConfig(rate_per_million=rate,
                                           seed=seed + int(rate))
            point.results[design_name] = run_on_model(
                program, model, max_instructions=instructions,
                fault_config=fault_config,
                warmup_instructions=effective_warmup)
        points.append(point)
    return points


# -- Section 5.2 sensitivity study ------------------------------------------

@dataclass
class SensitivityRow:
    """IPC of one benchmark across resource scalings of the baseline."""

    benchmark: str
    base_ipc: float
    fu_ipc: dict = field(default_factory=dict)    # label -> ipc
    ruu_ipc: dict = field(default_factory=dict)   # label -> ipc

    @property
    def fu_limited(self):
        """Doubling FUs helps noticeably => FU-limited baseline."""
        return self.fu_ipc["2x"] > 1.10 * self.base_ipc

    @property
    def ruu_limited(self):
        return self.ruu_ipc["2x"] > 1.10 * self.base_ipc

    @property
    def ilp_limited(self):
        """Insensitive to both => limited by program parallelism."""
        return not self.fu_limited and not self.ruu_limited


def sensitivity_rows(benchmarks=BENCHMARK_ORDER,
                     instructions=DEFAULT_INSTRUCTIONS,
                     labels=("0.5x", "2x", "inf"), warmup=2_000):
    """The Section-5.2 resource-sensitivity experiment on SS-1."""
    rows = []
    for name in benchmarks:
        program = build_workload(name)
        base_model = get_model("SS-1")
        base = run_on_model(program, base_model,
                            max_instructions=instructions,
                            warmup_instructions=warmup)
        row = SensitivityRow(benchmark=name, base_ipc=base.ipc)
        for label in labels:
            factor = factor_for_label(label)
            fu_config = scale_functional_units(base_model.config, factor)
            row.fu_ipc[label] = run_on_model(
                program, MachineModel("SS-1", fu_config, base_model.ft),
                max_instructions=instructions,
                warmup_instructions=warmup).ipc
            ruu_config = scale_window(base_model.config, factor)
            row.ruu_ipc[label] = run_on_model(
                program, MachineModel("SS-1", ruu_config, base_model.ft),
                max_instructions=instructions,
                warmup_instructions=warmup).ipc
        rows.append(row)
    return rows


def sensitivity_campaign_spec(benchmarks=("gcc",), model="SS-2",
                              rates=(0.0, 3000.0), replicates=4,
                              instructions=2_000, labels=("2x",),
                              name="sensitivity-campaign"):
    """The Section-5.2 resource sweep as a campaign design-space grid.

    Expresses the FU / RUU scalings as ``machine_overrides`` cells of a
    :class:`~repro.campaign.spec.CampaignSpec`, so the sensitivity
    study runs through the campaign engine — resumable, sharded and
    statistically aggregated — instead of the one-off
    :func:`sensitivity_rows` loop.  Returns the spec; run it with a
    :class:`~repro.campaign.api.CampaignSession`.
    """
    # Local import: repro.campaign.outcome imports this module.
    from ..campaign.spec import CampaignSpec
    base = get_model(model).config
    machine_overrides = {"base": {}}
    for label in labels:
        factor = factor_for_label(label)
        fu = scale_functional_units(base, factor)
        machine_overrides["fu-%s" % label] = {
            "int_alu": fu.int_alu, "int_mult": fu.int_mult,
            "fp_add": fu.fp_add, "fp_mult": fu.fp_mult,
            "mem_ports": fu.mem_ports}
        ruu = scale_window(base, factor)
        machine_overrides["ruu-%s" % label] = {
            "rob_size": ruu.rob_size, "lsq_size": ruu.lsq_size}
    return CampaignSpec(
        name=name,
        workloads=tuple(benchmarks),
        models=(model,),
        rates_per_million=tuple(rates),
        machine_overrides=machine_overrides,
        replicates=replicates,
        instructions=instructions)


def adaptive_demo_spec(benchmarks=("gcc",), models=("SS-1", "SS-2"),
                       rates=(0.0, 20_000.0), replicates=24,
                       instructions=250, name="adaptive-demo"):
    """A deliberately high-contrast grid for adaptive sampling.

    Rate-0 cells never produce an SDC and the 20k-faults/M cells sit
    near a proportion extreme on both machines (SS-1 mostly silent
    corruptions, SS-2 mostly detected+recovered), so under
    ``SamplingPlan.wilson(..., metric="sdc_rate")`` every cell's
    interval collapses long before the replicate budget runs out —
    the spec the adaptive tests and the CI smoke use to show the
    scheduler stopping cells early.  Returns the spec; attach the plan
    through :class:`~repro.campaign.api.ExecutionOptions`.
    """
    from ..campaign.spec import CampaignSpec
    return CampaignSpec(
        name=name,
        workloads=tuple(benchmarks),
        models=tuple(models),
        rates_per_million=tuple(rates),
        replicates=replicates,
        instructions=instructions)


def structure_sweep_cells(structures, strikes=1):
    """One ``fault_sites`` sweep cell per structure.

    The single definition of the ``sweep-<structure>`` cell shape: the
    cell name and policy spec feed trial-key material, so the CLI
    (``--sites``) and :func:`site_sensitivity_spec` must build them
    identically or CLI-run and API-run campaigns stop sharing stores.
    """
    return {
        "sweep-%s" % structure: {"policy": "structure_sweep",
                                 "structure": structure,
                                 "strikes": strikes}
        for structure in structures}


def site_sensitivity_spec(benchmarks=("gcc",), model="SS-2",
                          structures=None, strikes=1, replicates=16,
                          instructions=2_000,
                          name="site-sensitivity"):
    """A per-structure fault-sensitivity study as a campaign grid.

    One :class:`~repro.faults.policy.StructureSweepPolicy` cell per
    addressable structure: every replicate strikes ``strikes``
    uniformly sampled sites of that structure (targets drawn per trial
    from the trial's content-derived seed), and the aggregate answers
    *which structure is sensitive* — coverage, SDC rate and masked rate
    per structure with Wilson CIs
    (:func:`repro.campaign.aggregate.aggregate_structures`).  This is
    the "Not All Faults Are Equal" per-site characterisation the
    ROADMAP names, run on the paper's machinery.  Returns the spec; run
    it with a :class:`~repro.campaign.api.CampaignSession` or
    ``repro-ft campaign --sites all``.
    """
    from ..campaign.spec import CampaignSpec
    from ..faults.sites import STRUCTURES
    if structures is None:
        structures = STRUCTURES
    fault_sites = structure_sweep_cells(structures, strikes=strikes)
    return CampaignSpec(
        name=name,
        workloads=tuple(benchmarks),
        models=(model,),
        rates_per_million=(0.0,),
        fault_sites=fault_sites,
        replicates=replicates,
        instructions=instructions)


# -- recovery cost (Section 5.3 in-text) -------------------------------------

def recovery_cost(benchmark="fpppp", rate_per_million=200.0,
                  instructions=DEFAULT_INSTRUCTIONS, seed=42,
                  warmup=2_000):
    """Measure the observed rewind penalty Y (paper: ~30 cycles)."""
    program = build_workload(benchmark)
    fault_config = FaultConfig(rate_per_million=rate_per_million,
                               seed=seed)
    return run_on_model(program, ss2(), max_instructions=instructions,
                        fault_config=fault_config,
                        warmup_instructions=warmup)


# -- Section 3.2 physical-register-pool ablation -----------------------------

def physreg_ablation(benchmarks=("gcc", "fpppp", "go"),
                     instructions=DEFAULT_INSTRUCTIONS, warmup=2_000):
    """SS-2 vs SS-2 with a shared physical register pool.

    The paper predicts the shared-pool variant is "slightly lower"
    because corroboration costs R extra register-file reads per retiring
    instruction.
    """
    rows = []
    for name in benchmarks:
        program = build_workload(name)
        split = run_on_model(program, ss2(),
                             max_instructions=instructions,
                             warmup_instructions=warmup)
        shared_model = ss2(shared_physical_regfile=True)
        shared = run_on_model(program, shared_model,
                              max_instructions=instructions,
                              warmup_instructions=warmup)
        rows.append((name, split.ipc, shared.ipc))
    return rows


# -- rename-scheme equivalence (Section 3.1 design alternative) --------------

def rename_scheme_comparison(benchmark="vortex",
                             instructions=5_000):
    """Map-table vs associative-search renaming must agree exactly."""
    program = build_workload(benchmark)
    results = {}
    for scheme in ("map", "associative"):
        model = ss2(rename_scheme=scheme)
        results[scheme] = run_on_model(program, model,
                                       max_instructions=instructions)
    return results
