"""Synthetic workload generator.

Turns a :class:`~repro.workloads.profiles.BenchmarkProfile` into an
executable loop program whose dynamic instruction mix matches the
profile's Table-2 targets and whose dependency/branch/memory structure
realises the profile's bottleneck.

Structure of a generated program::

    init:   constants, chain seeds (loaded from the data segment),
            induction registers
    loop:   shuffled body of `body_size` slots — chained integer ALU ops,
            independent or serial FP ops, strided loads/stores,
            spill/reload (store->load forwarding) pairs, test+branch
            pairs — followed by induction update and the loop branch
    end:    halt

Register conventions (integer): r10 loop counter, r11 induction index,
r12 footprint mask, r14 entropy accumulator, r15.. integer chains,
r20..r23 load temporaries, r24 constant 1, r1 branch-test temporary.
Floating: f10.. chain/destination registers, f20 = 0.0, f21 = 1.0,
f28 = 3.0, f29 = 0.5.
"""

from __future__ import annotations

import random
import zlib

from ..errors import ConfigError
from ..isa.builder import ProgramBuilder
from ..isa.opcodes import Op
from ..isa.registers import fp_reg
from .profiles import get_profile

# Integer register roles.
_R_COUNTER = 10
_R_INDEX = 11
_R_MASK = 12
_R_ENTROPY = 14
_R_CHAIN_BASE = 15      # chains occupy r15..r15+n-1 (n <= 5 -> r19)
_R_LOAD_TMP = (20, 21, 22, 23)
_R_ONE = 24
_R_TEST = 1

# Floating register roles (unified indices via fp_reg()).
_F_CHAIN_BASE = 10
_F_SERIAL = fp_reg(9)   # the single serial FP dependency chain
_F_ZERO = fp_reg(20)
_F_ONE = fp_reg(21)
_F_A = fp_reg(28)
_F_B = fp_reg(29)

_MAX_INT_CHAINS = 5     # r15..r19
_MAX_FP_CHAINS = 10     # f10..f19

#: Default iteration count: effectively unbounded, the simulator's
#: ``max_instructions`` budget terminates the run.
UNBOUNDED_ITERATIONS = 1 << 20


class WorkloadGenerator:
    """Deterministic generator for one benchmark profile."""

    def __init__(self, profile, seed=1_000_003):
        if isinstance(profile, str):
            profile = get_profile(profile)
        self.profile = profile
        self.seed = seed

    # -- composition -------------------------------------------------------

    def slot_plan(self):
        """Per-iteration action counts derived from the mix targets.

        Returns a dict of action -> count where actions are:
        ``plain_load``, ``plain_store``, ``spill_pair``, ``int_alu``,
        ``int_mul``, ``int_div``, ``fp_add``, ``fp_mult``, ``fp_div``,
        ``branch_pair``.  Fixed loop overhead (5 integer instructions)
        is accounted against the integer budget.
        """
        p = self.profile
        total = p.body_size
        overhead = 5  # counter add, loop branch, index add/mask, entropy
        n_branch_pairs = int(round(p.data_branch_fraction * total))
        # Dynamic total includes the ~0.5 skipped-or-not nop per branch
        # pair; mix targets are computed against it so the measured
        # dynamic mix matches Table 2.
        effective_total = total + 0.5 * n_branch_pairs
        n_mem = round(p.pct_mem / 100.0 * effective_total)
        n_spill_pairs = int(round(p.spill_fraction * n_mem / 2.0))
        plain_mem = n_mem - 2 * n_spill_pairs
        n_loads = int(round(p.load_fraction * plain_mem))
        n_stores = plain_mem - n_loads
        n_fp_add = round(p.pct_fp_add / 100.0 * effective_total)
        n_fp_mult = round(p.pct_fp_mult / 100.0 * effective_total)
        n_fp_div = round(p.pct_fp_div / 100.0 * effective_total)
        n_div = total // p.serial_div_every if p.serial_div_every else 0
        n_int = (total - n_mem - n_fp_add - n_fp_mult - n_fp_div
                 - 2 * n_branch_pairs - overhead - n_div)
        if n_int < 0:
            raise ConfigError(
                "profile %s over-commits the body: %d integer slots left"
                % (p.name, n_int))
        n_mul = int(round(p.int_mult_fraction * n_int))
        return {
            "plain_load": n_loads,
            "plain_store": n_stores,
            "spill_pair": n_spill_pairs,
            "int_alu": n_int - n_mul,
            "int_mul": n_mul,
            "int_div": n_div,
            "fp_add": n_fp_add,
            "fp_mult": n_fp_mult,
            "fp_div": n_fp_div,
            "branch_pair": n_branch_pairs,
        }

    def expected_mix(self):
        """Analytic dynamic mix of the generated loop, in percent.

        Accounts for the ~0.5 dynamically skipped nop per branch pair.
        Used by calibration tests against the Table-2 targets.
        """
        plan = self.slot_plan()
        mem = (plan["plain_load"] + plan["plain_store"]
               + 2 * plan["spill_pair"])
        integer = (plan["int_alu"] + plan["int_mul"] + plan["int_div"]
                   + 2 * plan["branch_pair"] + 5
                   + 0.5 * plan["branch_pair"])  # skipped-or-not nops
        fp_add = plan["fp_add"]
        fp_mult = plan["fp_mult"]
        fp_div = plan["fp_div"]
        total = mem + integer + fp_add + fp_mult + fp_div
        scale = 100.0 / total
        return (mem * scale, integer * scale, fp_add * scale,
                fp_mult * scale, fp_div * scale)

    # -- emission ----------------------------------------------------------

    def build(self, iterations=None):
        """Generate the program (``iterations`` loop trips, then halt)."""
        p = self.profile
        iterations = iterations or UNBOUNDED_ITERATIONS
        # zlib.crc32 is stable across processes (unlike hash()), keeping
        # generated workloads bit-identical run to run.
        rng = random.Random(self.seed ^ zlib.crc32(p.name.encode()))
        builder = ProgramBuilder(p.name)
        n_int_chains = min(p.int_chains, _MAX_INT_CHAINS)
        n_fp_chains = min(p.fp_chains, _MAX_FP_CHAINS)
        plan = self.slot_plan()
        spill_base = p.footprint_words + p.offset_span

        # Data segment: pseudo-random words for the access window, the
        # spill slots and the chain seeds.
        data_words = p.footprint_words + p.offset_span \
            + 2 * plan["spill_pair"] + 16
        builder.word(*[rng.randrange(1, 1 << 31) for _ in
                       range(data_words)])

        self._emit_init(builder, rng, iterations, n_int_chains,
                        n_fp_chains)
        builder.label("loop")
        actions = self._action_list(plan, rng)
        spill_slot = spill_base
        for action in actions:
            spill_slot = self._emit_action(builder, rng, action,
                                           n_int_chains, n_fp_chains,
                                           spill_slot, spill_base)
        # Loop overhead: entropy mix-in, induction update, loop control.
        builder.emit(Op.ADD, rd=_R_ENTROPY, rs1=_R_ENTROPY,
                     rs2=_R_LOAD_TMP[0])
        builder.emit(Op.ADDI, rd=_R_INDEX, rs1=_R_INDEX,
                     imm=p.stride_words)
        builder.emit(Op.AND, rd=_R_INDEX, rs1=_R_INDEX, rs2=_R_MASK)
        builder.emit(Op.ADDI, rd=_R_COUNTER, rs1=_R_COUNTER, imm=-1)
        builder.branch(Op.BNE, rs1=_R_COUNTER, rs2=0, target="loop")
        builder.halt()
        return builder.build()

    def _emit_init(self, builder, rng, iterations, n_int_chains,
                   n_fp_chains):
        p = self.profile
        builder.emit(Op.ADDI, rd=_R_ONE, rs1=0, imm=1)
        builder.emit(Op.ADDI, rd=_R_COUNTER, rs1=0, imm=iterations)
        builder.emit(Op.ADDI, rd=_R_INDEX, rs1=0, imm=0)
        builder.emit(Op.ADDI, rd=_R_MASK, rs1=0,
                     imm=p.footprint_words - 1)
        builder.emit(Op.ADDI, rd=_R_ENTROPY, rs1=0, imm=rng.randrange(97))
        for i in range(n_int_chains):
            builder.emit(Op.LW, rd=_R_CHAIN_BASE + i, rs1=0, imm=i)
        for reg in _R_LOAD_TMP:
            builder.emit(Op.ADDI, rd=reg, rs1=0, imm=rng.randrange(256))
        # FP constants and chain seeds.
        builder.emit(Op.CVTIF, rd=_F_ZERO, rs1=0)
        builder.emit(Op.CVTIF, rd=_F_ONE, rs1=_R_ONE)
        builder.emit(Op.ADDI, rd=_R_TEST, rs1=0, imm=3)
        builder.emit(Op.CVTIF, rd=_F_A, rs1=_R_TEST)
        builder.emit(Op.FDIV, rd=_F_B, rs1=_F_ONE, rs2=_F_A)  # 1/3
        builder.emit(Op.CVTIF, rd=_F_SERIAL, rs1=_R_ONE)
        for i in range(n_fp_chains):
            builder.emit(Op.CVTIF, rd=fp_reg(_F_CHAIN_BASE + i),
                         rs1=_R_ONE)

    def _action_list(self, plan, rng):
        actions = []
        for action, count in plan.items():
            actions.extend([action] * count)
        rng.shuffle(actions)
        return actions

    def _emit_action(self, builder, rng, action, n_int_chains,
                     n_fp_chains, spill_slot, spill_base):
        p = self.profile
        if action == "int_alu":
            self._emit_int_alu(builder, rng, n_int_chains)
        elif action == "int_mul":
            chain = _R_CHAIN_BASE + rng.randrange(n_int_chains)
            builder.emit(Op.MUL, rd=chain, rs1=chain, rs2=_R_ONE)
        elif action == "int_div":
            # Serial division chain: always chain 0 (the critical path).
            builder.emit(Op.DIV, rd=_R_CHAIN_BASE, rs1=_R_CHAIN_BASE,
                         rs2=_R_ONE)
        elif action == "plain_load":
            temp = _R_LOAD_TMP[rng.randrange(len(_R_LOAD_TMP))]
            builder.emit(Op.LW, rd=temp, rs1=_R_INDEX,
                         imm=rng.randrange(p.offset_span))
        elif action == "plain_store":
            chain = _R_CHAIN_BASE + rng.randrange(n_int_chains)
            builder.emit(Op.SW, rs1=_R_INDEX, rs2=chain,
                         imm=rng.randrange(p.offset_span))
        elif action == "spill_pair":
            chain = _R_CHAIN_BASE + rng.randrange(n_int_chains)
            builder.emit(Op.SW, rs1=0, rs2=chain, imm=spill_slot)
            builder.emit(Op.LW, rd=chain, rs1=0, imm=spill_slot)
            spill_slot += 1
        elif action == "fp_add":
            self._emit_fp(builder, rng, Op.FADD, n_fp_chains)
        elif action == "fp_mult":
            self._emit_fp(builder, rng, Op.FMUL, n_fp_chains)
        elif action == "fp_div":
            op = Op.FSQRT if p.fp_div_op == "fsqrt" else Op.FDIV
            self._emit_fp(builder, rng, op, n_fp_chains)
        elif action == "branch_pair":
            self._emit_branch_pair(builder, rng)
        else:  # pragma: no cover - plan keys are closed
            raise ConfigError("unknown action %r" % action)
        return spill_slot

    def _emit_int_alu(self, builder, rng, n_int_chains):
        chain = _R_CHAIN_BASE + rng.randrange(n_int_chains)
        choice = rng.randrange(5)
        if choice == 0:
            builder.emit(Op.ADDI, rd=chain, rs1=chain,
                         imm=rng.randrange(1, 64))
        elif choice == 1:
            builder.emit(Op.XOR, rd=chain, rs1=chain,
                         rs2=_R_LOAD_TMP[rng.randrange(4)])
        elif choice == 2:
            builder.emit(Op.ADD, rd=chain, rs1=chain, rs2=_R_ONE)
        elif choice == 3:
            builder.emit(Op.ORI, rd=chain, rs1=chain,
                         imm=rng.randrange(1, 32))
        else:
            builder.emit(Op.SUB, rd=chain, rs1=chain, rs2=_R_ONE)

    def _emit_fp(self, builder, rng, op, n_fp_chains):
        """One FP operation: independent, or on the serial chain.

        A ``fp_serial_fraction`` share of FP operations extends one
        serial dependency chain (register f9, value pinned at 1.0), so
        that share of the FP work is latency- rather than
        throughput-bound — the ammp-style critical path of Section 5.2.
        """
        if rng.random() < self.profile.fp_serial_fraction:
            if op == Op.FSQRT:
                builder.emit(op, rd=_F_SERIAL, rs1=_F_SERIAL)
            elif op == Op.FADD:
                builder.emit(op, rd=_F_SERIAL, rs1=_F_SERIAL,
                             rs2=_F_ZERO)
            else:  # FMUL / FDIV by 1.0 keep the value stable
                builder.emit(op, rd=_F_SERIAL, rs1=_F_SERIAL,
                             rs2=_F_ONE)
            return
        dest = fp_reg(_F_CHAIN_BASE + rng.randrange(n_fp_chains))
        if op == Op.FSQRT:
            builder.emit(op, rd=dest, rs1=_F_ONE)
        else:  # FADD / FMUL / FDIV on loop-invariant inputs
            builder.emit(op, rd=dest, rs1=_F_A, rs2=_F_B)

    def _emit_branch_pair(self, builder, rng):
        """A data-dependent (or loop-parity) test + short forward branch."""
        p = self.profile
        if rng.random() < p.predictable_branch_bias:
            source = _R_COUNTER      # loop parity: learnable pattern
            mask = 1
        else:
            source = _R_ENTROPY      # memory-derived: effectively random
            # Different static branches test different entropy bits so
            # their directions decorrelate within one iteration.
            mask = 1 << rng.randrange(6)
        builder.emit(Op.ANDI, rd=_R_TEST, rs1=source, imm=mask)
        builder.emit(Op.BNE, rs1=_R_TEST, rs2=0, imm=1)  # skip one nop
        builder.nop()


def build_workload(name, iterations=None, seed=1_000_003):
    """Generate the named Table-2 benchmark as a runnable Program."""
    return WorkloadGenerator(get_profile(name), seed=seed).build(
        iterations=iterations)
