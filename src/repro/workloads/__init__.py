"""Synthetic SPEC-like workloads calibrated to the paper's Table 2."""

from .generator import (UNBOUNDED_ITERATIONS, WorkloadGenerator,
                        build_workload)
from .microbench import (branch_pattern, dot_product, fibonacci,
                         pointer_chase, vector_sum)
from .mix import MixRow, format_mix_table, measure_mix
from .profiles import (BENCHMARK_ORDER, PROFILES, BenchmarkProfile,
                       available_workloads, get_profile)

__all__ = [
    "UNBOUNDED_ITERATIONS", "WorkloadGenerator", "build_workload",
    "branch_pattern", "dot_product", "fibonacci", "pointer_chase",
    "vector_sum", "MixRow", "format_mix_table", "measure_mix",
    "BENCHMARK_ORDER", "PROFILES", "BenchmarkProfile",
    "available_workloads", "get_profile",
]
