"""Benchmark profiles calibrated to Table 2 of the paper.

Each profile drives the synthetic workload generator so that the
*dynamic* instruction mix matches the paper's Table 2 (percent memory
ops, integer ops, FP add, FP mult, FP div) and the *bottleneck
structure* matches the Section 5.2 characterisation:

* FU-limited benchmarks (high ILP, saturating a functional-unit class or
  the D-cache ports) suffer large redundancy penalties;
* ILP-limited benchmarks (``go``, ``vpr``: few dependency chains and
  unpredictable branches; ``ammp``: a serial division chain on the
  critical path) leave resources idle that the redundant thread can use
  for (nearly) free;
* ``swim`` additionally stresses the RUU window (long-latency FP chains);
* ``fpppp``/``swim``/``art`` exercise the FP mult/div unit hard enough
  that the statically partitioned machine's extra FPMult/Div unit
  matters (the paper's footnote 3).

These synthetic stand-ins replace the 1-billion-instruction SPEC
reference runs (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator parameters for one synthetic SPEC-like benchmark."""

    name: str
    suite: str
    # Table-2 dynamic mix targets, in percent of all instructions.
    pct_mem: float
    pct_int: float
    pct_fp_add: float
    pct_fp_mult: float
    pct_fp_div: float
    # Memory behaviour.
    load_fraction: float = 0.65     # loads / all plain memory ops
    spill_fraction: float = 0.0     # of mem ops paired as store->load
    footprint_words: int = 2048     # power of two, regular-access window
    stride_words: int = 3           # induction stride through the window
    offset_span: int = 8            # displacement range of regular
                                    # accesses; small spans alias recent
                                    # stores and forward without a port
    # Parallelism structure.
    int_chains: int = 8             # independent integer dependency chains
    fp_chains: int = 4              # rotating FP destination registers
    fp_serial_fraction: float = 0.0  # share of FP ops on one serial
                                     # dependency chain (1.0 = ammp-style
                                     # fully latency-bound FP)
    int_mult_fraction: float = 0.0  # of plain int ops emitted as MUL
    serial_div_every: int = 0       # serial int DIV each N slots (0 = off)
    # Control behaviour.
    data_branch_fraction: float = 0.02  # of slots that are test+branch
    predictable_branch_bias: float = 0.5  # keyed to loop parity
    # FP division flavour: "fdiv" (lat 12) or "fsqrt" (lat 24).
    fp_div_op: str = "fdiv"
    # Body shape.
    body_size: int = 160            # dynamic instructions per iteration
    #: Bottleneck classification from Section 5.2 (documentation + tests).
    limiter: str = "fu"

    def mix_targets(self):
        """(mem, int, fp_add, fp_mult, fp_div) percentages."""
        return (self.pct_mem, self.pct_int, self.pct_fp_add,
                self.pct_fp_mult, self.pct_fp_div)


# Table 2 percentages are taken verbatim from the paper.
PROFILES = {
    "gcc": BenchmarkProfile(
        name="gcc", suite="SPEC95",
        pct_mem=74.55, pct_int=25.45, pct_fp_add=0.0, pct_fp_mult=0.0,
        pct_fp_div=0.0,
        load_fraction=0.62, footprint_words=2048, int_chains=10,
        offset_span=32, data_branch_fraction=0.015, limiter="fu"),
    "vortex": BenchmarkProfile(
        name="vortex", suite="SPEC95",
        pct_mem=54.56, pct_int=45.44, pct_fp_add=0.0, pct_fp_mult=0.0,
        pct_fp_div=0.0,
        load_fraction=0.65, footprint_words=4096, int_chains=10,
        offset_span=32, data_branch_fraction=0.02, limiter="fu"),
    "go": BenchmarkProfile(
        name="go", suite="SPEC95",
        pct_mem=29.49, pct_int=70.50, pct_fp_add=0.0, pct_fp_mult=0.0,
        pct_fp_div=0.0,
        load_fraction=0.70, footprint_words=4096, int_chains=1,
        data_branch_fraction=0.21, predictable_branch_bias=0.1,
        limiter="ilp"),
    "bzip": BenchmarkProfile(
        name="bzip", suite="SPEC2000",
        pct_mem=29.84, pct_int=70.16, pct_fp_add=0.0, pct_fp_mult=0.0,
        pct_fp_div=0.0,
        load_fraction=0.68, footprint_words=8192, int_chains=8,
        int_mult_fraction=0.10, data_branch_fraction=0.065,
        predictable_branch_bias=0.60, limiter="fu"),
    "ijpeg": BenchmarkProfile(
        name="ijpeg", suite="SPEC95",
        pct_mem=26.06, pct_int=73.94, pct_fp_add=0.0, pct_fp_mult=0.0,
        pct_fp_div=0.0,
        load_fraction=0.72, footprint_words=2048, int_chains=10,
        int_mult_fraction=0.18, data_branch_fraction=0.02,
        predictable_branch_bias=0.9, limiter="fu"),
    "vpr": BenchmarkProfile(
        name="vpr", suite="SPEC2000",
        pct_mem=31.30, pct_int=63.61, pct_fp_add=3.57, pct_fp_mult=1.38,
        pct_fp_div=0.15,
        load_fraction=0.66, footprint_words=4096, int_chains=1,
        data_branch_fraction=0.10, predictable_branch_bias=0.30,
        body_size=640, limiter="ilp"),
    "equake": BenchmarkProfile(
        name="equake", suite="SPEC2000",
        pct_mem=34.55, pct_int=52.82, pct_fp_add=6.06, pct_fp_mult=6.41,
        pct_fp_div=0.16,
        load_fraction=0.70, footprint_words=4096, int_chains=6,
        fp_chains=4, data_branch_fraction=0.045, body_size=640,
        limiter="fu"),
    "ammp": BenchmarkProfile(
        name="ammp", suite="SPEC2000",
        pct_mem=41.35, pct_int=56.64, pct_fp_add=1.49, pct_fp_mult=0.50,
        pct_fp_div=0.02,
        load_fraction=0.68, footprint_words=2048, int_chains=2,
        fp_serial_fraction=1.0, serial_div_every=28,
        data_branch_fraction=0.03, predictable_branch_bias=0.8,
        limiter="div"),
    "fpppp": BenchmarkProfile(
        name="fpppp", suite="SPEC95",
        pct_mem=52.43, pct_int=15.03, pct_fp_add=15.53, pct_fp_mult=16.84,
        pct_fp_div=0.16,
        load_fraction=0.55, spill_fraction=0.62, footprint_words=1024,
        int_chains=8, fp_chains=8, fp_div_op="fsqrt",
        fp_serial_fraction=0.20,
        data_branch_fraction=0.004, predictable_branch_bias=0.95,
        body_size=600, limiter="fpmult"),
    "swim": BenchmarkProfile(
        name="swim", suite="SPEC2000",
        pct_mem=32.71, pct_int=37.41, pct_fp_add=19.31, pct_fp_mult=10.12,
        pct_fp_div=0.47,
        load_fraction=0.60, footprint_words=8192, int_chains=8,
        fp_chains=8, fp_div_op="fsqrt", fp_serial_fraction=0.28,
        data_branch_fraction=0.005, predictable_branch_bias=0.95,
        body_size=200, limiter="fpmult+ruu"),
    "art": BenchmarkProfile(
        name="art", suite="SPEC2000",
        pct_mem=35.29, pct_int=43.50, pct_fp_add=11.07, pct_fp_mult=8.39,
        pct_fp_div=1.36,
        load_fraction=0.64, footprint_words=8192, int_chains=6,
        fp_chains=6, fp_div_op="fdiv", fp_serial_fraction=0.28,
        data_branch_fraction=0.01, predictable_branch_bias=0.9,
        body_size=200, limiter="fpmult"),
}

#: Benchmark presentation order used by Figure 5 / Table 2.
BENCHMARK_ORDER = ("gcc", "vortex", "go", "bzip", "ijpeg", "vpr",
                   "equake", "ammp", "fpppp", "swim", "art")


def get_profile(name):
    """Profile by benchmark name (KeyError lists the valid names)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError("unknown benchmark %r; choose from %s"
                       % (name, ", ".join(BENCHMARK_ORDER))) from None


def available_workloads():
    """All benchmark names, in presentation order (campaign axis)."""
    return tuple(BENCHMARK_ORDER)
