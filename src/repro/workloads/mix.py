"""Dynamic instruction-mix measurement (regenerates Table 2).

Runs a workload on the in-order functional simulator and reports the
measured dynamic mix in the paper's Table-2 categories.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..functional.simulator import FunctionalSimulator


@dataclass(frozen=True)
class MixRow:
    """One Table-2 row: measured dynamic instruction percentages."""

    name: str
    instructions: int
    pct_mem: float
    pct_int: float
    pct_fp_add: float
    pct_fp_mult: float
    pct_fp_div: float

    def as_tuple(self):
        return (self.pct_mem, self.pct_int, self.pct_fp_add,
                self.pct_fp_mult, self.pct_fp_div)


def measure_mix(program, instructions=50_000, name=None):
    """Execute ``program`` functionally and measure its dynamic mix."""
    simulator = FunctionalSimulator(program)
    remaining = instructions
    while remaining > 0 and simulator.step():
        remaining -= 1
    mem, integer, fp_add, fp_mult, fp_div = simulator.mix.percentages()
    return MixRow(name=name or program.name,
                  instructions=simulator.instret,
                  pct_mem=mem, pct_int=integer, pct_fp_add=fp_add,
                  pct_fp_mult=fp_mult, pct_fp_div=fp_div)


def format_mix_table(rows):
    """Render measured rows in the shape of the paper's Table 2."""
    header = ("%-8s %12s %8s %8s %8s %9s %8s"
              % ("bench", "instrs", "%mem", "%int", "%fpadd", "%fpmult",
                 "%fpdiv"))
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("%-8s %12d %8.2f %8.2f %8.2f %9.2f %8.2f"
                     % (row.name, row.instructions, row.pct_mem,
                        row.pct_int, row.pct_fp_add, row.pct_fp_mult,
                        row.pct_fp_div))
    return "\n".join(lines)
