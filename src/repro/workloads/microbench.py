"""Small hand-written programs used by tests and examples."""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.opcodes import Op
from ..isa.registers import fp_reg


def vector_sum(length=64, seed=7):
    """Sum ``length`` data words into memory cell ``length``."""
    import random
    rng = random.Random(seed)
    builder = ProgramBuilder("vector_sum")
    builder.word(*[rng.randrange(1, 1000) for _ in range(length)])
    builder.emit(Op.ADDI, rd=1, rs1=0, imm=0)       # i
    builder.emit(Op.ADDI, rd=2, rs1=0, imm=0)       # sum
    builder.emit(Op.ADDI, rd=3, rs1=0, imm=length)  # n
    builder.label("loop")
    builder.emit(Op.LW, rd=4, rs1=1, imm=0)
    builder.emit(Op.ADD, rd=2, rs1=2, rs2=4)
    builder.emit(Op.ADDI, rd=1, rs1=1, imm=1)
    builder.branch(Op.BNE, rs1=1, rs2=3, target="loop")
    builder.emit(Op.SW, rs1=0, rs2=2, imm=length)
    builder.halt()
    return builder.build()


def fibonacci(n=20):
    """Iterative Fibonacci; result in r2 and memory cell 0."""
    builder = ProgramBuilder("fibonacci")
    builder.space(4)
    builder.emit(Op.ADDI, rd=1, rs1=0, imm=1)
    builder.emit(Op.ADDI, rd=2, rs1=0, imm=1)
    builder.emit(Op.ADDI, rd=3, rs1=0, imm=n - 2)
    builder.label("loop")
    builder.emit(Op.ADD, rd=4, rs1=1, rs2=2)
    builder.emit(Op.ADDI, rd=1, rs1=2, imm=0)
    builder.emit(Op.ADDI, rd=2, rs1=4, imm=0)
    builder.emit(Op.ADDI, rd=3, rs1=3, imm=-1)
    builder.branch(Op.BNE, rs1=3, rs2=0, target="loop")
    builder.emit(Op.SW, rs1=0, rs2=2, imm=0)
    builder.halt()
    return builder.build()


def dot_product(length=32, seed=11):
    """Floating dot product of two vectors; result stored at cell 200."""
    import random
    rng = random.Random(seed)
    builder = ProgramBuilder("dot_product")
    values = [float(rng.randrange(1, 10)) for _ in range(2 * length)]
    builder.word(*values)
    acc, va, vb = fp_reg(1), fp_reg(2), fp_reg(3)
    builder.emit(Op.ADDI, rd=1, rs1=0, imm=0)            # i
    builder.emit(Op.ADDI, rd=2, rs1=0, imm=length)       # n
    builder.emit(Op.CVTIF, rd=acc, rs1=0)                # acc = 0.0
    builder.label("loop")
    builder.emit(Op.FLW, rd=va, rs1=1, imm=0)
    builder.emit(Op.FLW, rd=vb, rs1=1, imm=length)
    builder.emit(Op.FMUL, rd=va, rs1=va, rs2=vb)
    builder.emit(Op.FADD, rd=acc, rs1=acc, rs2=va)
    builder.emit(Op.ADDI, rd=1, rs1=1, imm=1)
    builder.branch(Op.BNE, rs1=1, rs2=2, target="loop")
    builder.emit(Op.FSW, rs1=0, rs2=acc, imm=200)
    builder.halt()
    return builder.build()


def pointer_chase(length=128, seed=3):
    """Serial pointer chase through a shuffled ring (ILP = 1)."""
    import random
    rng = random.Random(seed)
    order = list(range(1, length))
    rng.shuffle(order)
    order.append(0)  # close the cycle back at the start
    # Build a single cycle covering all cells.
    ring = [0] * length
    current = 0
    for nxt in order:
        ring[current] = nxt
        current = nxt
    builder = ProgramBuilder("pointer_chase")
    builder.word(*ring)
    builder.emit(Op.ADDI, rd=1, rs1=0, imm=0)            # cursor
    builder.emit(Op.ADDI, rd=2, rs1=0, imm=length)       # hops
    builder.label("loop")
    builder.emit(Op.LW, rd=1, rs1=1, imm=0)
    builder.emit(Op.ADDI, rd=2, rs1=2, imm=-1)
    builder.branch(Op.BNE, rs1=2, rs2=0, target="loop")
    builder.emit(Op.SW, rs1=0, rs2=1, imm=length)
    builder.halt()
    return builder.build()


def branch_pattern(iterations=256, period=3):
    """A branch whose direction repeats with a short period."""
    builder = ProgramBuilder("branch_pattern")
    builder.space(4)
    builder.emit(Op.ADDI, rd=1, rs1=0, imm=iterations)
    builder.emit(Op.ADDI, rd=2, rs1=0, imm=0)        # phase
    builder.emit(Op.ADDI, rd=3, rs1=0, imm=period)
    builder.emit(Op.ADDI, rd=5, rs1=0, imm=0)        # taken counter
    builder.label("loop")
    builder.emit(Op.ADDI, rd=2, rs1=2, imm=1)
    builder.emit(Op.BLT, rs1=2, rs2=3, imm=1)        # skip reset
    builder.emit(Op.ADDI, rd=2, rs1=0, imm=0)
    builder.emit(Op.SLT, rd=4, rs1=0, rs2=2)         # phase > 0 ?
    builder.emit(Op.ADD, rd=5, rs1=5, rs2=4)
    builder.emit(Op.ADDI, rd=1, rs1=1, imm=-1)
    builder.branch(Op.BNE, rs1=1, rs2=0, target="loop")
    builder.emit(Op.SW, rs1=0, rs2=5, imm=0)
    builder.halt()
    return builder.build()
