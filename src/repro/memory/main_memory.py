"""Flat word-addressed main memory.

Memory cells hold numeric values (int or float).  Addresses are word
indices; out-of-range addresses wrap modulo the memory size by default so
that fault-injected (corrupted) addresses reach *some* cell instead of
crashing the simulator — exactly what real hardware would do.  A strict
mode raises instead, for tests of well-formed programs.
"""

from __future__ import annotations

from ..errors import SimulationError

DEFAULT_MEMORY_WORDS = 1 << 16


class MainMemory:
    """Word-addressed backing store for both simulators."""

    def __init__(self, size_words=DEFAULT_MEMORY_WORDS, image=None,
                 strict=False):
        if size_words <= 0:
            raise ValueError("memory size must be positive")
        self.size = size_words
        self.strict = strict
        self._cells = [0] * size_words
        self.reads = 0
        self.writes = 0
        #: Cell indices ever written through :meth:`store`.  Two
        #: memories initialised from the same image can only differ at
        #: the union of their written sets, which lets golden-state
        #: comparison scan the store footprint instead of every word.
        self.written = set()
        if image:
            if len(image) > size_words:
                raise SimulationError(
                    "data image (%d words) larger than memory (%d words)"
                    % (len(image), size_words))
            self._cells[:len(image)] = list(image)

    def _index(self, address):
        if 0 <= address < self.size:
            return address
        if self.strict:
            raise SimulationError("memory address out of range: %d"
                                  % address)
        return address % self.size

    def load(self, address):
        """Read the cell at ``address`` (word index)."""
        self.reads += 1
        return self._cells[self._index(address)]

    def store(self, address, value):
        """Write ``value`` to the cell at ``address``."""
        self.writes += 1
        index = self._index(address)
        self._cells[index] = value
        self.written.add(index)

    def peek(self, address):
        """Read without counting a simulated access (for checkers)."""
        return self._cells[self._index(address)]

    def poke(self, address, value):
        """Write without counters or dirty tracking (for checkers).

        The undo path of a seekable golden trace restores cells it
        knows were written before; the address stays in ``written``,
        which only ever over-approximates the dirty footprint.
        """
        self._cells[self._index(address)] = value

    def snapshot(self):
        """Copy of the full cell array (for golden-state comparison)."""
        return list(self._cells)

    def copy(self):
        """Independent deep copy with the same contents and strictness."""
        clone = MainMemory(self.size, strict=self.strict)
        clone._cells = list(self._cells)
        clone.written = set(self.written)
        return clone

    def __len__(self):
        return self.size
