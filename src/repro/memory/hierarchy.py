"""The Table-1 memory hierarchy: split L1s over a unified L2.

Baseline geometry (Section 5.1.2):

* L1 I-cache: 64 KB, 2-way set associative
* L1 D-cache: 32 KB, 2-way set associative, 2 read/write ports
* Unified L2: 512 KB, 4-way set associative

Ports are arbitrated by the pipeline (a per-cycle counter); this module
provides latencies and statistics.  Instructions are 8 bytes (PISA-style)
and data words are 8 bytes, so word/instruction index ``i`` lives at byte
address ``i << 3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import Cache, CacheParams, MemoryTiming

WORD_SHIFT = 3  # 8-byte instructions and data words


@dataclass(frozen=True)
class HierarchyParams:
    """Parameters for the full cache hierarchy."""

    il1: CacheParams = field(default_factory=lambda: CacheParams(
        "il1", size_bytes=64 * 1024, assoc=2, block_bytes=64,
        hit_latency=1))
    dl1: CacheParams = field(default_factory=lambda: CacheParams(
        "dl1", size_bytes=32 * 1024, assoc=2, block_bytes=32,
        hit_latency=1))
    l2: CacheParams = field(default_factory=lambda: CacheParams(
        "l2", size_bytes=512 * 1024, assoc=4, block_bytes=64,
        hit_latency=6))
    memory_latency: int = 24


class MemoryHierarchy:
    """Split L1 instruction/data caches over a shared unified L2."""

    def __init__(self, params=None):
        self.params = params or HierarchyParams()
        self.memory_timing = MemoryTiming(self.params.memory_latency)
        self.l2 = Cache(self.params.l2, self.memory_timing)
        self.il1 = Cache(self.params.il1, self.l2)
        self.dl1 = Cache(self.params.dl1, self.l2)

    def fetch_latency(self, pc):
        """Latency of fetching the instruction at index ``pc``."""
        return self.il1.access((pc & ((1 << 48) - 1)) << WORD_SHIFT)

    def instruction_line(self, pc):
        """Block address of the I-cache line holding instruction ``pc``."""
        return self.il1.block_address((pc & ((1 << 48) - 1)) << WORD_SHIFT)

    def load_latency(self, word_address):
        """Latency of a data load from ``word_address``."""
        return self.dl1.access((word_address & ((1 << 48) - 1))
                               << WORD_SHIFT)

    def store_access(self, word_address):
        """Perform the timing side of a committed store."""
        return self.dl1.access((word_address & ((1 << 48) - 1))
                               << WORD_SHIFT, write=True)

    def reset_stats(self):
        for cache in (self.il1, self.dl1, self.l2):
            cache.reset_stats()
        self.memory_timing.reset_stats()

    def stats(self):
        """Per-level accesses/hits/misses as a nested dict."""
        return {
            cache.name: {
                "accesses": cache.accesses,
                "hits": cache.hits,
                "misses": cache.misses,
                "miss_rate": cache.miss_rate,
                "writebacks": cache.writebacks,
            }
            for cache in (self.il1, self.dl1, self.l2)
        }
