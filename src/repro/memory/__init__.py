"""Memory substrate: main memory, caches, and the Table-1 hierarchy."""

from .cache import Cache, CacheParams, MemoryTiming
from .hierarchy import WORD_SHIFT, HierarchyParams, MemoryHierarchy
from .main_memory import DEFAULT_MEMORY_WORDS, MainMemory

__all__ = [
    "Cache", "CacheParams", "MemoryTiming", "WORD_SHIFT",
    "HierarchyParams", "MemoryHierarchy", "DEFAULT_MEMORY_WORDS",
    "MainMemory",
]
