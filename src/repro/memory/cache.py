"""Set-associative cache timing model.

Write-back, write-allocate, true-LRU caches in the SimpleScalar mould.
The model is *timing only*: data lives in :class:`~repro.memory.
main_memory.MainMemory`; the caches compute access latencies and
hit/miss statistics.  Addresses are byte addresses (the pipeline
converts word addresses by shifting, 8 bytes per word/instruction).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


def _is_power_of_two(value):
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheParams:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    block_bytes: int
    hit_latency: int

    def __post_init__(self):
        if self.size_bytes % (self.assoc * self.block_bytes):
            raise ConfigError("%s: size not divisible by assoc*block"
                              % self.name)
        if not _is_power_of_two(self.block_bytes):
            raise ConfigError("%s: block size must be a power of two"
                              % self.name)
        if self.hit_latency < 1:
            raise ConfigError("%s: hit latency must be >= 1" % self.name)

    @property
    def num_sets(self):
        return self.size_bytes // (self.assoc * self.block_bytes)


class MemoryTiming:
    """Terminal level: flat main-memory access latency."""

    def __init__(self, latency=24):
        self.latency = latency
        self.accesses = 0

    def access(self, address, write=False):
        self.accesses += 1
        return self.latency

    def reset_stats(self):
        self.accesses = 0


#: Sentinel distinguishing "absent" from a stored dirty flag.
_MISS = object()


class Cache:
    """One level of set-associative, write-back, write-allocate cache.

    Sets are materialised lazily (a trial's footprint touches a small
    fraction of them) as plain dicts mapping tag -> dirty flag; dict
    insertion order doubles as the true-LRU recency order (a hit pops
    and re-inserts its tag).
    """

    def __init__(self, params, next_level):
        self.params = params
        self.next_level = next_level
        if not _is_power_of_two(params.num_sets):
            raise ConfigError("%s: number of sets must be a power of two"
                              % params.name)
        self._set_mask = params.num_sets - 1
        self._block_shift = params.block_bytes.bit_length() - 1
        self._sets = {}                  # set index -> {tag: dirty}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def name(self):
        return self.params.name

    def block_address(self, address):
        """Byte address of the block containing ``address``."""
        return address >> self._block_shift << self._block_shift

    def access(self, address, write=False):
        """Access one byte address; returns total latency in cycles.

        A hit costs ``hit_latency``; a miss additionally pays for the
        next-level access (recursively).  Dirty evictions count as
        writebacks but are charged to statistics only — the writeback
        happens off the critical path of the triggering access.
        """
        block = address >> self._block_shift
        sets = self._sets
        index = block & self._set_mask
        cache_set = sets.get(index)
        if cache_set is None:
            cache_set = sets[index] = {}
        dirty = cache_set.pop(block, _MISS)
        if dirty is not _MISS:
            self.hits += 1
            cache_set[block] = True if write else dirty
            return self.params.hit_latency
        self.misses += 1
        fill_latency = self.next_level.access(address, write=False)
        if len(cache_set) >= self.params.assoc:
            victim = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim)
            self.evictions += 1
            if victim_dirty:
                self.writebacks += 1
                self.next_level.access(victim << self._block_shift,
                                       write=True)
        cache_set[block] = bool(write)
        return self.params.hit_latency + fill_latency

    def probe(self, address):
        """Hit/miss check without any state change (for tests)."""
        block = address >> self._block_shift
        cache_set = self._sets.get(block & self._set_mask)
        return cache_set is not None and block in cache_set

    def flush(self):
        """Invalidate all blocks (writebacks counted, not timed)."""
        for cache_set in self._sets.values():
            for dirty in cache_set.values():
                if dirty:
                    self.writebacks += 1
            cache_set.clear()

    def reset_stats(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        total = self.accesses
        return self.misses / total if total else 0.0
