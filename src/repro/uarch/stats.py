"""Pipeline statistics collected by the timing simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PipelineStats:
    """Counters accumulated over one simulation run.

    ``instructions`` counts *architectural* (logical) instructions, i.e.
    one per redundantly executed group, matching how the paper reports
    IPC for redundant machines.
    """

    cycles: int = 0
    instructions: int = 0            # committed logical instructions
    entries_committed: int = 0       # committed ROB entries (x R)
    fetched: int = 0
    dispatched_groups: int = 0
    dispatched_entries: int = 0
    issued: int = 0
    loads_executed: int = 0
    stores_committed: int = 0
    store_forwards: int = 0
    # Control flow.
    branches_committed: int = 0
    branch_mispredicts: int = 0
    jumps_committed: int = 0
    indirect_mispredicts: int = 0
    # Fault tolerance.
    faults_injected: int = 0
    faults_detected: int = 0
    rewinds: int = 0
    majority_commits: int = 0
    pc_continuity_violations: int = 0
    silent_commits: int = 0          # faulty values committed (R=1 only)
    crashed: bool = False            # committed control flow left the
                                     # program (unprotected mode only)
    # Recovery-cost bookkeeping: cycles from detection to the next commit.
    recovery_cycles: int = 0
    # Structure occupancy integrals (averages = integral / cycles).
    rob_occupancy_sum: int = 0
    ifq_occupancy_sum: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def ipc(self):
        """Committed logical instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self):
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def branch_accuracy(self):
        if not self.branches_committed:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.branches_committed

    @property
    def avg_rob_occupancy(self):
        return self.rob_occupancy_sum / self.cycles if self.cycles else 0.0

    @property
    def avg_recovery_penalty(self):
        """Observed mean cycles from fault detection to pipeline restart."""
        if not self.rewinds:
            return 0.0
        return self.recovery_cycles / self.rewinds

    def as_dict(self):
        """All counters plus derived metrics, for JSON/CSV export."""
        from dataclasses import asdict
        data = asdict(self)
        data["ipc"] = self.ipc
        data["cpi"] = self.cpi
        data["branch_accuracy"] = self.branch_accuracy
        data["avg_rob_occupancy"] = self.avg_rob_occupancy
        data["avg_recovery_penalty"] = self.avg_recovery_penalty
        return data

    def summary(self):
        """Readable multi-line run summary."""
        lines = [
            "cycles               %12d" % self.cycles,
            "instructions         %12d" % self.instructions,
            "IPC                  %12.4f" % self.ipc,
            "branch accuracy      %12.4f" % self.branch_accuracy,
            "mispredicts          %12d" % self.branch_mispredicts,
            "loads / stores       %8d / %d" % (self.loads_executed,
                                               self.stores_committed),
            "store forwards       %12d" % self.store_forwards,
        ]
        if self.faults_injected or self.rewinds:
            lines += [
                "faults injected      %12d" % self.faults_injected,
                "faults detected      %12d" % self.faults_detected,
                "rewinds              %12d" % self.rewinds,
                "majority commits     %12d" % self.majority_commits,
                "avg recovery penalty %12.1f cycles"
                % self.avg_recovery_penalty,
            ]
        return "\n".join(lines)
