"""Register renaming schemes.

The paper's primary scheme keeps rename registers with ROB entries and a
*single map table* regardless of the degree of redundancy: the table
maps a logical register to copy 0's entry and copy *k* deduces its tag by
offset.  The alternative discussed in Section 3.2 — associatively
searching the ROB's "logical destination" column with the thread-
alignment condition added to the match criteria — is implemented as
:class:`AssociativeRenamer` and tested for equivalence.
"""

from __future__ import annotations

from ..isa.registers import NUM_LOGICAL_REGS, ZERO


class MapTableRenamer:
    """Map table: logical register -> youngest producing group.

    The table contents are assumed ECC protected (Section 3.2: "The
    contents of the sole rename table must be protected by ECC").
    """

    name = "map"

    def __init__(self):
        self._table = [None] * NUM_LOGICAL_REGS

    def lookup(self, areg):
        """Youngest in-flight producer group of ``areg`` (or None)."""
        if areg == ZERO:
            return None
        return self._table[areg]

    def set_dest(self, areg, group):
        """Record ``group`` as the current producer of ``areg``."""
        if areg != ZERO:
            self._table[areg] = group

    def on_commit(self, areg, group):
        """Drop the mapping if the committing group still owns it."""
        if areg != ZERO and self._table[areg] is group:
            self._table[areg] = None

    def rebuild(self, live_groups):
        """Reconstruct the table from surviving groups (after a squash)."""
        self._table = [None] * NUM_LOGICAL_REGS
        for group in live_groups:
            inst = group.inst
            if inst.info.writes_reg:
                self._table[inst.rd] = group

    def clear(self):
        self._table = [None] * NUM_LOGICAL_REGS


class AssociativeRenamer:
    """Renaming by associative search of in-flight groups.

    Models renaming "by associatively searching the 'logical destination'
    column of ROB"; the search walks program order youngest-first, which
    is exactly what the hardware's priority match would produce.
    """

    name = "associative"

    def __init__(self, groups):
        # Shared, live program-order deque of in-flight groups (owned by
        # the processor); the renamer only ever reads it.
        self._groups = groups

    def lookup(self, areg):
        if areg == ZERO:
            return None
        for group in reversed(self._groups):
            inst = group.inst
            if inst.info.writes_reg and inst.rd == areg:
                return group
        return None

    def set_dest(self, areg, group):
        """No table to maintain: the ROB itself is the rename store."""

    def on_commit(self, areg, group):
        """Nothing to clean up; committed groups leave the search window."""

    def rebuild(self, live_groups):
        """Nothing to rebuild; the search window shrank by itself."""

    def clear(self):
        """Nothing to clear."""


def make_renamer(scheme, groups):
    """Construct the renamer named by ``scheme`` ("map"/"associative")."""
    if scheme == "map":
        return MapTableRenamer()
    if scheme == "associative":
        return AssociativeRenamer(groups)
    raise ValueError("unknown rename scheme %r" % scheme)
