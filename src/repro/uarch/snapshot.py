"""Whole-machine snapshot/restore for checkpointed fast-forward.

A :class:`ProcessorSnapshot` captures every piece of mutable state a
:class:`~repro.uarch.processor.Processor` owns — architectural state,
cache/predictor/BTB/RAS contents, the in-flight ROB group graph, LSQ,
ready queues, scheduled writeback events, statistics and sequence
counters — deeply enough that restoring it into a freshly constructed
processor and continuing the run is cycle-for-cycle, stat-for-stat
identical to never having stopped (the checkpoint-equivalence suite
pins this).

The group/entry graph is cloned with an explicit two-pass worklist
(collect every reachable ``Group``/``RobEntry``, then allocate shells
and fill fields through an identity memo) instead of ``copy.deepcopy``:
the graph is cyclic (entries point at their group, producers at their
dependents), dependency chains can exceed the recursion limit, and
deepcopy's per-object dispatch is an order of magnitude slower on the
64Ki-word memory image.

Shared immutable objects are *not* copied: decoded-instruction
metadata, :class:`~repro.uarch.fetch.FetchRecord` instances (never
mutated after fetch) and RAS snapshot tuples are reference-shared
between the live machine and the snapshot.  A snapshot therefore only
restores correctly in the same process, onto a processor built from
the *same* :class:`~repro.program.image.Program` object — exactly the
per-worker cache regime of :mod:`repro.campaign.checkpoint`.
"""

from __future__ import annotations

from collections import deque

from ..core.rob import Group, RobEntry

_GROUP_SCALARS = (
    "gseq", "pc", "inst", "meta", "pred_npc", "pred_taken", "ras_snap",
    "resolved", "resolved_npc", "done_count", "load_value",
    "value_ready", "value_cycle", "mem_issued", "fetch_cycle",
    "dispatch_cycle", "squashed", "is_load", "is_store", "is_mem",
    "is_control", "block_mode")

_ENTRY_SCALARS = (
    "seq", "vidx", "copy", "state", "pending", "value", "addr",
    "store_val", "next_pc", "issue_cycle", "done_cycle", "fu_unit",
    "agen_done", "fault_kind", "fault_bit", "fault_applied", "op_fault",
    "site", "squashed")

_STATS_FIELDS = (
    "cycles", "instructions", "entries_committed", "fetched",
    "dispatched_groups", "dispatched_entries", "issued",
    "loads_executed", "stores_committed", "store_forwards",
    "branches_committed", "branch_mispredicts", "jumps_committed",
    "indirect_mispredicts", "faults_injected", "faults_detected",
    "rewinds", "majority_commits", "pc_continuity_violations",
    "silent_commits", "crashed", "recovery_cycles", "rob_occupancy_sum",
    "ifq_occupancy_sum")


def _collect_groups(processor):
    """Every Group reachable from the machine's mutable structures.

    Live groups sit in the ROB deque, but scheduled events and
    dependents lists can still reference groups squashed out of it, so
    the closure is computed with a worklist over group references.
    """
    seen = set()
    ordered = []
    stack = []

    def push(group):
        marker = id(group)     # repro-lint: disable=determinism
        if marker not in seen:
            seen.add(marker)
            ordered.append(group)
            stack.append(group)

    for group in processor.groups:
        push(group)
    for group in processor.lsq:
        push(group)
    for group in processor.pending_loads:
        push(group)
    for queue in processor.ready_queues:
        for _seq, entry in queue:
            push(entry.group)
    for bucket in processor.events.values():
        for kind, payload in bucket:
            if kind == 0:                 # _EVENT_EXEC: payload = entry
                push(payload.group)
            else:                         # load value: (group, value, miss)
                push(payload[0])
    while stack:
        group = stack.pop()
        if group.block_on is not None:
            push(group.block_on)
        for entry in group.copies:
            dependents = entry.dependents
            if dependents:
                for dependent, _slot in dependents:
                    push(dependent.group)
    return ordered


def _clone_graph(groups):
    """Clone a closed set of groups; returns (clones, identity memo).

    The memo maps ``id()`` of every source Group/RobEntry to its clone
    so cross-references (copies, dependents, LSQ membership, event
    payloads) land on the cloned objects.  The memo is only ever used
    for lookup, never iterated, so identity keys cannot leak ordering.
    """
    memo = {}
    clones = []
    for group in groups:
        clone = Group.__new__(Group)
        memo[id(group)] = clone           # repro-lint: disable=determinism
        clones.append(clone)
        for entry in group.copies:
            memo[id(entry)] = RobEntry.__new__(RobEntry)  # repro-lint: disable=determinism
    for group, clone in zip(groups, clones):
        for name in _GROUP_SCALARS:
            setattr(clone, name, getattr(group, name))
        block_on = group.block_on
        if block_on is None:
            clone.block_on = None
        else:
            clone.block_on = memo[id(block_on)]  # repro-lint: disable=determinism
        copies = []
        for entry in group.copies:
            twin = memo[id(entry)]        # repro-lint: disable=determinism
            for name in _ENTRY_SCALARS:
                setattr(twin, name, getattr(entry, name))
            twin.group = clone
            twin.src_vals = list(entry.src_vals)
            tags = entry.src_tags
            # NO_TAGS is a shared immutable tuple; private lists copy.
            twin.src_tags = list(tags) if type(tags) is list else tags
            dependents = entry.dependents
            if dependents:
                twin.dependents = [
                    (memo[id(dependent)], slot)  # repro-lint: disable=determinism
                    for dependent, slot in dependents]
            else:
                twin.dependents = dependents
            copies.append(twin)
        clone.copies = copies
    return memo


def _map_events(events, memo):
    mapped = {}
    for cycle, bucket in events.items():
        out = []
        for kind, payload in bucket:
            if kind == 0:
                out.append((kind, memo[id(payload)]))  # repro-lint: disable=determinism
            else:
                group, value, was_miss = payload
                out.append((kind, (memo[id(group)], value, was_miss)))  # repro-lint: disable=determinism
        mapped[cycle] = out
    return mapped


class _MachineState:
    """One deep-cloned image of a processor's mutable state."""

    __slots__ = (
        "groups", "lsq", "pending_loads", "ready_queues", "events",
        "ifq", "regs", "arch_pc", "arch_halted", "mem_cells",
        "mem_written", "mem_reads", "mem_writes", "cache_state",
        "memory_accesses", "fetch_pc", "fetch_stall_until",
        "fetch_halted", "bimodal_table", "bimodal_lookups",
        "twolevel_histories", "twolevel_counters", "twolevel_lookups",
        "meta_table", "combined_lookups", "btb_sets", "btb_lookups",
        "btb_hits", "ras_stack", "ras_top", "ras_occupancy",
        "ras_pushes", "ras_pops", "fu_state", "stats", "stats_extras",
        "gseq", "seq", "checker_checks", "checker_mismatches",
        "recovery_rewinds", "recovery_majority", "recovery_open_cycle",
        "recovery_cycles", "committed_next_pc", "outstanding_misses",
        "cycle", "halted", "rob_entries", "ports_used",
        "last_commit_cycle")


def _capture_state(processor):
    """Deep-clone ``processor``'s mutable state into a _MachineState."""
    groups = _collect_groups(processor)
    memo = _clone_graph(groups)
    state = _MachineState()
    state.groups = [memo[id(group)] for group in processor.groups]  # repro-lint: disable=determinism
    state.lsq = [memo[id(group)] for group in processor.lsq]  # repro-lint: disable=determinism
    state.pending_loads = [memo[id(group)]  # repro-lint: disable=determinism
                           for group in processor.pending_loads]
    state.ready_queues = [
        [(seq, memo[id(entry)]) for seq, entry in queue]  # repro-lint: disable=determinism
        for queue in processor.ready_queues]
    state.events = _map_events(processor.events, memo)
    state.ifq = list(processor.ifq)       # FetchRecords are immutable

    arch = processor.arch
    state.regs = list(arch.regs)
    state.arch_pc = arch.pc
    state.arch_halted = arch.halted
    memory = arch.memory
    state.mem_cells = list(memory._cells)
    state.mem_written = set(memory.written)
    state.mem_reads = memory.reads
    state.mem_writes = memory.writes

    hierarchy = processor.hierarchy
    state.cache_state = [
        ({index: dict(ways) for index, ways in cache._sets.items()},
         cache.hits, cache.misses, cache.evictions, cache.writebacks)
        for cache in (hierarchy.il1, hierarchy.dl1, hierarchy.l2)]
    state.memory_accesses = hierarchy.memory_timing.accesses

    fetch = processor.fetch_unit
    state.fetch_pc = fetch.pc
    state.fetch_stall_until = fetch.stall_until
    state.fetch_halted = fetch.halted
    predictor = fetch.predictor
    bimodal = predictor.bimodal
    twolevel = predictor.twolevel
    state.bimodal_table = list(bimodal._table)
    state.bimodal_lookups = bimodal.lookups
    state.twolevel_histories = list(twolevel._histories)
    state.twolevel_counters = list(twolevel._counters)
    state.twolevel_lookups = twolevel.lookups
    state.meta_table = list(predictor._meta)
    state.combined_lookups = predictor.lookups
    btb = fetch.btb
    state.btb_sets = {index: dict(ways)
                      for index, ways in btb._sets.items()}
    state.btb_lookups = btb.lookups
    state.btb_hits = btb.hits
    ras = fetch.ras
    state.ras_stack = list(ras._stack)
    state.ras_top = ras._top
    state.ras_occupancy = ras._occupancy
    state.ras_pushes = ras.pushes
    state.ras_pops = ras.pops

    state.fu_state = [
        (list(pool._busy_until), pool.issued_ops, pool.busy_cycles)
        for pool in processor.fus.pools.values()]

    stats = processor.stats
    state.stats = [getattr(stats, name) for name in _STATS_FIELDS]
    state.stats_extras = {
        key: dict(value) if isinstance(value, dict) else value
        for key, value in stats.extras.items()}

    replicator = processor.replicator
    state.gseq = replicator._gseq
    state.seq = replicator._seq
    checker = processor.checker
    state.checker_checks = checker.checks
    state.checker_mismatches = checker.mismatches
    recovery = processor.recovery
    state.recovery_rewinds = recovery.rewinds
    state.recovery_majority = recovery.majority_commits
    state.recovery_open_cycle = recovery._open_rewind_cycle
    state.recovery_cycles = recovery.recovery_cycles

    state.committed_next_pc = processor.committed_next_pc
    state.outstanding_misses = processor._outstanding_misses
    state.cycle = processor.cycle
    state.halted = processor.halted
    state.rob_entries = processor.rob_entries
    state.ports_used = processor._ports_used
    state.last_commit_cycle = processor._last_commit_cycle
    return state


class _StateView:
    """Duck-typed processor facade so a _MachineState can be re-cloned.

    ``_capture_state`` reads a processor through a fixed attribute
    surface; this view exposes a stored state through the same surface,
    letting every restore stamp out a fresh mutable copy of the frozen
    snapshot with the exact same cloning code.
    """

    class _Wrap:
        def __init__(self, **attrs):
            self.__dict__.update(attrs)

    def __init__(self, state):
        wrap = self._Wrap
        self.groups = state.groups
        self.lsq = state.lsq
        self.pending_loads = state.pending_loads
        self.ready_queues = state.ready_queues
        self.events = state.events
        self.ifq = state.ifq
        memory = wrap(_cells=state.mem_cells, written=state.mem_written,
                      reads=state.mem_reads, writes=state.mem_writes)
        self.arch = wrap(regs=state.regs, pc=state.arch_pc,
                         halted=state.arch_halted, memory=memory)
        caches = [wrap(_sets=sets, hits=hits, misses=misses,
                       evictions=evictions, writebacks=writebacks)
                  for sets, hits, misses, evictions, writebacks
                  in state.cache_state]
        self.hierarchy = wrap(
            il1=caches[0], dl1=caches[1], l2=caches[2],
            memory_timing=wrap(accesses=state.memory_accesses))
        predictor = wrap(
            bimodal=wrap(_table=state.bimodal_table,
                         lookups=state.bimodal_lookups),
            twolevel=wrap(_histories=state.twolevel_histories,
                          _counters=state.twolevel_counters,
                          lookups=state.twolevel_lookups),
            _meta=state.meta_table, lookups=state.combined_lookups)
        self.fetch_unit = wrap(
            pc=state.fetch_pc, stall_until=state.fetch_stall_until,
            halted=state.fetch_halted, predictor=predictor,
            btb=wrap(_sets=state.btb_sets, lookups=state.btb_lookups,
                     hits=state.btb_hits),
            ras=wrap(_stack=state.ras_stack, _top=state.ras_top,
                     _occupancy=state.ras_occupancy,
                     pushes=state.ras_pushes, pops=state.ras_pops))
        self.fus = wrap(pools={
            index: wrap(_busy_until=busy, issued_ops=issued,
                        busy_cycles=busy_cycles)
            for index, (busy, issued, busy_cycles)
            in enumerate(state.fu_state)})
        stats_view = wrap(extras=state.stats_extras)
        for name, value in zip(_STATS_FIELDS, state.stats):
            setattr(stats_view, name, value)
        self.stats = stats_view
        self.replicator = wrap(_gseq=state.gseq, _seq=state.seq)
        self.checker = wrap(checks=state.checker_checks,
                            mismatches=state.checker_mismatches)
        self.recovery = wrap(rewinds=state.recovery_rewinds,
                             majority_commits=state.recovery_majority,
                             _open_rewind_cycle=state.recovery_open_cycle,
                             recovery_cycles=state.recovery_cycles)
        self.committed_next_pc = state.committed_next_pc
        self._outstanding_misses = state.outstanding_misses
        self.cycle = state.cycle
        self.halted = state.halted
        self.rob_entries = state.rob_entries
        self._ports_used = state.ports_used
        self._last_commit_cycle = state.last_commit_cycle


class ProcessorSnapshot:
    """A frozen image of one processor, restorable many times over."""

    __slots__ = ("program", "instructions", "dispatched_groups", "cycle",
                 "_state")

    def __init__(self, processor):
        self.program = processor.program
        self._state = _capture_state(processor)
        self.instructions = processor.stats.instructions
        self.dispatched_groups = processor.stats.dispatched_groups
        self.cycle = processor.cycle

    def restore_into(self, processor):
        """Overwrite ``processor``'s mutable state with this snapshot.

        ``processor`` must be freshly constructed from the same program
        object and an equivalent machine configuration; its injector or
        policy (absent from the fault-free snapshot) is kept as built.
        Every call re-clones the frozen state, so one snapshot serves
        any number of restores.
        """
        if processor.program is not self.program:
            raise ValueError(
                "snapshot restore requires the identical Program object "
                "(decoded metadata is reference-shared)")
        state = _capture_state(_StateView(self._state))

        # The in-flight window: the groups deque is mutated in place
        # because AssociativeRenamer aliases the same deque object.
        processor.groups.clear()
        processor.groups.extend(state.groups)
        processor.renamer.rebuild(processor.groups)
        processor.lsq._queue = deque(state.lsq)
        processor.pending_loads = state.pending_loads
        processor.ready_queues = state.ready_queues
        processor.events = state.events
        processor.ifq = deque(state.ifq)

        arch = processor.arch
        arch.regs = state.regs
        arch.pc = state.arch_pc
        arch.halted = state.arch_halted
        memory = arch.memory
        memory._cells = state.mem_cells
        memory.written = state.mem_written
        memory.reads = state.mem_reads
        memory.writes = state.mem_writes

        hierarchy = processor.hierarchy
        for cache, (sets, hits, misses, evictions, writebacks) in zip(
                (hierarchy.il1, hierarchy.dl1, hierarchy.l2),
                state.cache_state):
            cache._sets = sets
            cache.hits = hits
            cache.misses = misses
            cache.evictions = evictions
            cache.writebacks = writebacks
        hierarchy.memory_timing.accesses = state.memory_accesses

        fetch = processor.fetch_unit
        fetch.pc = state.fetch_pc
        fetch.stall_until = state.fetch_stall_until
        fetch.halted = state.fetch_halted
        predictor = fetch.predictor
        predictor.bimodal._table = state.bimodal_table
        predictor.bimodal.lookups = state.bimodal_lookups
        predictor.twolevel._histories = state.twolevel_histories
        predictor.twolevel._counters = state.twolevel_counters
        predictor.twolevel.lookups = state.twolevel_lookups
        predictor._meta = state.meta_table
        predictor.lookups = state.combined_lookups
        btb = fetch.btb
        btb._sets = state.btb_sets
        btb.lookups = state.btb_lookups
        btb.hits = state.btb_hits
        ras = fetch.ras
        ras._stack = state.ras_stack
        ras._top = state.ras_top
        ras._occupancy = state.ras_occupancy
        ras.pushes = state.ras_pushes
        ras.pops = state.ras_pops

        for pool, (busy, issued, busy_cycles) in zip(
                processor.fus.pools.values(), state.fu_state):
            pool._busy_until = busy
            pool.issued_ops = issued
            pool.busy_cycles = busy_cycles

        stats = processor.stats
        for name, value in zip(_STATS_FIELDS, state.stats):
            setattr(stats, name, value)
        stats.extras = state.stats_extras

        processor.replicator._gseq = state.gseq
        processor.replicator._seq = state.seq
        processor.checker.checks = state.checker_checks
        processor.checker.mismatches = state.checker_mismatches
        recovery = processor.recovery
        recovery.rewinds = state.recovery_rewinds
        recovery.majority_commits = state.recovery_majority
        recovery._open_rewind_cycle = state.recovery_open_cycle
        recovery.recovery_cycles = state.recovery_cycles

        processor.committed_next_pc = state.committed_next_pc
        processor._outstanding_misses = state.outstanding_misses
        processor.cycle = state.cycle
        processor.halted = state.halted
        processor.rob_entries = state.rob_entries
        processor._ports_used = state.ports_used
        processor._last_commit_cycle = state.last_commit_cycle
        return processor
