"""The out-of-order superscalar substrate (SimpleScalar-style engine)."""

from .config import (UNLIMITED, BranchPredictorParams, MachineConfig)
from .fetch import FetchRecord, FetchUnit, build_predictor
from .funits import FuBank, FuPool
from .lsq import LoadStoreQueue
from .processor import Processor, simulate
from .reference import ReferenceProcessor, simulate_reference
from .rename import AssociativeRenamer, MapTableRenamer, make_renamer
from .rob import DONE, ISSUED, READY, WAITING, Group, RobEntry
from .stats import PipelineStats
from .trace import PipelineTracer, RewindRecord, TraceRecord

__all__ = [
    "UNLIMITED", "BranchPredictorParams", "MachineConfig", "FetchRecord",
    "FetchUnit", "build_predictor", "FuBank", "FuPool", "LoadStoreQueue",
    "Processor", "simulate", "ReferenceProcessor", "simulate_reference",
    "AssociativeRenamer", "MapTableRenamer",
    "make_renamer", "DONE", "ISSUED", "READY", "WAITING", "Group",
    "RobEntry", "PipelineStats", "PipelineTracer", "RewindRecord",
    "TraceRecord",
]
