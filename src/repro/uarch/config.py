"""Machine configuration for the superscalar out-of-order engine.

Defaults reproduce Table 1 of the paper (the SS-1 baseline):

* 8-wide fetch/decode/dispatch/issue/commit
* 128-entry RUU (modelled as a ROB with rename registers in the
  entries) and 64-entry LSQ
* combined branch predictor (2K bimodal + 2-level with 10-bit history,
  1024-entry L2, 1-bit xor), one prediction per cycle
* 64 KB/2-way L1I, 32 KB/2-way L1D with 2 ports, 512 KB/4-way L2
* 4 integer ALUs, 2 integer multipliers, 2 FP adders, 1 FP mult/div;
  all operations pipelined except division
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import ConfigError
from ..isa.opcodes import FuClass, Op
from ..memory.hierarchy import HierarchyParams

#: Stand-in for "infinite" resources in sensitivity studies.
UNLIMITED = 1 << 20


@dataclass(frozen=True)
class BranchPredictorParams:
    """Combined-predictor and BTB/RAS geometry (Table 1)."""

    bimodal_size: int = 2048
    l1_size: int = 2
    l2_size: int = 1024
    history_bits: int = 10
    use_xor: bool = True
    meta_size: int = 1024
    btb_sets: int = 512
    btb_assoc: int = 4
    ras_depth: int = 8


@dataclass(frozen=True)
class MachineConfig:
    """All parameters of one simulated machine."""

    name: str = "ss-1"
    # Pipeline widths (instructions per cycle; redundant copies each
    # consume one unit of dispatch/issue/commit bandwidth).
    fetch_width: int = 8
    dispatch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    ifq_size: int = 16
    # Window sizes.
    rob_size: int = 128
    lsq_size: int = 64
    # Functional units.
    int_alu: int = 4
    int_mult: int = 2
    fp_add: int = 2
    fp_mult: int = 1
    mem_ports: int = 2
    #: Outstanding-miss (MSHR) limit for loads; None = unbounded, the
    #: paper's implicit assumption and this package's default.
    mshr_count: Optional[int] = None
    # Operation latencies (cycles).
    lat_int_alu: int = 1
    lat_int_mult: int = 3
    lat_int_div: int = 20
    lat_fp_add: int = 2
    lat_fp_mult: int = 4
    lat_fp_div: int = 13
    lat_fp_sqrt: int = 26
    lat_agen: int = 1
    # Extra front-end cycles after a branch-misprediction redirect
    # (decode/rename refill beyond the naturally modelled refetch).
    redirect_penalty: int = 2
    # Front end.
    branch: BranchPredictorParams = field(
        default_factory=BranchPredictorParams)
    # Memory hierarchy.
    hierarchy: HierarchyParams = field(default_factory=HierarchyParams)
    mem_size_words: int = 1 << 16
    # Variant flags (Section 3.2 design alternatives).
    #: Rename via associative search of the ROB's logical-destination
    #: column instead of a map table ("map" or "associative").
    rename_scheme: str = "map"
    #: Model committed+rename registers in one physical pool: costs R
    #: extra register-file reads per retiring instruction, charged
    #: against commit bandwidth.
    shared_physical_regfile: bool = False
    #: Section 3.5: steer redundant copies of the same instruction onto
    #: different physical functional units whenever possible, exposing
    #: slow-transient (multi-cycle) faults to the cross-check.
    co_schedule_copies: bool = True
    #: Watchdog: abort if no instruction commits for this many cycles.
    deadlock_cycles: int = 50_000
    #: Host-simulation knob (not a machine parameter): let the run loop
    #: jump over provably idle cycles.  Produces byte-identical
    #: PipelineStats to stepped execution; turn off to force the
    #: simulator to step every cycle (A/B benchmarking, debugging).
    cycle_skipping: bool = True

    def __post_init__(self):
        for attr in ("fetch_width", "dispatch_width", "issue_width",
                     "commit_width", "ifq_size", "rob_size", "lsq_size",
                     "mem_ports", "int_alu"):
            if getattr(self, attr) < 1:
                raise ConfigError("%s must be >= 1" % attr)
        for attr in ("int_mult", "fp_add", "fp_mult"):
            if getattr(self, attr) < 0:
                raise ConfigError("%s must be >= 0" % attr)
        if self.rename_scheme not in ("map", "associative"):
            raise ConfigError("unknown rename scheme %r"
                              % self.rename_scheme)
        # Hot-loop lookup tables, resolved once per config (the
        # dataclass is frozen, so they can never go stale).  Stored via
        # object.__setattr__ to get past the immutability guard.
        object.__setattr__(self, "_op_latency", {
            op: fn(self) for op, fn in _LATENCY_TABLE.items()})
        object.__setattr__(self, "_fu_counts", {
            FuClass.INT_ALU: self.int_alu,
            FuClass.INT_MULT: self.int_mult,
            FuClass.FP_ADD: self.fp_add,
            FuClass.FP_MULT: self.fp_mult,
            FuClass.MEM_PORT: self.mem_ports,
        })

    def fu_count(self, fu_class):
        """Number of units of one functional-unit class."""
        return self._fu_counts[fu_class]

    def op_latency(self, op):
        """Execution latency of ``op`` in cycles."""
        return self._op_latency[op]

    def derive(self, **changes):
        """A modified copy (convenience wrapper over dataclasses.replace)."""
        return replace(self, **changes)


def _latency_table():
    table = {}
    int_mult_ops = {Op.MUL, Op.MULH}
    int_div_ops = {Op.DIV, Op.REM}
    fp_add_ops = {Op.FADD, Op.FSUB, Op.FNEG, Op.FABS, Op.FMOV, Op.CVTIF,
                  Op.CVTFI, Op.FCMPEQ, Op.FCMPLT, Op.FCMPLE}
    for op in Op:
        if op in int_mult_ops:
            table[op] = lambda c: c.lat_int_mult
        elif op in int_div_ops:
            table[op] = lambda c: c.lat_int_div
        elif op in fp_add_ops:
            table[op] = lambda c: c.lat_fp_add
        elif op == Op.FMUL:
            table[op] = lambda c: c.lat_fp_mult
        elif op == Op.FDIV:
            table[op] = lambda c: c.lat_fp_div
        elif op == Op.FSQRT:
            table[op] = lambda c: c.lat_fp_sqrt
        elif op in (Op.LW, Op.SW, Op.FLW, Op.FSW):
            table[op] = lambda c: c.lat_agen
        else:
            table[op] = lambda c: c.lat_int_alu
    return table


_LATENCY_TABLE = _latency_table()
