"""The cycle-level out-of-order superscalar engine (hot path).

One engine serves every machine in the paper: with ``FTConfig(redundancy
=1)`` it is the stock SS-1 superscalar; with R >= 2 the dual-use
extensions of :mod:`repro.core` (replication, commit cross-checking,
rewind/majority recovery, fault injection) activate on the same
datapath.

Stage ordering within one simulated cycle (a conventional conservative
model — results written back in cycle T are visible to commit in T+1):

1. **commit** — retire whole redundant groups in program order, running
   the commit-stage cross-check and PC-continuity check;
2. **writeback** — completions scheduled for this cycle: finalize
   results, apply planned transient faults, resolve control flow, wake
   dependents, deliver the shared load value to all copies;
3. **issue** — send ready entries to functional units (age priority),
   and progress pending loads through disambiguation/forwarding/cache
   access within the D-cache port budget;
4. **dispatch** — replicate fetched instructions into R-aligned ROB
   groups, renaming copy 0 through the map table and deriving the other
   copies' tags;
5. **fetch** — predict and fetch up to the fetch width from the I-cache.

This is the *optimized* implementation: campaign throughput is bounded
by ``step()``, so the hot structures are engineered for the Python
interpreter while staying cycle-for-cycle identical to the frozen
:class:`~repro.uarch.reference.ReferenceProcessor` (the equivalence
suite enforces byte-identical :class:`~repro.uarch.stats.
PipelineStats`).  The techniques:

* **per-class ready queues** — one age-ordered heap per functional-unit
  class instead of one global heap, so a saturated class stops costing
  pop/push churn for every one of its ready entries every cycle;
* **decoded-program metadata** — every group carries its
  :class:`~repro.program.cache.DecodedInst` (flags, latency, issue
  queue) resolved once per static instruction, not per dynamic access;
* **insertion-ordered pending loads** — the load list is kept in
  program order by construction (binary insertion) instead of being
  re-sorted every cycle;
* **event-driven cycle skipping** — when the machine is provably idle
  (nothing ready, no pending loads, head of ROB incomplete, dispatch
  structurally blocked, fetch stalled) the run loop jumps straight to
  the next interesting cycle, integrating occupancy sums over the
  skipped span; gated by ``MachineConfig.cycle_skipping``.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush

from ..core.config import FTConfig, UNPROTECTED
from ..core.detection import CommitChecker, _field_equal
from ..core.faults import FaultInjector, check_mix_applicability
from ..core.recovery import ACTION_REWIND, RecoveryController
from ..core.replication import Replicator
from ..faults.policy import InjectionPolicy, RatePolicy
from ..faults.sites import count_strike
from ..errors import ConfigError, SimulationError
from ..functional.numeric import (as_float, as_int, flip_float_bit,
                                  flip_int_bit, u64, values_equal)
from ..functional.simulator import FunctionalSimulator
from ..functional.state import ArchState
from ..isa.opcodes import FuClass, Kind, Op
from ..memory.hierarchy import MemoryHierarchy
from ..memory.main_memory import MainMemory
from ..program.cache import decode_program
from .config import MachineConfig
from .fetch import FetchUnit
from .funits import FuBank
from .lsq import LoadStoreQueue
from .rename import make_renamer
from .rob import DONE, ISSUED, READY, WAITING
from .stats import PipelineStats

_EVENT_EXEC = 0
_EVENT_LOAD_VALUE = 1

# Local bindings of the hot Kind members (module-global lookup is
# cheaper than attribute access on the enum class).
_K_ALU = Kind.ALU
_K_LOAD = Kind.LOAD
_K_STORE = Kind.STORE
_K_BRANCH = Kind.BRANCH
_K_JUMP = Kind.JUMP

#: Issue-queue indices (``int(FuClass)``) the scheduler arbitrates over.
_ISSUE_CLASSES = (int(FuClass.INT_ALU), int(FuClass.INT_MULT),
                  int(FuClass.FP_ADD), int(FuClass.FP_MULT))


def _entries_agree(first, other):
    """Commit cross-check of two redundant copies (all fields).

    Identity pre-checks carry the common case: unused fields are the
    same ``None`` and a load's value is the group's single shared
    object; the full values-equal rules only run for genuinely
    distinct objects.
    """
    a = first.value
    b = other.value
    if a is not b and not _field_equal(a, b):
        return False
    a = first.next_pc
    b = other.next_pc
    if a is not b and not _field_equal(a, b):
        return False
    a = first.addr
    b = other.addr
    if a is not b and not _field_equal(a, b):
        return False
    a = first.store_val
    b = other.store_val
    return a is b or _field_equal(a, b)


class Processor:
    """A simulated out-of-order superscalar processor.

    Fault injection is configured either through the legacy
    ``fault_config`` (a :class:`~repro.core.faults.FaultConfig`, run as
    a :class:`~repro.faults.policy.RatePolicy` with an unchanged RNG
    stream) or through an explicit ``policy`` (any
    :class:`~repro.faults.policy.InjectionPolicy`) — never both.
    """

    def __init__(self, program, config=None, ft=None, fault_config=None,
                 policy=None):
        self.program = program
        self.config = config or MachineConfig()
        self.ft = ft or UNPROTECTED
        self.redundancy = self.ft.redundancy
        if self.config.rob_size % self.redundancy:
            raise ConfigError(
                "ROB size (%d) must be a multiple of the redundancy "
                "degree (%d)" % (self.config.rob_size, self.redundancy))

        memory = MainMemory(self.config.mem_size_words, image=program.data)
        self.arch = ArchState(memory=memory, pc=program.entry)
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        self.fetch_unit = FetchUnit(program, self.config, self.hierarchy)
        self.fus = FuBank(self.config)
        self.decoded = decode_program(program, self.config)

        self.groups = deque()             # in-flight groups, program order
        self.renamer = make_renamer(self.config.rename_scheme, self.groups)
        if policy is not None and fault_config is not None:
            raise ConfigError(
                "pass either fault_config or an injection policy, "
                "not both")
        if policy is None and fault_config is not None \
                and fault_config.rate_per_million > 0:
            policy = RatePolicy(fault_config)
        self.injector = None
        site_policy = None
        self.policy = policy
        if policy is not None:
            if not isinstance(policy, InjectionPolicy):
                raise ConfigError(
                    "policy must be an InjectionPolicy, got %r"
                    % (policy,))
            policy.bind(self.redundancy)
            policy.reset()
            if isinstance(policy, RatePolicy):
                # The rate path keeps its inlined draws against the
                # wrapped FaultInjector: byte-identical RNG stream.
                if policy.config.rate_per_million > 0:
                    check_mix_applicability(policy.config.kind_weights,
                                            program)
                    self.injector = policy.injector
            else:
                site_policy = policy
        self.stats = PipelineStats()
        self.replicator = Replicator(self.redundancy, self.renamer,
                                     self.arch.read_reg, self.injector,
                                     stats=self.stats,
                                     site_policy=site_policy)
        self.checker = CommitChecker(self.ft)
        self.recovery = RecoveryController(self.ft)
        self.lsq = LoadStoreQueue(self.config.lsq_size)
        self.ifq = deque()
        #: Age-ordered (seq, entry) heaps indexed by DecodedInst.qidx;
        #: slot 0 is unused (FuClass.NONE never issues).
        self.ready_queues = [[], [], [], [], []]
        self.events = {}                  # cycle -> [(kind, payload)]
        self.pending_loads = []           # load groups, program order
        #: Functional-unit pools indexed like ready_queues.
        self._pools = [None] + [self.fus.pools[FuClass(index)]
                                for index in _ISSUE_CLASSES]

        self.committed_next_pc = program.entry  # the ECC-protected register
        self._outstanding_misses = 0
        self.cycle = 0
        self.halted = False
        self.rob_entries = 0
        self._ports_used = 0
        self._last_commit_cycle = 0
        self._lockstep = None
        self._tracer = None

    # -- public API -------------------------------------------------------

    def enable_lockstep_check(self):
        """Verify every commit against the in-order golden model.

        The strongest correctness oracle: the committed instruction
        stream (including across fault rewinds) must match in-order
        execution exactly.
        """
        self._lockstep = FunctionalSimulator(
            self.program, mem_size=self.config.mem_size_words)

    def attach_tracer(self, tracer):
        """Record per-instruction lifecycle events into ``tracer``."""
        self._tracer = tracer

    def run(self, max_instructions=None, max_cycles=None):
        """Simulate until HALT commits or a budget is exhausted."""
        instruction_target = None
        if max_instructions is not None:
            instruction_target = self.stats.instructions + max_instructions
        stats = self.stats
        step = self.step
        skip = self._skip_idle_cycles if self.config.cycle_skipping \
            else None
        while not self.halted:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            if (instruction_target is not None
                    and stats.instructions >= instruction_target):
                break
            if skip is not None:
                skip(max_cycles)
                if max_cycles is not None and self.cycle >= max_cycles:
                    break
            step()
        stats.cycles = self.cycle
        return stats

    def _skip_idle_cycles(self, max_cycles):
        """Jump over cycles where provably no pipeline state can change.

        Safe only when every stage is quiescent for the whole span:
        nothing ready to issue, no pending loads, the ROB head
        incomplete (commit blocked), dispatch structurally blocked (or
        the IFQ empty), and fetch stalled, halted or squeezed out by a
        full IFQ.  The wake-up cycle is the earliest of the next
        writeback event, the fetch stall release and the deadlock
        deadline; occupancy integrals are accumulated over the skipped
        span so :class:`PipelineStats` stay byte-identical to stepped
        execution.
        """
        queues = self.ready_queues
        if queues[1] or queues[2] or queues[3] or queues[4]:
            return
        if self.pending_loads:
            return
        groups = self.groups
        if groups:
            head = groups[0]
            if head.done_count >= len(head.copies):
                return                    # commit possible now
        config = self.config
        ifq = self.ifq
        if ifq:
            # Dispatch must stay blocked for the span: no ROB space for
            # one more group, or the head record needs a full LSQ.
            if (self.rob_entries + self.redundancy <= config.rob_size
                    and not (ifq[0].meta.is_mem and self.lsq.full)):
                return
        fetch_unit = self.fetch_unit
        cycle = self.cycle
        wake = None
        if not fetch_unit.halted and len(ifq) < config.ifq_size:
            stall_until = fetch_unit.stall_until
            if stall_until <= cycle + 1:
                return                    # fetch is (or may be) active
            wake = stall_until
        events = self.events
        if events:
            next_event = min(events)
            if wake is None or next_event < wake:
                wake = next_event
        deadline = self._last_commit_cycle + config.deadlock_cycles + 1
        if wake is None or deadline < wake:
            wake = deadline
        target = wake - 1                 # last provably idle cycle
        if max_cycles is not None and target > max_cycles:
            target = max_cycles
        skipped = target - cycle
        if skipped <= 0:
            return
        stats = self.stats
        stats.rob_occupancy_sum += self.rob_entries * skipped
        stats.ifq_occupancy_sum += len(ifq) * skipped
        self.cycle = target

    def step(self):
        """Advance the machine by one cycle."""
        self.cycle += 1
        cycle = self.cycle
        self._ports_used = 0
        groups = self.groups
        if groups:
            head = groups[0]
            if head.done_count >= len(head.copies):
                self._commit_stage(cycle)
                if self.halted:
                    self.stats.cycles = cycle
                    return
        if self.events:
            self._writeback_stage(cycle)
        queues = self.ready_queues
        if (self.pending_loads or queues[1] or queues[2] or queues[3]
                or queues[4]):
            self._issue_stage(cycle)
        if self.ifq:
            self._dispatch_stage(cycle)
        fetch_unit = self.fetch_unit
        if not fetch_unit.halted and cycle >= fetch_unit.stall_until:
            self._fetch_stage(cycle)
        stats = self.stats
        stats.rob_occupancy_sum += self.rob_entries
        stats.ifq_occupancy_sum += len(self.ifq)
        if (not self.groups and not self.ifq
                and not fetch_unit.halted
                and cycle >= fetch_unit.stall_until
                and self.program.fetch(fetch_unit.pc) is None):
            # The committed control flow has left the program: with
            # protection off, a corrupted branch can retire and strand
            # the machine on garbage addresses.  Real hardware would
            # fetch junk or trap; we record the crash and stop.
            stats.crashed = True
            self.halted = True
        if cycle - self._last_commit_cycle > self.config.deadlock_cycles:
            raise SimulationError(
                "deadlock: no commit for %d cycles (cycle=%d, rob=%d, "
                "ifq=%d, pending_loads=%d, head=%r)"
                % (self.config.deadlock_cycles, cycle, self.rob_entries,
                   len(self.ifq), len(self.pending_loads),
                   self.groups[0] if self.groups else None))

    # -- commit -----------------------------------------------------------

    def _commit_stage(self, cycle):
        groups = self.groups
        if not groups:
            return
        config = self.config
        budget = config.commit_width
        cost_factor = 2 if config.shared_physical_regfile else 1
        protected = self.redundancy >= 2
        check_pc = protected and self.ft.check_pc_continuity
        stats = self.stats
        while groups and budget > 0:
            group = groups[0]
            copies = group.copies
            if group.done_count < len(copies):
                break
            cost = len(copies) * cost_factor
            if cost > budget:
                break
            if protected:
                if check_pc and group.pc != self.committed_next_pc:
                    stats.pc_continuity_violations += 1
                    stats.faults_detected += 1
                    self.recovery.rewinds += 1
                    self._begin_rewind(cycle)
                    return
                # Inline cross-check fast path: in the fault-free common
                # case all copies agree and no CheckResult is needed.
                first = copies[0]
                agree = True
                for other in copies[1:]:
                    if not _entries_agree(first, other):
                        agree = False
                        break
                if agree:
                    self.checker.checks += 1
                    representative = first
                else:
                    result = self.checker.check(group)
                    stats.faults_detected += 1
                    if self.recovery.decide(result) == ACTION_REWIND:
                        self._begin_rewind(cycle)
                        return
                    stats.majority_commits += 1
                    representative = copies[result.representative]
            else:
                representative = copies[0]
                for entry in copies:
                    if entry.fault_applied:
                        stats.silent_commits += 1
                        break
            if not self._retire_group(group, representative, cycle):
                break  # structural stall (store port); retry next cycle
            budget -= cost
            if self.halted:
                return

    def _retire_group(self, group, representative, cycle):
        """Commit one verified group; False on a store-port stall."""
        meta = group.meta
        stats = self.stats
        if group.is_store:
            if self._ports_used >= self.config.mem_ports:
                return False
            self._ports_used += 1
            self.hierarchy.store_access(representative.addr)
            self.arch.memory.store(representative.addr,
                                   representative.store_val)
            stats.stores_committed += 1
        if meta.writes_reg:
            self.arch.write_reg(meta.rd, representative.value)
            self.renamer.on_commit(meta.rd, group)
        kind = meta.kind
        if kind == _K_BRANCH:
            taken = representative.next_pc != group.pc + 1
            self.fetch_unit.train_commit(group, representative.next_pc,
                                         taken)
            stats.branches_committed += 1
            if representative.next_pc != group.pred_npc:
                stats.branch_mispredicts += 1
        elif kind == _K_JUMP:
            self.fetch_unit.train_commit(group, representative.next_pc,
                                         True)
            stats.jumps_committed += 1
            if representative.next_pc != group.pred_npc:
                stats.indirect_mispredicts += 1
        self.committed_next_pc = representative.next_pc
        self.groups.popleft()
        self.rob_entries -= len(group.copies)
        if group.is_mem:
            self.lsq.remove_committed(group)
        stats.instructions += 1
        stats.entries_committed += len(group.copies)
        self.recovery.on_commit(cycle)
        stats.recovery_cycles = self.recovery.recovery_cycles
        self._last_commit_cycle = cycle
        if self._tracer is not None:
            self._tracer.on_commit(group, cycle)
        if self._lockstep is not None:
            self._lockstep_check(group, representative)
        if meta.is_halt:
            self.halted = True
        return True

    def _lockstep_check(self, group, representative):
        golden = self._lockstep
        golden.step()
        inst = group.inst
        if golden.state.pc != self.committed_next_pc and not inst.is_halt:
            raise SimulationError(
                "lockstep divergence at pc=%d: committed next-PC %d, "
                "golden %d" % (group.pc, self.committed_next_pc,
                               golden.state.pc))
        if inst.info.writes_reg:
            expected = golden.state.read_reg(inst.rd)
            actual = self.arch.read_reg(inst.rd)
            if not values_equal(expected, actual):
                raise SimulationError(
                    "lockstep divergence at pc=%d: r%d committed %r, "
                    "golden %r" % (group.pc, inst.rd, actual, expected))
        if group.is_store:
            address = representative.addr
            expected = golden.state.memory.peek(address)
            actual = self.arch.memory.peek(address)
            if not values_equal(expected, actual):
                raise SimulationError(
                    "lockstep divergence at pc=%d: mem[%d] committed %r, "
                    "golden %r" % (group.pc, address, actual, expected))

    # -- recovery ---------------------------------------------------------

    def _begin_rewind(self, cycle):
        """Discard all speculative state; refetch from committed next-PC."""
        self.stats.rewinds += 1
        self.recovery.on_rewind(cycle)
        for group in self.groups:
            group.mark_squashed()
        self.groups.clear()
        self.lsq.clear()
        self.ifq.clear()
        self.ready_queues = [[], [], [], [], []]
        self.pending_loads = []
        self.rob_entries = 0
        self.renamer.clear()
        self.fetch_unit.ras.clear()
        self.fetch_unit.redirect(self.committed_next_pc, cycle,
                                 penalty=self.ft.rewind_extra_penalty)
        if self._tracer is not None:
            self._tracer.on_rewind(cycle, self.committed_next_pc)

    # -- writeback --------------------------------------------------------

    def _schedule(self, cycle, kind, payload):
        bucket = self.events.get(cycle)
        if bucket is None:
            self.events[cycle] = [(kind, payload)]
        else:
            bucket.append((kind, payload))

    def _writeback_stage(self, cycle):
        bucket = self.events.pop(cycle, None)
        if not bucket:
            return
        complete = self._complete_execution
        for kind, payload in bucket:
            if kind == _EVENT_EXEC:
                entry = payload
                if not entry.squashed:
                    complete(entry, cycle)
            else:
                group, value, was_miss = payload
                if was_miss:
                    # The fill returns and frees its MSHR even if the
                    # consuming load was squashed meanwhile.
                    self._outstanding_misses -= 1
                if not group.squashed:
                    self._deliver_load_value(group, value, cycle)

    def _count_fault(self, entry):
        """Record one applied fault (plus its site, when addressed)."""
        self.stats.faults_injected += 1
        if entry.site is not None:
            count_strike(self.stats, entry.site)

    def _complete_execution(self, entry, cycle):
        group = entry.group
        kind = group.meta.kind
        if kind == _K_LOAD or kind == _K_STORE:
            if entry.fault_kind == "address" and not entry.fault_applied:
                entry.addr = u64(entry.addr ^ (1 << (entry.fault_bit & 63)))
                entry.fault_applied = True
                self._count_fault(entry)
            entry.agen_done = True
            if kind == _K_STORE:
                entry.store_val = entry.src_vals[1]
                if entry.fault_kind == "value" and not entry.fault_applied:
                    entry.store_val = self._flip_value(entry.store_val,
                                                       entry.fault_bit)
                    entry.fault_applied = True
                    self._count_fault(entry)
                self._finalize_entry(entry, cycle)
            else:
                if entry.copy == 0 and not group.mem_issued:
                    self._append_pending_load(group)
                if group.value_ready:
                    self._finish_load_copy(entry, group.load_value, cycle)
            return
        if entry.fault_kind is not None and not entry.fault_applied:
            self._apply_datapath_fault(entry, group)
        # Inlined _finalize_entry (this is the completion path of every
        # non-memory instruction).
        entry.state = DONE
        entry.done_cycle = cycle
        group.done_count += 1
        dependents = entry.dependents
        if dependents:
            value = entry.value
            queues = self.ready_queues
            for dependent, slot in dependents:
                if dependent.squashed:
                    continue
                dependent.src_vals[slot] = value
                dependent.pending -= 1
                if dependent.pending == 0 and dependent.state == WAITING:
                    dependent.state = READY
                    heappush(queues[dependent.group.meta.qidx],
                             (dependent.seq, dependent))
            entry.dependents = None
        if entry.fault_kind == "rob_value" and not entry.fault_applied:
            # ROB-entry strike: the value corrupts *at rest*, after the
            # dependents captured the clean result — only commit (and
            # the cross-check) sees it.
            entry.value = self._flip_value(entry.value, entry.fault_bit)
            entry.fault_applied = True
            self._count_fault(entry)
        if group.is_control:
            self._resolve_control(entry, cycle)

    def _apply_datapath_fault(self, entry, group):
        if entry.fault_kind is None or entry.fault_applied:
            return
        meta = group.meta
        if entry.fault_kind == "value" and meta.writes_reg:
            entry.value = self._flip_value(entry.value, entry.fault_bit)
            entry.fault_applied = True
            self._count_fault(entry)
        elif entry.fault_kind == "branch" and meta.is_control:
            entry.next_pc = self._corrupt_next_pc(entry, group)
            entry.fault_applied = True
            self._count_fault(entry)
        elif entry.fault_kind == "value" and meta.is_control:
            entry.next_pc = self._corrupt_next_pc(entry, group)
            entry.fault_applied = True
            self._count_fault(entry)

    def _corrupt_next_pc(self, entry, group):
        meta = group.meta
        if meta.is_branch:
            fallthrough = group.pc + 1
            target = group.pc + 1 + meta.imm
            return target if entry.next_pc == fallthrough else fallthrough
        return u64(entry.next_pc ^ (1 << (entry.fault_bit % 16)))

    @staticmethod
    def _flip_value(value, bit):
        if isinstance(value, float):
            return flip_float_bit(value, bit)
        return flip_int_bit(value if value is not None else 0, bit)

    def _finalize_entry(self, entry, cycle):
        entry.state = DONE
        entry.done_cycle = cycle
        group = entry.group
        group.done_count += 1
        dependents = entry.dependents
        if dependents:
            value = entry.value
            queues = self.ready_queues
            for dependent, slot in dependents:
                if dependent.squashed:
                    continue
                dependent.src_vals[slot] = value
                dependent.pending -= 1
                if dependent.pending == 0 and dependent.state == WAITING:
                    dependent.state = READY
                    heappush(queues[dependent.group.meta.qidx],
                             (dependent.seq, dependent))
            entry.dependents = None
        if entry.fault_kind == "rob_value" and not entry.fault_applied:
            # ROB-entry strike: corrupts after the dependents captured
            # the clean value (see _complete_execution).
            entry.value = self._flip_value(entry.value, entry.fault_bit)
            entry.fault_applied = True
            self._count_fault(entry)
        if group.is_control:
            self._resolve_control(entry, cycle)

    def _resolve_control(self, entry, cycle):
        group = entry.group
        if group.resolved:
            # A later copy disagreeing with the followed path is caught
            # by the commit-stage cross-check; nothing to do here.
            return
        group.resolved = True
        group.resolved_npc = entry.next_pc
        if entry.next_pc != group.pred_npc:
            self._squash_younger(group)
            self.fetch_unit.restore_ras(group.ras_snap)
            self.fetch_unit.redirect(entry.next_pc, cycle,
                                     penalty=self.config.redirect_penalty)

    def _squash_younger(self, group):
        """Branch-misprediction squash of everything younger than group."""
        groups = self.groups
        while groups and groups[-1].gseq > group.gseq:
            victim = groups.pop()
            victim.mark_squashed()
            self.rob_entries -= len(victim.copies)
        self.lsq.squash_younger(group.gseq)
        self.ifq.clear()
        if self.pending_loads:
            self.pending_loads = [g for g in self.pending_loads
                                  if not g.squashed]
        for queue in self.ready_queues:
            if queue:
                live = [item for item in queue if not item[1].squashed]
                if len(live) != len(queue):
                    queue[:] = live
                    heapify(queue)
        self.renamer.rebuild(groups)

    def _deliver_load_value(self, group, raw_value, cycle):
        """The single shared memory access returned: fan out to copies."""
        if group.meta.fp_dest:
            value = as_float(raw_value)
        else:
            value = as_int(raw_value)
        group.load_value = value
        group.value_ready = True
        group.value_cycle = cycle
        finish = self._finish_load_copy
        for entry in group.copies:
            if entry.agen_done and entry.state != DONE:
                finish(entry, value, cycle)

    def _finish_load_copy(self, entry, value, cycle):
        entry.value = value
        if entry.fault_kind == "value" and not entry.fault_applied:
            entry.value = self._flip_value(entry.value, entry.fault_bit)
            entry.fault_applied = True
            self._count_fault(entry)
        self._finalize_entry(entry, cycle)

    # -- issue ------------------------------------------------------------

    def _issue_stage(self, cycle):
        if self.pending_loads:
            self._progress_pending_loads(cycle)
        queues = self.ready_queues
        if not (queues[1] or queues[2] or queues[3] or queues[4]):
            return
        budget = self.config.issue_width
        pools = self._pools
        co_schedule = self.config.co_schedule_copies
        execute = self._execute
        # Classes with ready work; a class leaves when it saturates or
        # its queue drains.  Scanning this short list per issued entry
        # reproduces exactly the global age-priority order of the
        # reference engine, without re-popping entries of saturated
        # classes every cycle.
        active = [index for index in _ISSUE_CLASSES if queues[index]]
        while budget and len(active) == 1:
            # Single-class fast path (integer-only windows are common):
            # no cross-class age arbitration needed.
            index = active[0]
            queue = queues[index]
            while queue:
                head = queue[0][1]
                if head.state != READY or head.squashed:
                    heappop(queue)        # stale: drop lazily
                else:
                    break
            if not queue:
                return
            seq, entry = queue[0]
            group = entry.group
            meta = group.meta
            avoid = None
            if co_schedule and entry.copy:
                avoid = group.copies[0].fu_unit
            latency = meta.latency
            unit = pools[index].try_issue(cycle, latency,
                                          meta.unpipelined, avoid=avoid)
            if unit is None:
                return                    # the only class saturated
            heappop(queue)
            entry.fu_unit = unit
            execute(entry, cycle, latency)
            budget -= 1
        if not budget:
            return
        # Multi-class arbitration with cached heads: each candidate is
        # [head_seq, class_index, queue]; only the class that issued
        # (or saturated, or drained) is re-examined per round.  Order
        # is exactly the reference engine's global age priority.
        candidates = []
        for index in active:
            queue = queues[index]
            while queue:
                head = queue[0][1]
                if head.state != READY or head.squashed:
                    heappop(queue)        # stale: drop lazily
                else:
                    break
            if queue:
                candidates.append([queue[0][0], index, queue])
        while budget and candidates:
            best = candidates[0]
            for candidate in candidates:
                if candidate[0] < best[0]:
                    best = candidate
            best_seq, best_index, best_queue = best
            entry = best_queue[0][1]
            group = entry.group
            meta = group.meta
            avoid = None
            if co_schedule and entry.copy:
                # Section 3.5: prefer a different physical unit than the
                # sibling copy, so a slow-transient FU fault cannot
                # corrupt both redundant results identically.
                avoid = group.copies[0].fu_unit
            latency = meta.latency
            unit = pools[best_index].try_issue(cycle, latency,
                                               meta.unpipelined,
                                               avoid=avoid)
            if unit is None:
                candidates.remove(best)   # class saturated this cycle
                continue
            heappop(best_queue)
            entry.fu_unit = unit
            execute(entry, cycle, latency)
            budget -= 1
            queue = best_queue
            while queue:
                head = queue[0][1]
                if head.state != READY or head.squashed:
                    heappop(queue)
                else:
                    break
            if queue:
                best[0] = queue[0][0]
            else:
                candidates.remove(best)

    def _execute(self, entry, cycle, latency):
        """Start execution: compute results, schedule the completion."""
        group = entry.group
        meta = group.meta
        kind = meta.kind
        pc = group.pc
        op_fault = entry.op_fault
        if op_fault is not None:
            # Source-operand strike (rename_tag / iq_entry): the copy
            # computes on a corrupted operand from here on.
            slot, bit = op_fault
            entry.src_vals[slot] = self._flip_value(
                entry.src_vals[slot], bit)
            entry.op_fault = None
            entry.fault_applied = True
            self._count_fault(entry)
        a, b = entry.src_vals
        if kind == _K_ALU:
            entry.value = meta.value_fn(a, b, meta.imm, pc)
            entry.next_pc = pc + 1
        elif kind == _K_LOAD or kind == _K_STORE:
            entry.addr = u64(a + meta.imm)
            entry.next_pc = pc + 1
        elif kind == _K_BRANCH:
            entry.next_pc = pc + 1 + meta.imm \
                if meta.branch_fn(a, b) else pc + 1
        else:                             # JUMP
            op = meta.op
            if op == Op.J or op == Op.JAL:
                entry.next_pc = meta.imm
            else:
                entry.next_pc = u64(as_int(a))
            if meta.writes_reg:
                entry.value = pc + 1
        entry.state = ISSUED
        entry.issue_cycle = cycle
        self.stats.issued += 1
        events = self.events
        when = cycle + latency
        bucket = events.get(when)
        if bucket is None:
            events[when] = [(_EVENT_EXEC, entry)]
        else:
            bucket.append((_EVENT_EXEC, entry))

    def _append_pending_load(self, group):
        """Insert an agen-complete load keeping program (gseq) order.

        Address generation completes out of order, so a younger load's
        event can fire before an older one's; binary insertion keeps
        the list sorted by construction, replacing the reference
        engine's per-cycle re-sort.
        """
        loads = self.pending_loads
        if loads and loads[-1].gseq > group.gseq:
            gseq = group.gseq
            lo = 0
            hi = len(loads)
            while lo < hi:
                mid = (lo + hi) >> 1
                if loads[mid].gseq < gseq:
                    lo = mid + 1
                else:
                    hi = mid
            loads.insert(lo, group)
        else:
            loads.append(group)

    def _progress_pending_loads(self, cycle):
        loads = self.pending_loads
        if not loads:
            return
        still_pending = []
        pending_append = still_pending.append
        lsq = self.lsq
        config = self.config
        mem_ports = config.mem_ports
        mshrs = config.mshr_count
        hierarchy = self.hierarchy
        dl1_probe = hierarchy.dl1.probe
        memory_load = self.arch.memory.load
        stats = self.stats
        schedule = self._schedule
        for group in loads:
            if group.squashed or group.mem_issued:
                continue
            status, match = lsq.load_status_memo(group)
            if status == "blocked":
                pending_append(group)
            elif status == "forward":
                group.mem_issued = True
                stats.store_forwards += 1
                stats.loads_executed += 1
                schedule(cycle + 1, _EVENT_LOAD_VALUE,
                         (group, match.copies[0].store_val, False))
            else:  # cache access
                if self._ports_used >= mem_ports:
                    pending_append(group)
                    continue
                address = group.copies[0].addr
                is_miss = not dl1_probe((address & ((1 << 48) - 1)) << 3)
                if (mshrs is not None and is_miss
                        and self._outstanding_misses >= mshrs):
                    pending_append(group)  # MSHRs exhausted
                    continue
                self._ports_used += 1
                latency = hierarchy.load_latency(address)
                value = memory_load(address)
                if is_miss:
                    self._outstanding_misses += 1
                group.mem_issued = True
                stats.loads_executed += 1
                schedule(cycle + latency, _EVENT_LOAD_VALUE,
                         (group, value, is_miss))
        self.pending_loads = still_pending

    # -- dispatch / fetch ---------------------------------------------------

    def _dispatch_stage(self, cycle):
        ifq = self.ifq
        if not ifq:
            return
        config = self.config
        budget = config.dispatch_width
        redundancy = self.redundancy
        rob_size = config.rob_size
        lsq = self.lsq
        groups = self.groups
        queues = self.ready_queues
        build_group = self.replicator.build_group
        stats = self.stats
        while ifq and budget >= redundancy:
            if self.rob_entries + redundancy > rob_size:
                break
            record = ifq[0]
            if record.meta.is_mem and lsq.full:
                break
            ifq.popleft()
            group = build_group(record, cycle)
            group.dispatch_cycle = cycle
            groups.append(group)
            self.rob_entries += redundancy
            if group.is_mem:
                lsq.insert(group)
            qidx = record.meta.qidx
            queue = queues[qidx]
            for entry in group.copies:
                if entry.state == READY:
                    heappush(queue, (entry.seq, entry))
            budget -= redundancy
            stats.dispatched_groups += 1
            stats.dispatched_entries += redundancy

    def _fetch_stage(self, cycle):
        ifq = self.ifq
        space = self.config.ifq_size - len(ifq)
        budget = self.config.fetch_width
        if space < budget:
            budget = space
        if budget <= 0:
            return
        records = self.fetch_unit.fetch_cycle(cycle, budget)
        if records:
            ifq.extend(records)
            self.stats.fetched += len(records)


def simulate(program, config=None, ft=None, fault_config=None,
             max_instructions=None, max_cycles=None, lockstep=False,
             policy=None):
    """One-call simulation helper; returns the finished Processor."""
    processor = Processor(program, config=config, ft=ft,
                          fault_config=fault_config, policy=policy)
    if lockstep:
        processor.enable_lockstep_check()
    processor.run(max_instructions=max_instructions, max_cycles=max_cycles)
    return processor
