"""The cycle-level out-of-order superscalar engine.

One engine serves every machine in the paper: with ``FTConfig(redundancy
=1)`` it is the stock SS-1 superscalar; with R >= 2 the dual-use
extensions of :mod:`repro.core` (replication, commit cross-checking,
rewind/majority recovery, fault injection) activate on the same
datapath.

Stage ordering within one simulated cycle (a conventional conservative
model — results written back in cycle T are visible to commit in T+1):

1. **commit** — retire whole redundant groups in program order, running
   the commit-stage cross-check and PC-continuity check;
2. **writeback** — completions scheduled for this cycle: finalize
   results, apply planned transient faults, resolve control flow, wake
   dependents, deliver the shared load value to all copies;
3. **issue** — send ready entries to functional units (age priority),
   and progress pending loads through disambiguation/forwarding/cache
   access within the D-cache port budget;
4. **dispatch** — replicate fetched instructions into R-aligned ROB
   groups, renaming copy 0 through the map table and deriving the other
   copies' tags;
5. **fetch** — predict and fetch up to the fetch width from the I-cache.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush

from ..core.config import FTConfig, UNPROTECTED
from ..core.detection import CommitChecker
from ..core.faults import FaultInjector
from ..core.recovery import ACTION_REWIND, RecoveryController
from ..core.replication import Replicator
from ..errors import ConfigError, SimulationError
from ..functional.kernel import (alu_value, branch_taken,
                                 effective_address)
from ..functional.numeric import (as_float, as_int, flip_float_bit,
                                  flip_int_bit, u64, values_equal)
from ..functional.simulator import FunctionalSimulator
from ..functional.state import ArchState
from ..isa.opcodes import FuClass, Kind, Op
from ..memory.hierarchy import MemoryHierarchy
from ..memory.main_memory import MainMemory
from .config import MachineConfig
from .fetch import FetchUnit
from .funits import FuBank
from .lsq import LoadStoreQueue
from .rename import make_renamer
from .rob import DONE, ISSUED, READY, WAITING
from .stats import PipelineStats

_EVENT_EXEC = 0
_EVENT_LOAD_VALUE = 1


class Processor:
    """A simulated out-of-order superscalar processor."""

    def __init__(self, program, config=None, ft=None, fault_config=None):
        self.program = program
        self.config = config or MachineConfig()
        self.ft = ft or UNPROTECTED
        self.redundancy = self.ft.redundancy
        if self.config.rob_size % self.redundancy:
            raise ConfigError(
                "ROB size (%d) must be a multiple of the redundancy "
                "degree (%d)" % (self.config.rob_size, self.redundancy))

        memory = MainMemory(self.config.mem_size_words, image=program.data)
        self.arch = ArchState(memory=memory, pc=program.entry)
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        self.fetch_unit = FetchUnit(program, self.config, self.hierarchy)
        self.fus = FuBank(self.config)

        self.groups = deque()             # in-flight groups, program order
        self.renamer = make_renamer(self.config.rename_scheme, self.groups)
        self.injector = None
        if fault_config is not None and fault_config.rate_per_million > 0:
            self.injector = FaultInjector(fault_config)
        self.stats = PipelineStats()
        self.replicator = Replicator(self.redundancy, self.renamer,
                                     self.arch.read_reg, self.injector,
                                     stats=self.stats)
        self.checker = CommitChecker(self.ft)
        self.recovery = RecoveryController(self.ft)
        self.lsq = LoadStoreQueue(self.config.lsq_size)
        self.ifq = deque()
        self.ready = []                   # heap of (seq, entry)
        self.events = {}                  # cycle -> [(kind, payload)]
        self.pending_loads = []           # load groups awaiting access

        self.committed_next_pc = program.entry  # the ECC-protected register
        self._outstanding_misses = 0
        self.cycle = 0
        self.halted = False
        self.rob_entries = 0
        self._ports_used = 0
        self._last_commit_cycle = 0
        self._lockstep = None
        self._tracer = None

    # -- public API -------------------------------------------------------

    def enable_lockstep_check(self):
        """Verify every commit against the in-order golden model.

        The strongest correctness oracle: the committed instruction
        stream (including across fault rewinds) must match in-order
        execution exactly.
        """
        self._lockstep = FunctionalSimulator(
            self.program, mem_size=self.config.mem_size_words)

    def attach_tracer(self, tracer):
        """Record per-instruction lifecycle events into ``tracer``."""
        self._tracer = tracer

    def run(self, max_instructions=None, max_cycles=None):
        """Simulate until HALT commits or a budget is exhausted."""
        instruction_target = None
        if max_instructions is not None:
            instruction_target = self.stats.instructions + max_instructions
        while not self.halted:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            if (instruction_target is not None
                    and self.stats.instructions >= instruction_target):
                break
            self.step()
        self.stats.cycles = self.cycle
        return self.stats

    def step(self):
        """Advance the machine by one cycle."""
        self.cycle += 1
        cycle = self.cycle
        self._ports_used = 0
        self._commit_stage(cycle)
        if self.halted:
            self.stats.cycles = cycle
            return
        self._writeback_stage(cycle)
        self._issue_stage(cycle)
        self._dispatch_stage(cycle)
        self._fetch_stage(cycle)
        self.stats.rob_occupancy_sum += self.rob_entries
        self.stats.ifq_occupancy_sum += len(self.ifq)
        if (not self.groups and not self.ifq
                and not self.fetch_unit.halted
                and cycle >= self.fetch_unit.stall_until
                and self.program.fetch(self.fetch_unit.pc) is None):
            # The committed control flow has left the program: with
            # protection off, a corrupted branch can retire and strand
            # the machine on garbage addresses.  Real hardware would
            # fetch junk or trap; we record the crash and stop.
            self.stats.crashed = True
            self.halted = True
        if cycle - self._last_commit_cycle > self.config.deadlock_cycles:
            raise SimulationError(
                "deadlock: no commit for %d cycles (cycle=%d, rob=%d, "
                "ifq=%d, pending_loads=%d, head=%r)"
                % (self.config.deadlock_cycles, cycle, self.rob_entries,
                   len(self.ifq), len(self.pending_loads),
                   self.groups[0] if self.groups else None))

    # -- commit -----------------------------------------------------------

    def _commit_stage(self, cycle):
        budget = self.config.commit_width
        protected = self.redundancy >= 2
        while self.groups and budget > 0:
            group = self.groups[0]
            copies = len(group.copies)
            cost = copies * (2 if self.config.shared_physical_regfile
                             else 1)
            if cost > budget:
                break
            if not group.complete:
                break
            if protected:
                if (self.ft.check_pc_continuity
                        and group.pc != self.committed_next_pc):
                    self.stats.pc_continuity_violations += 1
                    self.stats.faults_detected += 1
                    self.recovery.rewinds += 1
                    self._begin_rewind(cycle)
                    return
                result = self.checker.check(group)
                if not result.ok:
                    self.stats.faults_detected += 1
                    if self.recovery.decide(result) == ACTION_REWIND:
                        self._begin_rewind(cycle)
                        return
                    self.stats.majority_commits += 1
                    representative = group.copies[result.representative]
                else:
                    representative = group.copies[0]
            else:
                representative = group.copies[0]
                if any(entry.fault_applied for entry in group.copies):
                    self.stats.silent_commits += 1
            if not self._retire_group(group, representative, cycle):
                break  # structural stall (store port); retry next cycle
            budget -= cost
            if self.halted:
                return

    def _retire_group(self, group, representative, cycle):
        """Commit one verified group; False on a store-port stall."""
        inst = group.inst
        info = inst.info
        if group.is_store:
            if self._ports_used >= self.config.mem_ports:
                return False
            self._ports_used += 1
            self.hierarchy.store_access(representative.addr)
            self.arch.memory.store(representative.addr,
                                   representative.store_val)
            self.stats.stores_committed += 1
        if info.writes_reg:
            self.arch.write_reg(inst.rd, representative.value)
            self.renamer.on_commit(inst.rd, group)
        if info.kind == Kind.BRANCH:
            taken = representative.next_pc != group.pc + 1
            self.fetch_unit.train_commit(group, representative.next_pc,
                                         taken)
            self.stats.branches_committed += 1
            if representative.next_pc != group.pred_npc:
                self.stats.branch_mispredicts += 1
        elif info.kind == Kind.JUMP:
            self.fetch_unit.train_commit(group, representative.next_pc,
                                         True)
            self.stats.jumps_committed += 1
            if representative.next_pc != group.pred_npc:
                self.stats.indirect_mispredicts += 1
        self.committed_next_pc = representative.next_pc
        self.groups.popleft()
        self.rob_entries -= len(group.copies)
        if group.is_mem:
            self.lsq.remove_committed(group)
        self.stats.instructions += 1
        self.stats.entries_committed += len(group.copies)
        self.recovery.on_commit(cycle)
        self.stats.recovery_cycles = self.recovery.recovery_cycles
        self._last_commit_cycle = cycle
        if self._tracer is not None:
            self._tracer.on_commit(group, cycle)
        if self._lockstep is not None:
            self._lockstep_check(group, representative)
        if inst.is_halt:
            self.halted = True
        return True

    def _lockstep_check(self, group, representative):
        golden = self._lockstep
        golden.step()
        inst = group.inst
        if golden.state.pc != self.committed_next_pc and not inst.is_halt:
            raise SimulationError(
                "lockstep divergence at pc=%d: committed next-PC %d, "
                "golden %d" % (group.pc, self.committed_next_pc,
                               golden.state.pc))
        if inst.info.writes_reg:
            expected = golden.state.read_reg(inst.rd)
            actual = self.arch.read_reg(inst.rd)
            if not values_equal(expected, actual):
                raise SimulationError(
                    "lockstep divergence at pc=%d: r%d committed %r, "
                    "golden %r" % (group.pc, inst.rd, actual, expected))
        if group.is_store:
            address = representative.addr
            expected = golden.state.memory.peek(address)
            actual = self.arch.memory.peek(address)
            if not values_equal(expected, actual):
                raise SimulationError(
                    "lockstep divergence at pc=%d: mem[%d] committed %r, "
                    "golden %r" % (group.pc, address, actual, expected))

    # -- recovery ---------------------------------------------------------

    def _begin_rewind(self, cycle):
        """Discard all speculative state; refetch from committed next-PC."""
        self.stats.rewinds += 1
        self.recovery.on_rewind(cycle)
        for group in self.groups:
            group.mark_squashed()
        self.groups.clear()
        self.lsq.clear()
        self.ifq.clear()
        self.ready = []
        self.pending_loads = []
        self.rob_entries = 0
        self.renamer.clear()
        self.fetch_unit.ras.clear()
        self.fetch_unit.redirect(self.committed_next_pc, cycle,
                                 penalty=self.ft.rewind_extra_penalty)
        if self._tracer is not None:
            self._tracer.on_rewind(cycle, self.committed_next_pc)

    # -- writeback --------------------------------------------------------

    def _schedule(self, cycle, kind, payload):
        bucket = self.events.get(cycle)
        if bucket is None:
            self.events[cycle] = [(kind, payload)]
        else:
            bucket.append((kind, payload))

    def _writeback_stage(self, cycle):
        bucket = self.events.pop(cycle, None)
        if not bucket:
            return
        for kind, payload in bucket:
            if kind == _EVENT_EXEC:
                entry = payload
                if not entry.squashed:
                    self._complete_execution(entry, cycle)
            else:
                group, value, was_miss = payload
                if was_miss:
                    # The fill returns and frees its MSHR even if the
                    # consuming load was squashed meanwhile.
                    self._outstanding_misses -= 1
                if not group.squashed:
                    self._deliver_load_value(group, value, cycle)

    def _complete_execution(self, entry, cycle):
        group = entry.group
        inst = group.inst
        info = inst.info
        kind = info.kind
        if kind == Kind.LOAD or kind == Kind.STORE:
            if entry.fault_kind == "address" and not entry.fault_applied:
                entry.addr = u64(entry.addr ^ (1 << (entry.fault_bit & 63)))
                entry.fault_applied = True
                self.stats.faults_injected += 1
            entry.agen_done = True
            if kind == Kind.STORE:
                entry.store_val = entry.src_vals[1]
                if entry.fault_kind == "value" and not entry.fault_applied:
                    entry.store_val = self._flip_value(entry.store_val,
                                                       entry.fault_bit)
                    entry.fault_applied = True
                    self.stats.faults_injected += 1
                self._finalize_entry(entry, cycle)
            else:
                if entry.copy == 0 and not group.mem_issued:
                    self.pending_loads.append(group)
                if group.value_ready:
                    self._finish_load_copy(entry, group.load_value, cycle)
            return
        self._apply_datapath_fault(entry, group)
        self._finalize_entry(entry, cycle)

    def _apply_datapath_fault(self, entry, group):
        if entry.fault_kind is None or entry.fault_applied:
            return
        inst = group.inst
        if entry.fault_kind == "value" and inst.info.writes_reg:
            entry.value = self._flip_value(entry.value, entry.fault_bit)
            entry.fault_applied = True
            self.stats.faults_injected += 1
        elif entry.fault_kind == "branch" and inst.is_control:
            entry.next_pc = self._corrupt_next_pc(entry, group)
            entry.fault_applied = True
            self.stats.faults_injected += 1
        elif entry.fault_kind == "value" and inst.is_control:
            entry.next_pc = self._corrupt_next_pc(entry, group)
            entry.fault_applied = True
            self.stats.faults_injected += 1

    def _corrupt_next_pc(self, entry, group):
        inst = group.inst
        if inst.is_branch:
            fallthrough = group.pc + 1
            target = group.pc + 1 + inst.imm
            return target if entry.next_pc == fallthrough else fallthrough
        return u64(entry.next_pc ^ (1 << (entry.fault_bit % 16)))

    @staticmethod
    def _flip_value(value, bit):
        if isinstance(value, float):
            return flip_float_bit(value, bit)
        return flip_int_bit(value if value is not None else 0, bit)

    def _finalize_entry(self, entry, cycle):
        entry.state = DONE
        entry.done_cycle = cycle
        group = entry.group
        group.done_count += 1
        if entry.dependents:
            value = entry.value
            for dependent, slot in entry.dependents:
                if dependent.squashed:
                    continue
                dependent.src_vals[slot] = value
                dependent.pending -= 1
                if dependent.pending == 0 and dependent.state == WAITING:
                    dependent.state = READY
                    heappush(self.ready, (dependent.seq, dependent))
            entry.dependents = []
        if group.is_control:
            self._resolve_control(entry, cycle)

    def _resolve_control(self, entry, cycle):
        group = entry.group
        if group.resolved:
            # A later copy disagreeing with the followed path is caught
            # by the commit-stage cross-check; nothing to do here.
            return
        group.resolved = True
        group.resolved_npc = entry.next_pc
        if entry.next_pc != group.pred_npc:
            self._squash_younger(group)
            self.fetch_unit.restore_ras(group.ras_snap)
            self.fetch_unit.redirect(entry.next_pc, cycle,
                                     penalty=self.config.redirect_penalty)

    def _squash_younger(self, group):
        """Branch-misprediction squash of everything younger than group."""
        groups = self.groups
        while groups and groups[-1].gseq > group.gseq:
            victim = groups.pop()
            victim.mark_squashed()
            self.rob_entries -= len(victim.copies)
        self.lsq.squash_younger(group.gseq)
        self.ifq.clear()
        if self.pending_loads:
            self.pending_loads = [g for g in self.pending_loads
                                  if not g.squashed]
        if self.ready:
            self.ready = [(seq, entry) for seq, entry in self.ready
                          if not entry.squashed]
            heapify(self.ready)
        self.renamer.rebuild(groups)

    def _deliver_load_value(self, group, raw_value, cycle):
        """The single shared memory access returned: fan out to copies."""
        if group.inst.info.fp_dest:
            value = as_float(raw_value)
        else:
            value = as_int(raw_value)
        group.load_value = value
        group.value_ready = True
        group.value_cycle = cycle
        for entry in group.copies:
            if entry.agen_done and entry.state != DONE:
                self._finish_load_copy(entry, value, cycle)

    def _finish_load_copy(self, entry, value, cycle):
        entry.value = value
        if entry.fault_kind == "value" and not entry.fault_applied:
            entry.value = self._flip_value(entry.value, entry.fault_bit)
            entry.fault_applied = True
            self.stats.faults_injected += 1
        self._finalize_entry(entry, cycle)

    # -- issue ------------------------------------------------------------

    def _issue_stage(self, cycle):
        self._progress_pending_loads(cycle)
        budget = self.config.issue_width
        deferred = []
        ready = self.ready
        saturated = set()
        co_schedule = self.config.co_schedule_copies
        num_classes = 4  # INT_ALU, INT_MULT, FP_ADD, FP_MULT
        while budget > 0 and ready and len(saturated) < num_classes:
            _, entry = heappop(ready)
            if entry.squashed or entry.state != READY:
                continue
            info = entry.group.inst.info
            fu_class = FuClass.INT_ALU if info.is_mem else info.fu
            if fu_class in saturated:
                deferred.append((entry.seq, entry))
                continue
            avoid = None
            if co_schedule and entry.copy > 0:
                # Section 3.5: prefer a different physical unit than the
                # sibling copy, so a slow-transient FU fault cannot
                # corrupt both redundant results identically.
                avoid = entry.group.copies[0].fu_unit
            latency = self.config.op_latency(entry.group.inst.op)
            unit = self.fus.try_issue(fu_class, cycle, latency,
                                      info.unpipelined, avoid=avoid)
            if unit is not None:
                entry.fu_unit = unit
                self._execute(entry, cycle, latency)
                budget -= 1
            else:
                saturated.add(fu_class)
                deferred.append((entry.seq, entry))
        for item in deferred:
            heappush(ready, item)

    def _execute(self, entry, cycle, latency):
        """Start execution: compute results, schedule the completion."""
        group = entry.group
        inst = group.inst
        kind = inst.info.kind
        a, b = entry.src_vals
        if kind == Kind.ALU:
            entry.value = alu_value(inst.op, a, b, inst.imm, group.pc)
            entry.next_pc = group.pc + 1
        elif kind == Kind.LOAD or kind == Kind.STORE:
            entry.addr = effective_address(a, inst.imm)
            entry.next_pc = group.pc + 1
        elif kind == Kind.BRANCH:
            taken = branch_taken(inst.op, a, b)
            entry.next_pc = group.pc + 1 + inst.imm if taken \
                else group.pc + 1
        elif kind == Kind.JUMP:
            if inst.op == Op.J or inst.op == Op.JAL:
                entry.next_pc = inst.imm
            else:
                entry.next_pc = u64(as_int(a))
            if inst.info.writes_reg:
                entry.value = group.pc + 1
        entry.state = ISSUED
        entry.issue_cycle = cycle
        self.stats.issued += 1
        self._schedule(cycle + latency, _EVENT_EXEC, entry)

    def _progress_pending_loads(self, cycle):
        if not self.pending_loads:
            return
        self.pending_loads.sort(key=lambda g: g.gseq)
        still_pending = []
        for group in self.pending_loads:
            if group.squashed or group.mem_issued:
                continue
            status, match = self.lsq.load_status(group)
            if status == "blocked":
                still_pending.append(group)
            elif status == "forward":
                group.mem_issued = True
                self.stats.store_forwards += 1
                self.stats.loads_executed += 1
                self._schedule(cycle + 1, _EVENT_LOAD_VALUE,
                               (group, match.copies[0].store_val, False))
            else:  # cache access
                if self._ports_used >= self.config.mem_ports:
                    still_pending.append(group)
                    continue
                address = group.copies[0].addr
                mshrs = self.config.mshr_count
                is_miss = not self.hierarchy.dl1.probe(
                    (address & ((1 << 48) - 1)) << 3)
                if (mshrs is not None and is_miss
                        and self._outstanding_misses >= mshrs):
                    still_pending.append(group)  # MSHRs exhausted
                    continue
                self._ports_used += 1
                latency = self.hierarchy.load_latency(address)
                value = self.arch.memory.load(address)
                if is_miss:
                    self._outstanding_misses += 1
                group.mem_issued = True
                self.stats.loads_executed += 1
                self._schedule(cycle + latency, _EVENT_LOAD_VALUE,
                               (group, value, is_miss))
        self.pending_loads = still_pending

    # -- dispatch / fetch ---------------------------------------------------

    def _dispatch_stage(self, cycle):
        budget = self.config.dispatch_width
        redundancy = self.redundancy
        while self.ifq and budget >= redundancy:
            if self.rob_entries + redundancy > self.config.rob_size:
                break
            record = self.ifq[0]
            if record.inst.is_mem and self.lsq.full:
                break
            self.ifq.popleft()
            group = self.replicator.build_group(record, cycle)
            group.dispatch_cycle = cycle
            self.groups.append(group)
            self.rob_entries += redundancy
            if group.is_mem:
                self.lsq.insert(group)
            for entry in group.copies:
                if entry.state == READY:
                    heappush(self.ready, (entry.seq, entry))
            budget -= redundancy
            self.stats.dispatched_groups += 1
            self.stats.dispatched_entries += redundancy

    def _fetch_stage(self, cycle):
        space = self.config.ifq_size - len(self.ifq)
        budget = min(self.config.fetch_width, space)
        if budget <= 0:
            return
        records = self.fetch_unit.fetch_cycle(cycle, budget)
        if records:
            self.ifq.extend(records)
            self.stats.fetched += len(records)


def simulate(program, config=None, ft=None, fault_config=None,
             max_instructions=None, max_cycles=None, lockstep=False):
    """One-call simulation helper; returns the finished Processor."""
    processor = Processor(program, config=config, ft=ft,
                          fault_config=fault_config)
    if lockstep:
        processor.enable_lockstep_check()
    processor.run(max_instructions=max_instructions, max_cycles=max_cycles)
    return processor
