"""Instruction fetch unit.

Fetches up to ``fetch_width`` instructions per cycle from the I-cache,
subject to the Table-1 front-end rules:

* fetch never crosses an I-cache line boundary in one cycle;
* one branch prediction per cycle: fetch stops *after* a predicted-taken
  control instruction and *before* a second control instruction;
* an I-cache miss stalls fetch until the fill returns;
* fetch freezes after a ``halt`` enters the stream (the paper's machine
  would simply run out of useful work).

Wrong-path fetch is modelled faithfully: after a corrupted or
mispredicted redirect, the unit happily fetches garbage until the
pipeline squashes and redirects it.  Running off the text segment simply
produces no instructions (the stream starves until recovery).
"""

from __future__ import annotations

from ..branch.bimodal import BimodalPredictor
from ..branch.btb import BranchTargetBuffer
from ..branch.combined import CombinedPredictor
from ..branch.ras import ReturnAddressStack
from ..branch.twolevel import TwoLevelPredictor
from ..isa.opcodes import Op
from ..isa.registers import RA
from ..program.cache import decode_program


class FetchRecord:
    """One fetched instruction en route to dispatch."""

    __slots__ = ("pc", "inst", "meta", "pred_npc", "pred_taken",
                 "ras_snap", "fetch_cycle")

    def __init__(self, pc, inst, pred_npc, pred_taken, ras_snap,
                 fetch_cycle, meta=None):
        self.pc = pc
        self.inst = inst
        self.meta = meta
        self.pred_npc = pred_npc
        self.pred_taken = pred_taken
        self.ras_snap = ras_snap
        self.fetch_cycle = fetch_cycle


def build_predictor(params):
    """Construct the combined predictor described by the config."""
    bimodal = BimodalPredictor(params.bimodal_size)
    twolevel = TwoLevelPredictor(params.l1_size, params.l2_size,
                                 params.history_bits, params.use_xor)
    return CombinedPredictor(bimodal, twolevel, params.meta_size)


class FetchUnit:
    """Front end: PC management, prediction, I-cache timing."""

    def __init__(self, program, config, hierarchy):
        self.program = program
        self.config = config
        self.hierarchy = hierarchy
        self.predictor = build_predictor(config.branch)
        self.btb = BranchTargetBuffer(config.branch.btb_sets,
                                      config.branch.btb_assoc)
        self.ras = ReturnAddressStack(config.branch.ras_depth)
        self.pc = program.entry
        self.stall_until = 0
        self.halted = False
        # Shared static-metadata table: fetched records carry their
        # DecodedInst so dispatch never re-resolves opcode info.
        self._decoded = decode_program(program, config)
        # I-cache line index of a PC is pc >> line_shift (8-byte
        # instructions); precomputed so the fetch loop's line-boundary
        # test needs no hierarchy call.
        words_per_line = max(1, config.hierarchy.il1.block_bytes // 8)
        self._line_shift = words_per_line.bit_length() - 1

    def redirect(self, target, cycle, penalty=0):
        """Restart fetching at ``target`` after a squash or rewind."""
        self.pc = target
        self.stall_until = cycle + 1 + penalty
        self.halted = False

    def restore_ras(self, snapshot):
        if snapshot is not None:
            self.ras.restore(snapshot)

    def fetch_cycle(self, cycle, budget):
        """Fetch up to ``budget`` instructions; returns FetchRecords."""
        if self.halted or cycle < self.stall_until or budget <= 0:
            return []
        latency = self.hierarchy.fetch_latency(self.pc)
        hit_latency = self.hierarchy.params.il1.hit_latency
        if latency > hit_latency:
            self.stall_until = cycle + latency
            return []
        records = []
        decoded = self._decoded
        text_size = len(decoded)
        line_shift = self._line_shift
        line = self.pc >> line_shift
        control_seen = 0
        while budget > 0:
            pc = self.pc
            if not 0 <= pc < text_size:
                break  # off the text segment (wrong path): starve
            if pc >> line_shift != line:
                break  # next cache line: wait for next cycle
            meta = decoded[pc]
            is_control = meta.is_control
            if is_control and control_seen >= 1:
                break  # one prediction per cycle (Table 1)
            pred_taken = False
            snapshot = None
            if meta.is_halt:
                record = FetchRecord(pc, meta.inst, pc, False, None,
                                     cycle, meta)
                records.append(record)
                self.halted = True
                break
            if is_control:
                snapshot = self.ras.snapshot()
                pred_npc, pred_taken = self._predict_control(meta.inst)
                control_seen += 1
            else:
                pred_npc = pc + 1
            records.append(FetchRecord(pc, meta.inst, pred_npc,
                                       pred_taken, snapshot, cycle, meta))
            self.pc = pred_npc
            budget -= 1
            if is_control and pred_taken:
                break  # stop after a predicted-taken control instruction
        return records

    def _predict_control(self, inst):
        """Predict next PC for a control instruction at ``self.pc``."""
        pc = self.pc
        op = inst.op
        if inst.is_branch:
            taken = self.predictor.predict(pc)
            target = pc + 1 + inst.imm if taken else pc + 1
            return target, taken
        if op == Op.J:
            return inst.imm, True
        if op == Op.JAL:
            self.ras.push(pc + 1)
            return inst.imm, True
        if op == Op.JR:
            if inst.rs1 == RA:
                predicted = self.ras.pop()
            else:
                predicted = self.btb.lookup(pc)
            return (predicted if predicted is not None else pc + 1), True
        # JALR: push the return address, predict through the BTB.
        self.ras.push(pc + 1)
        predicted = self.btb.lookup(pc)
        return (predicted if predicted is not None else pc + 1), True

    def train_commit(self, group, actual_next_pc, taken):
        """Non-speculative predictor/BTB training at commit."""
        inst = group.inst
        if inst.is_branch:
            self.predictor.update(group.pc, taken)
        elif inst.op in (Op.JR, Op.JALR):
            self.btb.update(group.pc, actual_next_pc)
