"""Re-export of the ROB structures.

The entry/group structures live in :mod:`repro.core.rob` (they embody
the paper's replication invariants), but the out-of-order substrate is
their natural home from an API perspective, so they are re-exported
here.
"""

from ..core.rob import DONE, ISSUED, READY, WAITING, Group, RobEntry

__all__ = ["DONE", "ISSUED", "READY", "WAITING", "Group", "RobEntry"]
