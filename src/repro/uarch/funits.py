"""Functional-unit pools with pipelined and unpipelined operations.

Each pool owns ``count`` units.  A pipelined operation occupies a unit's
issue port for one cycle (the unit accepts a new operation every cycle);
an unpipelined operation (integer and FP division, per Table 1) blocks
its unit for the full latency.
"""

from __future__ import annotations

from ..isa.opcodes import FuClass


class FuPool:
    """One class of functional units."""

    __slots__ = ("fu_class", "count", "_busy_until", "issued_ops",
                 "busy_cycles")

    def __init__(self, fu_class, count):
        self.fu_class = fu_class
        self.count = count
        # Per-unit cycle at which the unit can next *accept* an operation.
        self._busy_until = [0] * count
        self.issued_ops = 0
        self.busy_cycles = 0

    def try_issue(self, cycle, latency, unpipelined, avoid=None):
        """Try to start an operation; returns the unit index or None.

        ``avoid`` is a unit index to steer away from: Section 3.5
        suggests "co-scheduling redundant copies of the same instruction
        such that they are executed on different physical functional
        units whenever possible" to expose slow-transient faults.  The
        avoided unit is still used when it is the only one free.
        """
        busy = self._busy_until
        chosen = None
        for index in range(self.count):
            if busy[index] <= cycle:
                if index == avoid:
                    if chosen is None:
                        chosen = index
                    continue
                chosen = index
                break
        if chosen is None:
            return None
        occupancy = latency if unpipelined else 1
        busy[chosen] = cycle + occupancy
        self.busy_cycles += occupancy
        self.issued_ops += 1
        return chosen

    def available(self, cycle):
        """Number of units able to accept an operation this cycle."""
        return sum(1 for b in self._busy_until if b <= cycle)

    def reset(self):
        self._busy_until = [0] * self.count
        self.issued_ops = 0
        self.busy_cycles = 0


class FuBank:
    """All pools of one machine, keyed by :class:`FuClass`."""

    def __init__(self, config):
        self.pools = {
            FuClass.INT_ALU: FuPool(FuClass.INT_ALU, config.int_alu),
            FuClass.INT_MULT: FuPool(FuClass.INT_MULT, config.int_mult),
            FuClass.FP_ADD: FuPool(FuClass.FP_ADD, config.fp_add),
            FuClass.FP_MULT: FuPool(FuClass.FP_MULT, config.fp_mult),
        }

    def try_issue(self, fu_class, cycle, latency, unpipelined,
                  avoid=None):
        """Returns the accepting unit's index, or None."""
        pool = self.pools.get(fu_class)
        if pool is None or pool.count == 0:
            return None
        return pool.try_issue(cycle, latency, unpipelined, avoid=avoid)

    def utilisation(self, cycles):
        """Fraction of issue slots used per pool, over ``cycles``."""
        result = {}
        for fu_class, pool in self.pools.items():
            capacity = pool.count * max(cycles, 1)
            result[fu_class.name] = pool.busy_cycles / capacity \
                if capacity else 0.0
        return result
