"""Load/store queue with conservative disambiguation and forwarding.

Memory groups enter the LSQ in program order at dispatch.  A load may
perform its (single) cache access only when every older store knows its
address; if the youngest older store with a matching address has its
data ready, the load forwards from it instead of accessing the cache.
Stores update the cache and memory only at commit.

Disambiguation uses copy 0's computed address — if a fault corrupts it,
the wrong value flows into *younger* instructions only, and the
corrupted store/load itself is caught by the commit-stage address
cross-check before anything younger can retire.
"""

from __future__ import annotations

from collections import deque


class LoadStoreQueue:
    """Program-ordered window of in-flight memory groups."""

    def __init__(self, capacity):
        self.capacity = capacity
        self._queue = deque()

    def __len__(self):
        return len(self._queue)

    def __iter__(self):
        return iter(self._queue)

    @property
    def full(self):
        return len(self._queue) >= self.capacity

    def insert(self, group):
        self._queue.append(group)

    def remove_committed(self, group):
        """Drop the oldest entry, which must be ``group``."""
        if not self._queue or self._queue[0] is not group:
            raise AssertionError("LSQ commit order violated")
        self._queue.popleft()

    def squash_younger(self, gseq):
        """Drop every group younger than ``gseq`` (exclusive)."""
        queue = self._queue
        while queue and queue[-1].gseq > gseq:
            queue.pop()

    def clear(self):
        self._queue.clear()

    # -- disambiguation ---------------------------------------------------

    def load_status(self, load_group):
        """Can ``load_group`` access memory yet?

        Returns one of:

        * ``("blocked", None)`` — an older store's address is unknown, or
          a matching older store's data is not ready yet;
        * ``("forward", store_group)`` — youngest older store matches the
          load address and has its data: forward from it;
        * ``("access", None)`` — no conflict: go to the cache.
        """
        load_addr = load_group.copies[0].addr
        match = None
        for group in self._queue:
            if group.gseq >= load_group.gseq:
                break
            if not group.is_store:
                continue
            head = group.copies[0]
            if not head.agen_done:
                return ("blocked", None)
            if head.addr == load_addr:
                match = group
        if match is None:
            return ("access", None)
        head = match.copies[0]
        if head.store_val is None:
            return ("blocked", None)
        return ("forward", match)

    def load_status_memo(self, load_group):
        """:meth:`load_status` with a persistent blocked-on memo.

        A blocked load stays blocked until its recorded blocker makes
        progress: mode 1 means an older store's address is unknown
        (``agen_done``), mode 2 that the matching older store lacks its
        data (``store_val``).  In either case the full scan is provably
        a no-op until the blocker's field flips — stores enter the
        queue in program order (never older than an in-flight load) and
        a computed address never changes — so the rescan is skipped.
        Results are identical to :meth:`load_status`, which is kept
        scan-per-call for the reference engine.
        """
        blocker = load_group.block_on
        if blocker is not None:
            head = blocker.copies[0]
            if load_group.block_mode == 1:
                if not head.agen_done:
                    return ("blocked", None)
            elif head.store_val is None:
                return ("blocked", None)
            load_group.block_on = None
        load_gseq = load_group.gseq
        load_addr = load_group.copies[0].addr
        match = None
        for group in self._queue:
            if group.gseq >= load_gseq:
                break
            if not group.is_store:
                continue
            head = group.copies[0]
            if not head.agen_done:
                load_group.block_on = group
                load_group.block_mode = 1
                return ("blocked", None)
            if head.addr == load_addr:
                match = group
        if match is None:
            return ("access", None)
        if match.copies[0].store_val is None:
            load_group.block_on = match
            load_group.block_mode = 2
            return ("blocked", None)
        return ("forward", match)
