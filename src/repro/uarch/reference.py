"""The reference (unoptimized) out-of-order engine — differential oracle.

This module is a frozen copy of the straightforward cycle-stepped
simulator as it stood before the hot-path overhaul: one global ready
heap scanned in age order, ``pending_loads`` re-sorted every cycle, no
cycle skipping, every cycle stepped individually.  It is deliberately
kept simple and slow:

* the equivalence suite runs the optimized :class:`~repro.uarch.
  processor.Processor` against :class:`ReferenceProcessor` and requires
  byte-identical :class:`~repro.uarch.stats.PipelineStats`;
* the campaign engine can classify trials through it
  (``simulator="reference"``) so optimized campaign results can be
  diffed against the unoptimized path at full scale;
* ``repro-ft bench`` measures the optimized engine's speedup against it
  and records both numbers in ``BENCH_simulator.json``.

To stay an honest baseline *and* an independent oracle, this module
carries its own frozen copies of the hot components as they stood
pre-overhaul (ROB entry/group with property-computed flags, replicator,
commit checker, functional-unit pools, fetch unit, per-call latency
dispatch).  Sharing those with the live engine would let a bug — or a
speedup — in a shared component silently move both sides at once.

Do not optimize this file.  Behavioural fixes must be applied to both
engines (and will be caught by the equivalence suite if they are not).

Stage ordering within one simulated cycle (a conventional conservative
model — results written back in cycle T are visible to commit in T+1):

1. **commit** — retire whole redundant groups in program order, running
   the commit-stage cross-check and PC-continuity check;
2. **writeback** — completions scheduled for this cycle: finalize
   results, apply planned transient faults, resolve control flow, wake
   dependents, deliver the shared load value to all copies;
3. **issue** — send ready entries to functional units (age priority),
   and progress pending loads through disambiguation/forwarding/cache
   access within the D-cache port budget;
4. **dispatch** — replicate fetched instructions into R-aligned ROB
   groups, renaming copy 0 through the map table and deriving the other
   copies' tags;
5. **fetch** — predict and fetch up to the fetch width from the I-cache.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from heapq import heapify, heappop, heappush

from ..branch.ras import ReturnAddressStack
from ..core.config import FTConfig, UNPROTECTED
from ..core.faults import FaultInjector
from ..core.recovery import ACTION_REWIND, RecoveryController
from ..errors import ConfigError, SimulationError
from ..functional.kernel import (alu_value, branch_taken,
                                 effective_address)
from ..functional.numeric import (as_float, as_int, flip_float_bit,
                                  flip_int_bit, u64, values_equal)
from ..functional.simulator import FunctionalSimulator
from ..functional.state import ArchState
from ..isa.opcodes import FuClass, Kind, Op
from ..isa.registers import RA, ZERO
from ..memory.hierarchy import MemoryHierarchy
from ..memory.main_memory import MainMemory
from .config import _LATENCY_TABLE, MachineConfig
from .fetch import build_predictor
from .lsq import LoadStoreQueue
from .rename import make_renamer
from .rob import DONE, ISSUED, READY, WAITING
from .stats import PipelineStats

_EVENT_EXEC = 0
_EVENT_LOAD_VALUE = 1


# ---------------------------------------------------------------------------
# Frozen pre-overhaul components.  Each class below is the component as it
# stood before the hot-path work, kept verbatim (minus renames) so the
# reference engine's behaviour *and* cost model are independent of the
# live implementations.
# ---------------------------------------------------------------------------


class _RefRobEntry:
    """Pre-overhaul ROB slot (verbatim copy)."""

    __slots__ = (
        "seq", "vidx", "group", "copy", "state", "pending", "src_vals",
        "src_tags", "dependents", "value", "addr", "store_val", "next_pc",
        "issue_cycle", "done_cycle", "fu_unit", "agen_done", "fault_kind",
        "fault_bit", "fault_applied", "squashed",
    )

    def __init__(self, seq, vidx, group, copy):
        self.seq = seq
        self.vidx = vidx
        self.group = group
        self.copy = copy
        self.state = WAITING
        self.pending = 0
        self.src_vals = [0, 0]
        self.src_tags = [None, None]
        self.dependents = []
        self.value = None
        self.addr = None
        self.store_val = None
        self.next_pc = None
        self.issue_cycle = None
        self.done_cycle = None
        self.fu_unit = None
        self.agen_done = False
        self.fault_kind = None
        self.fault_bit = 0
        self.fault_applied = False
        self.squashed = False

    def __repr__(self):
        return ("<RobEntry seq=%d copy=%d %s state=%d>"
                % (self.seq, self.copy, self.group.inst, self.state))


class _RefGroup:
    """Pre-overhaul group: kind flags resolved per access via info."""

    __slots__ = (
        "gseq", "pc", "inst", "copies", "pred_npc", "pred_taken",
        "ras_snap", "resolved", "resolved_npc", "done_count", "load_value",
        "value_ready", "value_cycle", "mem_issued", "fetch_cycle",
        "dispatch_cycle", "squashed",
    )

    def __init__(self, gseq, pc, inst, pred_npc, pred_taken=False,
                 ras_snap=None, fetch_cycle=0):
        self.gseq = gseq
        self.pc = pc
        self.inst = inst
        self.copies = []
        self.pred_npc = pred_npc
        self.pred_taken = pred_taken
        self.ras_snap = ras_snap
        self.resolved = False
        self.resolved_npc = None
        self.done_count = 0
        self.load_value = None
        self.value_ready = False
        self.value_cycle = None
        self.mem_issued = False
        self.fetch_cycle = fetch_cycle
        self.dispatch_cycle = None
        self.squashed = False

    @property
    def redundancy(self):
        return len(self.copies)

    @property
    def complete(self):
        return self.done_count >= len(self.copies)

    @property
    def is_load(self):
        return self.inst.info.kind == Kind.LOAD

    @property
    def is_store(self):
        return self.inst.info.kind == Kind.STORE

    @property
    def is_mem(self):
        kind = self.inst.info.kind
        return kind == Kind.LOAD or kind == Kind.STORE

    @property
    def is_control(self):
        kind = self.inst.info.kind
        return kind == Kind.BRANCH or kind == Kind.JUMP

    def mark_squashed(self):
        self.squashed = True
        for entry in self.copies:
            entry.squashed = True
            entry.dependents = []

    def __repr__(self):
        return ("<Group gseq=%d pc=%d %s done=%d/%d>"
                % (self.gseq, self.pc, self.inst, self.done_count,
                   len(self.copies)))


def _ref_capture_operand(entry, slot, areg, copy, renamer, committed_read):
    """Pre-overhaul operand capture (verbatim copy)."""
    if areg == ZERO:
        entry.src_vals[slot] = 0
        return
    producer_group = renamer.lookup(areg)
    if producer_group is None:
        entry.src_vals[slot] = committed_read(areg)
        return
    producer = producer_group.copies[copy]
    entry.src_tags[slot] = producer.vidx
    if producer.state == DONE:
        entry.src_vals[slot] = producer.value
    else:
        entry.pending += 1
        producer.dependents.append((entry, slot))


class _RefReplicator:
    """Pre-overhaul replicator (verbatim copy over _RefGroup/Entry)."""

    def __init__(self, redundancy, renamer, committed_read,
                 fault_injector=None, stats=None):
        self.redundancy = redundancy
        self.renamer = renamer
        self.committed_read = committed_read
        self.fault_injector = fault_injector
        self.stats = stats
        self._gseq = 0
        self._seq = 0

    def reset_sequence(self):
        self._gseq = 0
        self._seq = 0

    def build_group(self, record, cycle):
        inst = record.inst
        group = _RefGroup(self._gseq, record.pc, inst, record.pred_npc,
                          record.pred_taken, record.ras_snap,
                          record.fetch_cycle)
        self._gseq += 1
        injector = self.fault_injector
        if injector is not None:
            plan = injector.plan_for_group(inst)
            if plan is not None:
                group.pc ^= 1 << plan.bit
                if self.stats is not None:
                    self.stats.faults_injected += 1

        info = inst.info
        kind = info.kind
        for copy in range(self.redundancy):
            entry = _RefRobEntry(self._seq,
                                 group.gseq * self.redundancy + copy,
                                 group, copy)
            self._seq += 1
            group.copies.append(entry)
            if injector is not None:
                plan = injector.plan_for_copy(inst)
                if plan is not None:
                    entry.fault_kind = plan.kind
                    entry.fault_bit = plan.bit
            if kind == Kind.NOP or kind == Kind.HALT:
                entry.state = DONE
                entry.next_pc = group.pc + (0 if kind == Kind.HALT else 1)
                group.done_count += 1
                continue
            self._capture_operands(entry, inst, copy)
            entry.state = READY if entry.pending == 0 else WAITING
        if info.writes_reg and inst.rd != ZERO:
            self.renamer.set_dest(inst.rd, group)
        return group

    def _capture_operands(self, entry, inst, copy):
        info = inst.info
        if info.reads_rs1:
            _ref_capture_operand(entry, 0, inst.rs1, copy, self.renamer,
                                 self.committed_read)
        if info.reads_rs2:
            _ref_capture_operand(entry, 1, inst.rs2, copy, self.renamer,
                                 self.committed_read)


def _ref_values_equal(a, b):
    """Pre-overhaul committed-value equality (no identity shortcut)."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)
    if isinstance(a, float) or isinstance(b, float):
        return False
    return a == b


def _ref_signature(entry):
    return (entry.value, entry.next_pc, entry.addr, entry.store_val)


def _ref_signatures_equal(a, b):
    for left, right in zip(a, b):
        if left is None and right is None:
            continue
        if left is None or right is None:
            return False
        if not _ref_values_equal(left, right):
            return False
    return True


def _ref_mismatched_fields(a, b):
    fields = []
    for name, left, right in zip(("value", "next_pc", "addr", "store_val"),
                                 a, b):
        same = (left is None and right is None) or (
            left is not None and right is not None
            and _ref_values_equal(left, right))
        if not same:
            fields.append(name)
    return tuple(fields)


class _RefCommitChecker:
    """Pre-overhaul commit checker (signature lists per check)."""

    def __init__(self, ft_config):
        self.ft = ft_config
        self.checks = 0
        self.mismatches = 0

    def check(self, group):
        from ..core.detection import CheckResult
        copies = group.copies
        self.checks += 1
        signatures = [_ref_signature(entry) for entry in copies]
        first = signatures[0]
        all_agree = all(_ref_signatures_equal(first, sig)
                        for sig in signatures[1:])
        if all_agree:
            return CheckResult(ok=True, representative=0, majority=False,
                               agree_count=len(copies))
        self.mismatches += 1
        if self.ft.majority_election and len(copies) >= 3:
            best_index, best_count = self._majority(signatures)
            if best_count >= self.ft.acceptance_threshold:
                return CheckResult(
                    ok=False, representative=best_index, majority=True,
                    agree_count=best_count,
                    mismatched_fields=self._collect_mismatches(signatures))
        return CheckResult(
            ok=False, representative=-1, majority=False, agree_count=1,
            mismatched_fields=self._collect_mismatches(signatures))

    @staticmethod
    def _majority(signatures):
        best_index, best_count = 0, 0
        for i, candidate in enumerate(signatures):
            count = sum(1 for sig in signatures
                        if _ref_signatures_equal(candidate, sig))
            if count > best_count:
                best_index, best_count = i, count
        return best_index, best_count

    @staticmethod
    def _collect_mismatches(signatures):
        fields = set()
        first = signatures[0]
        for sig in signatures[1:]:
            fields.update(_ref_mismatched_fields(first, sig))
        return tuple(sorted(fields))


class _RefFuPool:
    """Pre-overhaul functional-unit pool (per-call closure)."""

    __slots__ = ("fu_class", "count", "_busy_until", "issued_ops",
                 "busy_cycles")

    def __init__(self, fu_class, count):
        self.fu_class = fu_class
        self.count = count
        self._busy_until = [0] * count
        self.issued_ops = 0
        self.busy_cycles = 0

    def try_issue(self, cycle, latency, unpipelined, avoid=None):
        busy = self._busy_until

        def occupy(index):
            if unpipelined:
                busy[index] = cycle + latency
                self.busy_cycles += latency
            else:
                busy[index] = cycle + 1
                self.busy_cycles += 1
            self.issued_ops += 1
            return index

        fallback = None
        for index in range(self.count):
            if busy[index] <= cycle:
                if index == avoid:
                    fallback = index
                    continue
                return occupy(index)
        if fallback is not None:
            return occupy(fallback)
        return None

    def available(self, cycle):
        return sum(1 for b in self._busy_until if b <= cycle)

    def reset(self):
        self._busy_until = [0] * self.count
        self.issued_ops = 0
        self.busy_cycles = 0


class _RefFuBank:
    """Pre-overhaul bank of functional-unit pools."""

    def __init__(self, config):
        self.pools = {
            FuClass.INT_ALU: _RefFuPool(FuClass.INT_ALU, config.int_alu),
            FuClass.INT_MULT: _RefFuPool(FuClass.INT_MULT,
                                         config.int_mult),
            FuClass.FP_ADD: _RefFuPool(FuClass.FP_ADD, config.fp_add),
            FuClass.FP_MULT: _RefFuPool(FuClass.FP_MULT, config.fp_mult),
        }

    def try_issue(self, fu_class, cycle, latency, unpipelined,
                  avoid=None):
        pool = self.pools.get(fu_class)
        if pool is None or pool.count == 0:
            return None
        return pool.try_issue(cycle, latency, unpipelined, avoid=avoid)

    def utilisation(self, cycles):
        result = {}
        for fu_class, pool in self.pools.items():
            capacity = pool.count * max(cycles, 1)
            result[fu_class.name] = pool.busy_cycles / capacity \
                if capacity else 0.0
        return result


class _RefFetchRecord:
    """Pre-overhaul fetched-instruction record (no decode metadata)."""

    __slots__ = ("pc", "inst", "pred_npc", "pred_taken", "ras_snap",
                 "fetch_cycle")

    def __init__(self, pc, inst, pred_npc, pred_taken, ras_snap,
                 fetch_cycle):
        self.pc = pc
        self.inst = inst
        self.pred_npc = pred_npc
        self.pred_taken = pred_taken
        self.ras_snap = ras_snap
        self.fetch_cycle = fetch_cycle


class _RefFetchUnit:
    """Pre-overhaul fetch unit: per-fetch inst.info resolution."""

    def __init__(self, program, config, hierarchy):
        self.program = program
        self.config = config
        self.hierarchy = hierarchy
        self.predictor = build_predictor(config.branch)
        self.btb = _RefBranchTargetBuffer(config.branch.btb_sets,
                                          config.branch.btb_assoc)
        self.ras = ReturnAddressStack(config.branch.ras_depth)
        self.pc = program.entry
        self.stall_until = 0
        self.halted = False

    def redirect(self, target, cycle, penalty=0):
        self.pc = target
        self.stall_until = cycle + 1 + penalty
        self.halted = False

    def restore_ras(self, snapshot):
        if snapshot is not None:
            self.ras.restore(snapshot)

    def fetch_cycle(self, cycle, budget):
        if self.halted or cycle < self.stall_until or budget <= 0:
            return []
        latency = self.hierarchy.fetch_latency(self.pc)
        hit_latency = self.hierarchy.params.il1.hit_latency
        if latency > hit_latency:
            self.stall_until = cycle + latency
            return []
        records = []
        line = self.hierarchy.instruction_line(self.pc)
        control_seen = 0
        while budget > 0:
            inst = self.program.fetch(self.pc)
            if inst is None:
                break
            if self.hierarchy.instruction_line(self.pc) != line:
                break
            kind = inst.info.kind
            is_control = kind in (Kind.BRANCH, Kind.JUMP)
            if is_control and control_seen >= 1:
                break
            pred_taken = False
            snapshot = None
            if kind == Kind.HALT:
                record = _RefFetchRecord(self.pc, inst, self.pc, False,
                                         None, cycle)
                records.append(record)
                self.halted = True
                break
            if is_control:
                snapshot = self.ras.snapshot()
                pred_npc, pred_taken = self._predict_control(inst)
                control_seen += 1
            else:
                pred_npc = self.pc + 1
            records.append(_RefFetchRecord(self.pc, inst, pred_npc,
                                           pred_taken, snapshot, cycle))
            self.pc = pred_npc
            budget -= 1
            if is_control and pred_taken:
                break
        return records

    def _predict_control(self, inst):
        pc = self.pc
        op = inst.op
        if inst.is_branch:
            taken = self.predictor.predict(pc)
            target = pc + 1 + inst.imm if taken else pc + 1
            return target, taken
        if op == Op.J:
            return inst.imm, True
        if op == Op.JAL:
            self.ras.push(pc + 1)
            return inst.imm, True
        if op == Op.JR:
            if inst.rs1 == RA:
                predicted = self.ras.pop()
            else:
                predicted = self.btb.lookup(pc)
            return (predicted if predicted is not None else pc + 1), True
        self.ras.push(pc + 1)
        predicted = self.btb.lookup(pc)
        return (predicted if predicted is not None else pc + 1), True

    def train_commit(self, group, actual_next_pc, taken):
        inst = group.inst
        if inst.is_branch:
            self.predictor.update(group.pc, taken)
        elif inst.op in (Op.JR, Op.JALR):
            self.btb.update(group.pc, actual_next_pc)


def _ref_op_latency(config, op):
    """Pre-overhaul per-call latency dispatch (lambda table)."""
    return _LATENCY_TABLE[op](config)


class _RefCache:
    """Pre-overhaul cache level: dense OrderedDict sets (verbatim)."""

    def __init__(self, params, next_level):
        self.params = params
        self.next_level = next_level
        self._set_mask = params.num_sets - 1
        self._block_shift = params.block_bytes.bit_length() - 1
        self._sets = [OrderedDict() for _ in range(params.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def name(self):
        return self.params.name

    def block_address(self, address):
        return address >> self._block_shift << self._block_shift

    def _locate(self, address):
        block = address >> self._block_shift
        return self._sets[block & self._set_mask], block >> 0

    def access(self, address, write=False):
        cache_set, block = self._locate(address)
        if block in cache_set:
            self.hits += 1
            cache_set.move_to_end(block)
            if write:
                cache_set[block] = True
            return self.params.hit_latency
        self.misses += 1
        fill_latency = self.next_level.access(address, write=False)
        if len(cache_set) >= self.params.assoc:
            victim, dirty = next(iter(cache_set.items()))
            del cache_set[victim]
            self.evictions += 1
            if dirty:
                self.writebacks += 1
                self.next_level.access(victim << self._block_shift,
                                       write=True)
        cache_set[block] = bool(write)
        return self.params.hit_latency + fill_latency

    def probe(self, address):
        cache_set, block = self._locate(address)
        return block in cache_set

    def flush(self):
        for cache_set in self._sets:
            for _, dirty in cache_set.items():
                if dirty:
                    self.writebacks += 1
            cache_set.clear()

    def reset_stats(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        total = self.accesses
        return self.misses / total if total else 0.0


class _RefMemoryHierarchy(MemoryHierarchy):
    """Pre-overhaul hierarchy built from dense _RefCache levels."""

    def __init__(self, params=None):
        from ..memory.cache import MemoryTiming
        from ..memory.hierarchy import HierarchyParams
        self.params = params or HierarchyParams()
        self.memory_timing = MemoryTiming(self.params.memory_latency)
        self.l2 = _RefCache(self.params.l2, self.memory_timing)
        self.il1 = _RefCache(self.params.il1, self.l2)
        self.dl1 = _RefCache(self.params.dl1, self.l2)


class _RefBranchTargetBuffer:
    """Pre-overhaul BTB: dense OrderedDict sets (verbatim)."""

    def __init__(self, sets=512, assoc=4):
        self.num_sets = sets
        self.assoc = assoc
        self._mask = sets - 1
        self._sets = [OrderedDict() for _ in range(sets)]
        self.lookups = 0
        self.hits = 0

    def lookup(self, pc):
        self.lookups += 1
        entry_set = self._sets[pc & self._mask]
        target = entry_set.get(pc)
        if target is not None:
            self.hits += 1
            entry_set.move_to_end(pc)
        return target

    def update(self, pc, target):
        entry_set = self._sets[pc & self._mask]
        if pc in entry_set:
            entry_set.move_to_end(pc)
        elif len(entry_set) >= self.assoc:
            entry_set.popitem(last=False)
        entry_set[pc] = target

    def reset(self):
        for entry_set in self._sets:
            entry_set.clear()
        self.lookups = 0
        self.hits = 0


class _RefFaultInjector(FaultInjector):
    """Pre-overhaul injector: rates recomputed per dispatch.

    Inherits the drawing logic (identical RNG sequence) but restores
    the original per-call rate/pc-share arithmetic so the reference's
    cost model stays pre-overhaul.
    """

    def plan_for_copy(self, inst):
        rate = self.config.rate
        if rate <= 0 or self._rng.random() >= rate:
            return None
        kind = self._draw_kind()
        kind = self._fit_kind_to_inst(kind, inst)
        if kind is None:
            return None
        self.planned += 1
        from ..core.faults import FaultPlan
        return FaultPlan(kind=kind, bit=self._rng.randrange(64))

    def plan_for_group(self, inst):
        weights = self.config.kind_weights
        pc_share = weights.get("pc", 0.0) / sum(weights.values())
        rate = self.config.rate * pc_share
        if rate <= 0 or self._rng.random() >= rate:
            return None
        self.planned += 1
        from ..core.faults import FaultPlan
        return FaultPlan(kind="pc", bit=self._rng.randrange(16))


class ReferenceProcessor:
    """The frozen, unoptimized out-of-order superscalar model."""

    def __init__(self, program, config=None, ft=None, fault_config=None):
        self.program = program
        self.config = config or MachineConfig()
        self.ft = ft or UNPROTECTED
        self.redundancy = self.ft.redundancy
        if self.config.rob_size % self.redundancy:
            raise ConfigError(
                "ROB size (%d) must be a multiple of the redundancy "
                "degree (%d)" % (self.config.rob_size, self.redundancy))

        memory = MainMemory(self.config.mem_size_words, image=program.data)
        self.arch = ArchState(memory=memory, pc=program.entry)
        self.hierarchy = _RefMemoryHierarchy(self.config.hierarchy)
        self.fetch_unit = _RefFetchUnit(program, self.config,
                                        self.hierarchy)
        self.fus = _RefFuBank(self.config)

        self.groups = deque()             # in-flight groups, program order
        self.renamer = make_renamer(self.config.rename_scheme, self.groups)
        self.injector = None
        if fault_config is not None and fault_config.rate_per_million > 0:
            self.injector = _RefFaultInjector(fault_config)
        self.stats = PipelineStats()
        self.replicator = _RefReplicator(self.redundancy, self.renamer,
                                     self.arch.read_reg, self.injector,
                                     stats=self.stats)
        self.checker = _RefCommitChecker(self.ft)
        self.recovery = RecoveryController(self.ft)
        self.lsq = LoadStoreQueue(self.config.lsq_size)
        self.ifq = deque()
        self.ready = []                   # heap of (seq, entry)
        self.events = {}                  # cycle -> [(kind, payload)]
        self.pending_loads = []           # load groups awaiting access

        self.committed_next_pc = program.entry  # the ECC-protected register
        self._outstanding_misses = 0
        self.cycle = 0
        self.halted = False
        self.rob_entries = 0
        self._ports_used = 0
        self._last_commit_cycle = 0
        self._lockstep = None
        self._tracer = None

    # -- public API -------------------------------------------------------

    def enable_lockstep_check(self):
        """Verify every commit against the in-order golden model.

        The strongest correctness oracle: the committed instruction
        stream (including across fault rewinds) must match in-order
        execution exactly.
        """
        self._lockstep = FunctionalSimulator(
            self.program, mem_size=self.config.mem_size_words)

    def attach_tracer(self, tracer):
        """Record per-instruction lifecycle events into ``tracer``."""
        self._tracer = tracer

    def run(self, max_instructions=None, max_cycles=None):
        """Simulate until HALT commits or a budget is exhausted."""
        instruction_target = None
        if max_instructions is not None:
            instruction_target = self.stats.instructions + max_instructions
        while not self.halted:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            if (instruction_target is not None
                    and self.stats.instructions >= instruction_target):
                break
            self.step()
        self.stats.cycles = self.cycle
        return self.stats

    def step(self):
        """Advance the machine by one cycle."""
        self.cycle += 1
        cycle = self.cycle
        self._ports_used = 0
        self._commit_stage(cycle)
        if self.halted:
            self.stats.cycles = cycle
            return
        self._writeback_stage(cycle)
        self._issue_stage(cycle)
        self._dispatch_stage(cycle)
        self._fetch_stage(cycle)
        self.stats.rob_occupancy_sum += self.rob_entries
        self.stats.ifq_occupancy_sum += len(self.ifq)
        if (not self.groups and not self.ifq
                and not self.fetch_unit.halted
                and cycle >= self.fetch_unit.stall_until
                and self.program.fetch(self.fetch_unit.pc) is None):
            # The committed control flow has left the program: with
            # protection off, a corrupted branch can retire and strand
            # the machine on garbage addresses.  Real hardware would
            # fetch junk or trap; we record the crash and stop.
            self.stats.crashed = True
            self.halted = True
        if cycle - self._last_commit_cycle > self.config.deadlock_cycles:
            raise SimulationError(
                "deadlock: no commit for %d cycles (cycle=%d, rob=%d, "
                "ifq=%d, pending_loads=%d, head=%r)"
                % (self.config.deadlock_cycles, cycle, self.rob_entries,
                   len(self.ifq), len(self.pending_loads),
                   self.groups[0] if self.groups else None))

    # -- commit -----------------------------------------------------------

    def _commit_stage(self, cycle):
        budget = self.config.commit_width
        protected = self.redundancy >= 2
        while self.groups and budget > 0:
            group = self.groups[0]
            copies = len(group.copies)
            cost = copies * (2 if self.config.shared_physical_regfile
                             else 1)
            if cost > budget:
                break
            if not group.complete:
                break
            if protected:
                if (self.ft.check_pc_continuity
                        and group.pc != self.committed_next_pc):
                    self.stats.pc_continuity_violations += 1
                    self.stats.faults_detected += 1
                    self.recovery.rewinds += 1
                    self._begin_rewind(cycle)
                    return
                result = self.checker.check(group)
                if not result.ok:
                    self.stats.faults_detected += 1
                    if self.recovery.decide(result) == ACTION_REWIND:
                        self._begin_rewind(cycle)
                        return
                    self.stats.majority_commits += 1
                    representative = group.copies[result.representative]
                else:
                    representative = group.copies[0]
            else:
                representative = group.copies[0]
                if any(entry.fault_applied for entry in group.copies):
                    self.stats.silent_commits += 1
            if not self._retire_group(group, representative, cycle):
                break  # structural stall (store port); retry next cycle
            budget -= cost
            if self.halted:
                return

    def _retire_group(self, group, representative, cycle):
        """Commit one verified group; False on a store-port stall."""
        inst = group.inst
        info = inst.info
        if group.is_store:
            if self._ports_used >= self.config.mem_ports:
                return False
            self._ports_used += 1
            self.hierarchy.store_access(representative.addr)
            self.arch.memory.store(representative.addr,
                                   representative.store_val)
            self.stats.stores_committed += 1
        if info.writes_reg:
            self.arch.write_reg(inst.rd, representative.value)
            self.renamer.on_commit(inst.rd, group)
        if info.kind == Kind.BRANCH:
            taken = representative.next_pc != group.pc + 1
            self.fetch_unit.train_commit(group, representative.next_pc,
                                         taken)
            self.stats.branches_committed += 1
            if representative.next_pc != group.pred_npc:
                self.stats.branch_mispredicts += 1
        elif info.kind == Kind.JUMP:
            self.fetch_unit.train_commit(group, representative.next_pc,
                                         True)
            self.stats.jumps_committed += 1
            if representative.next_pc != group.pred_npc:
                self.stats.indirect_mispredicts += 1
        self.committed_next_pc = representative.next_pc
        self.groups.popleft()
        self.rob_entries -= len(group.copies)
        if group.is_mem:
            self.lsq.remove_committed(group)
        self.stats.instructions += 1
        self.stats.entries_committed += len(group.copies)
        self.recovery.on_commit(cycle)
        self.stats.recovery_cycles = self.recovery.recovery_cycles
        self._last_commit_cycle = cycle
        if self._tracer is not None:
            self._tracer.on_commit(group, cycle)
        if self._lockstep is not None:
            self._lockstep_check(group, representative)
        if inst.is_halt:
            self.halted = True
        return True

    def _lockstep_check(self, group, representative):
        golden = self._lockstep
        golden.step()
        inst = group.inst
        if golden.state.pc != self.committed_next_pc and not inst.is_halt:
            raise SimulationError(
                "lockstep divergence at pc=%d: committed next-PC %d, "
                "golden %d" % (group.pc, self.committed_next_pc,
                               golden.state.pc))
        if inst.info.writes_reg:
            expected = golden.state.read_reg(inst.rd)
            actual = self.arch.read_reg(inst.rd)
            if not values_equal(expected, actual):
                raise SimulationError(
                    "lockstep divergence at pc=%d: r%d committed %r, "
                    "golden %r" % (group.pc, inst.rd, actual, expected))
        if group.is_store:
            address = representative.addr
            expected = golden.state.memory.peek(address)
            actual = self.arch.memory.peek(address)
            if not values_equal(expected, actual):
                raise SimulationError(
                    "lockstep divergence at pc=%d: mem[%d] committed %r, "
                    "golden %r" % (group.pc, address, actual, expected))

    # -- recovery ---------------------------------------------------------

    def _begin_rewind(self, cycle):
        """Discard all speculative state; refetch from committed next-PC."""
        self.stats.rewinds += 1
        self.recovery.on_rewind(cycle)
        for group in self.groups:
            group.mark_squashed()
        self.groups.clear()
        self.lsq.clear()
        self.ifq.clear()
        self.ready = []
        self.pending_loads = []
        self.rob_entries = 0
        self.renamer.clear()
        self.fetch_unit.ras.clear()
        self.fetch_unit.redirect(self.committed_next_pc, cycle,
                                 penalty=self.ft.rewind_extra_penalty)
        if self._tracer is not None:
            self._tracer.on_rewind(cycle, self.committed_next_pc)

    # -- writeback --------------------------------------------------------

    def _schedule(self, cycle, kind, payload):
        bucket = self.events.get(cycle)
        if bucket is None:
            self.events[cycle] = [(kind, payload)]
        else:
            bucket.append((kind, payload))

    def _writeback_stage(self, cycle):
        bucket = self.events.pop(cycle, None)
        if not bucket:
            return
        for kind, payload in bucket:
            if kind == _EVENT_EXEC:
                entry = payload
                if not entry.squashed:
                    self._complete_execution(entry, cycle)
            else:
                group, value, was_miss = payload
                if was_miss:
                    # The fill returns and frees its MSHR even if the
                    # consuming load was squashed meanwhile.
                    self._outstanding_misses -= 1
                if not group.squashed:
                    self._deliver_load_value(group, value, cycle)

    def _complete_execution(self, entry, cycle):
        group = entry.group
        inst = group.inst
        info = inst.info
        kind = info.kind
        if kind == Kind.LOAD or kind == Kind.STORE:
            if entry.fault_kind == "address" and not entry.fault_applied:
                entry.addr = u64(entry.addr ^ (1 << (entry.fault_bit & 63)))
                entry.fault_applied = True
                self.stats.faults_injected += 1
            entry.agen_done = True
            if kind == Kind.STORE:
                entry.store_val = entry.src_vals[1]
                if entry.fault_kind == "value" and not entry.fault_applied:
                    entry.store_val = self._flip_value(entry.store_val,
                                                       entry.fault_bit)
                    entry.fault_applied = True
                    self.stats.faults_injected += 1
                self._finalize_entry(entry, cycle)
            else:
                if entry.copy == 0 and not group.mem_issued:
                    self.pending_loads.append(group)
                if group.value_ready:
                    self._finish_load_copy(entry, group.load_value, cycle)
            return
        self._apply_datapath_fault(entry, group)
        self._finalize_entry(entry, cycle)

    def _apply_datapath_fault(self, entry, group):
        if entry.fault_kind is None or entry.fault_applied:
            return
        inst = group.inst
        if entry.fault_kind == "value" and inst.info.writes_reg:
            entry.value = self._flip_value(entry.value, entry.fault_bit)
            entry.fault_applied = True
            self.stats.faults_injected += 1
        elif entry.fault_kind == "branch" and inst.is_control:
            entry.next_pc = self._corrupt_next_pc(entry, group)
            entry.fault_applied = True
            self.stats.faults_injected += 1
        elif entry.fault_kind == "value" and inst.is_control:
            entry.next_pc = self._corrupt_next_pc(entry, group)
            entry.fault_applied = True
            self.stats.faults_injected += 1

    def _corrupt_next_pc(self, entry, group):
        inst = group.inst
        if inst.is_branch:
            fallthrough = group.pc + 1
            target = group.pc + 1 + inst.imm
            return target if entry.next_pc == fallthrough else fallthrough
        return u64(entry.next_pc ^ (1 << (entry.fault_bit % 16)))

    @staticmethod
    def _flip_value(value, bit):
        if isinstance(value, float):
            return flip_float_bit(value, bit)
        return flip_int_bit(value if value is not None else 0, bit)

    def _finalize_entry(self, entry, cycle):
        entry.state = DONE
        entry.done_cycle = cycle
        group = entry.group
        group.done_count += 1
        if entry.dependents:
            value = entry.value
            for dependent, slot in entry.dependents:
                if dependent.squashed:
                    continue
                dependent.src_vals[slot] = value
                dependent.pending -= 1
                if dependent.pending == 0 and dependent.state == WAITING:
                    dependent.state = READY
                    heappush(self.ready, (dependent.seq, dependent))
            entry.dependents = []
        if group.is_control:
            self._resolve_control(entry, cycle)

    def _resolve_control(self, entry, cycle):
        group = entry.group
        if group.resolved:
            # A later copy disagreeing with the followed path is caught
            # by the commit-stage cross-check; nothing to do here.
            return
        group.resolved = True
        group.resolved_npc = entry.next_pc
        if entry.next_pc != group.pred_npc:
            self._squash_younger(group)
            self.fetch_unit.restore_ras(group.ras_snap)
            self.fetch_unit.redirect(entry.next_pc, cycle,
                                     penalty=self.config.redirect_penalty)

    def _squash_younger(self, group):
        """Branch-misprediction squash of everything younger than group."""
        groups = self.groups
        while groups and groups[-1].gseq > group.gseq:
            victim = groups.pop()
            victim.mark_squashed()
            self.rob_entries -= len(victim.copies)
        self.lsq.squash_younger(group.gseq)
        self.ifq.clear()
        if self.pending_loads:
            self.pending_loads = [g for g in self.pending_loads
                                  if not g.squashed]
        if self.ready:
            self.ready = [(seq, entry) for seq, entry in self.ready
                          if not entry.squashed]
            heapify(self.ready)
        self.renamer.rebuild(groups)

    def _deliver_load_value(self, group, raw_value, cycle):
        """The single shared memory access returned: fan out to copies."""
        if group.inst.info.fp_dest:
            value = as_float(raw_value)
        else:
            value = as_int(raw_value)
        group.load_value = value
        group.value_ready = True
        group.value_cycle = cycle
        for entry in group.copies:
            if entry.agen_done and entry.state != DONE:
                self._finish_load_copy(entry, value, cycle)

    def _finish_load_copy(self, entry, value, cycle):
        entry.value = value
        if entry.fault_kind == "value" and not entry.fault_applied:
            entry.value = self._flip_value(entry.value, entry.fault_bit)
            entry.fault_applied = True
            self.stats.faults_injected += 1
        self._finalize_entry(entry, cycle)

    # -- issue ------------------------------------------------------------

    def _issue_stage(self, cycle):
        self._progress_pending_loads(cycle)
        budget = self.config.issue_width
        deferred = []
        ready = self.ready
        saturated = set()
        co_schedule = self.config.co_schedule_copies
        num_classes = 4  # INT_ALU, INT_MULT, FP_ADD, FP_MULT
        while budget > 0 and ready and len(saturated) < num_classes:
            _, entry = heappop(ready)
            if entry.squashed or entry.state != READY:
                continue
            info = entry.group.inst.info
            fu_class = FuClass.INT_ALU if info.is_mem else info.fu
            if fu_class in saturated:
                deferred.append((entry.seq, entry))
                continue
            avoid = None
            if co_schedule and entry.copy > 0:
                # Section 3.5: prefer a different physical unit than the
                # sibling copy, so a slow-transient FU fault cannot
                # corrupt both redundant results identically.
                avoid = entry.group.copies[0].fu_unit
            latency = _ref_op_latency(self.config, entry.group.inst.op)
            unit = self.fus.try_issue(fu_class, cycle, latency,
                                      info.unpipelined, avoid=avoid)
            if unit is not None:
                entry.fu_unit = unit
                self._execute(entry, cycle, latency)
                budget -= 1
            else:
                saturated.add(fu_class)
                deferred.append((entry.seq, entry))
        for item in deferred:
            heappush(ready, item)

    def _execute(self, entry, cycle, latency):
        """Start execution: compute results, schedule the completion."""
        group = entry.group
        inst = group.inst
        kind = inst.info.kind
        a, b = entry.src_vals
        if kind == Kind.ALU:
            entry.value = alu_value(inst.op, a, b, inst.imm, group.pc)
            entry.next_pc = group.pc + 1
        elif kind == Kind.LOAD or kind == Kind.STORE:
            entry.addr = effective_address(a, inst.imm)
            entry.next_pc = group.pc + 1
        elif kind == Kind.BRANCH:
            taken = branch_taken(inst.op, a, b)
            entry.next_pc = group.pc + 1 + inst.imm if taken \
                else group.pc + 1
        elif kind == Kind.JUMP:
            if inst.op == Op.J or inst.op == Op.JAL:
                entry.next_pc = inst.imm
            else:
                entry.next_pc = u64(as_int(a))
            if inst.info.writes_reg:
                entry.value = group.pc + 1
        entry.state = ISSUED
        entry.issue_cycle = cycle
        self.stats.issued += 1
        self._schedule(cycle + latency, _EVENT_EXEC, entry)

    def _progress_pending_loads(self, cycle):
        if not self.pending_loads:
            return
        self.pending_loads.sort(key=lambda g: g.gseq)
        still_pending = []
        for group in self.pending_loads:
            if group.squashed or group.mem_issued:
                continue
            status, match = self.lsq.load_status(group)
            if status == "blocked":
                still_pending.append(group)
            elif status == "forward":
                group.mem_issued = True
                self.stats.store_forwards += 1
                self.stats.loads_executed += 1
                self._schedule(cycle + 1, _EVENT_LOAD_VALUE,
                               (group, match.copies[0].store_val, False))
            else:  # cache access
                if self._ports_used >= self.config.mem_ports:
                    still_pending.append(group)
                    continue
                address = group.copies[0].addr
                mshrs = self.config.mshr_count
                is_miss = not self.hierarchy.dl1.probe(
                    (address & ((1 << 48) - 1)) << 3)
                if (mshrs is not None and is_miss
                        and self._outstanding_misses >= mshrs):
                    still_pending.append(group)  # MSHRs exhausted
                    continue
                self._ports_used += 1
                latency = self.hierarchy.load_latency(address)
                value = self.arch.memory.load(address)
                if is_miss:
                    self._outstanding_misses += 1
                group.mem_issued = True
                self.stats.loads_executed += 1
                self._schedule(cycle + latency, _EVENT_LOAD_VALUE,
                               (group, value, is_miss))
        self.pending_loads = still_pending

    # -- dispatch / fetch ---------------------------------------------------

    def _dispatch_stage(self, cycle):
        budget = self.config.dispatch_width
        redundancy = self.redundancy
        while self.ifq and budget >= redundancy:
            if self.rob_entries + redundancy > self.config.rob_size:
                break
            record = self.ifq[0]
            if record.inst.is_mem and self.lsq.full:
                break
            self.ifq.popleft()
            group = self.replicator.build_group(record, cycle)
            group.dispatch_cycle = cycle
            self.groups.append(group)
            self.rob_entries += redundancy
            if group.is_mem:
                self.lsq.insert(group)
            for entry in group.copies:
                if entry.state == READY:
                    heappush(self.ready, (entry.seq, entry))
            budget -= redundancy
            self.stats.dispatched_groups += 1
            self.stats.dispatched_entries += redundancy

    def _fetch_stage(self, cycle):
        space = self.config.ifq_size - len(self.ifq)
        budget = min(self.config.fetch_width, space)
        if budget <= 0:
            return
        records = self.fetch_unit.fetch_cycle(cycle, budget)
        if records:
            self.ifq.extend(records)
            self.stats.fetched += len(records)


def simulate_reference(program, config=None, ft=None, fault_config=None,
                       max_instructions=None, max_cycles=None,
                       lockstep=False):
    """One-call reference simulation; returns the finished processor."""
    processor = ReferenceProcessor(program, config=config, ft=ft,
                                   fault_config=fault_config)
    if lockstep:
        processor.enable_lockstep_check()
    processor.run(max_instructions=max_instructions, max_cycles=max_cycles)
    return processor
